"""Ablation — machine-selection policy (recommendations IV-D.1 / V-E.3).

Compares the CX-metric-driven machine selector under its three objectives
(fidelity-first, queue-first, balanced) and a random baseline, measuring the
estimated success probability and the expected wait of the chosen machine.
"""

from repro.analysis.report import render_table
from repro.circuits import qft_echo_circuit
from repro.core.rng import RandomSource
from repro.devices import build_backend
from repro.scheduling import MachineSelector, SelectionObjective

CANDIDATES = ["ibmq_athens", "ibmq_santiago", "ibmq_casablanca", "ibmq_toronto",
              "ibmq_guadalupe", "ibmq_manhattan"]
#: expected queue minutes per machine (public machines busier, as in Fig. 9)
EXPECTED_WAITS = {
    "ibmq_athens": 420.0, "ibmq_santiago": 300.0, "ibmq_casablanca": 45.0,
    "ibmq_toronto": 90.0, "ibmq_guadalupe": 60.0, "ibmq_manhattan": 120.0,
}


def _run_ablation():
    backends = [build_backend(name, seed=19) for name in CANDIDATES]
    circuit = qft_echo_circuit(4)
    rows = []
    for objective in (SelectionObjective.FIDELITY, SelectionObjective.BALANCED,
                      SelectionObjective.QUEUE):
        selector = MachineSelector(objective, fidelity_weight=0.6,
                                   optimization_level=2, seed=19)
        choice = selector.select(circuit, backends,
                                 expected_wait_minutes=EXPECTED_WAITS)
        rows.append({
            "policy": objective.value,
            "chosen_machine": choice.machine,
            "estimated_success": choice.estimated_success,
            "expected_wait_minutes": choice.expected_wait_minutes,
            "cx_total": choice.cx_total,
        })
    # Random baseline: average the candidates.
    selector = MachineSelector(SelectionObjective.FIDELITY, seed=19)
    evaluated = selector.evaluate(circuit, backends,
                                  expected_wait_minutes=EXPECTED_WAITS)
    rng = RandomSource(19)
    random_choice = rng.choice(evaluated)
    rows.append({
        "policy": "random (baseline)",
        "chosen_machine": random_choice.machine,
        "estimated_success": random_choice.estimated_success,
        "expected_wait_minutes": random_choice.expected_wait_minutes,
        "cx_total": random_choice.cx_total,
    })
    return rows


def test_ablation_machine_selection(benchmark, emit):
    rows = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    emit(render_table(
        "Ablation — machine selection policies (4q QFT-echo)", rows))

    by_policy = {row["policy"]: row for row in rows}
    fidelity = by_policy["fidelity"]
    queue = by_policy["queue"]
    balanced = by_policy["balanced"]
    # Fidelity-first gets the best success; queue-first gets the lowest wait;
    # balanced sits between them on at least one axis.
    assert fidelity["estimated_success"] >= balanced["estimated_success"] - 1e-9
    assert queue["expected_wait_minutes"] <= balanced["expected_wait_minutes"] + 1e-9
    assert queue["expected_wait_minutes"] <= fidelity["expected_wait_minutes"]
