"""Fig. 12b — the same circuit compiled against two consecutive calibrations.

Paper shape: noise-aware mapping picks different physical qubits (and a
different circuit structure) when the calibration data changes, so a stale
compilation is sub-optimal at execution time.
"""

from repro.analysis import layout_drift_between_epochs
from repro.analysis.report import render_table
from repro.circuits import qft_circuit
from repro.devices import build_backend

MACHINE = "ibmq_casablanca"
EPOCH_PAIRS = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]


def _measure_drift():
    backend = build_backend(MACHINE, seed=13)
    circuit = qft_circuit(4)
    drifts = []
    for epoch_a, epoch_b in EPOCH_PAIRS:
        drifts.append(layout_drift_between_epochs(circuit, backend,
                                                  epoch_a=epoch_a,
                                                  epoch_b=epoch_b))
    return drifts


def test_fig12b_layout_drift(benchmark, emit):
    drifts = benchmark.pedantic(_measure_drift, rounds=1, iterations=1)

    rows = [
        {
            "calibration_pair": f"day {d.epoch_a} -> day {d.epoch_b}",
            "layout_day_a": str(d.layout_a),
            "layout_day_b": str(d.layout_b),
            "moved_qubits": d.moved_qubits,
            "cx_day_a": d.cx_count_a,
            "cx_day_b": d.cx_count_b,
        }
        for d in drifts
    ]
    emit(render_table(
        f"Fig. 12b — noise-aware layouts of a 4q QFT on {MACHINE} across "
        "consecutive calibration days", rows))

    changed = sum(1 for d in drifts if d.layouts_differ)
    emit(f"{changed}/{len(drifts)} consecutive-day compilations changed the "
         "chosen mapping (paper: the optimal mapping changes across calibrations)")

    # Shape assertion: calibration drift changes the chosen layout on at
    # least some days.
    assert changed >= 1
