"""Fig. 2a — cumulative machine trials over the two-year study window.

Paper shape: the cumulative trial count grows to ~10 billion, with clearly
accelerating growth over the final 12 months (log-scale plot).
"""

from repro.analysis import cumulative_trials_by_month
from repro.analysis.report import render_table


def test_fig02a_cumulative_trials(benchmark, study_trace, emit, full_scale):
    series = benchmark(cumulative_trials_by_month, study_trace)

    rows = [
        {
            "month": entry.month_index,
            "jobs": entry.jobs,
            "circuits": entry.circuits,
            "trials": entry.trials,
            "cumulative_trials": entry.cumulative_trials,
        }
        for entry in series
    ]
    emit(render_table("Fig. 2a — cumulative machine trials per month", rows))

    total = series[-1].cumulative_trials
    first_half = series[len(series) // 2].cumulative_trials
    emit(f"total trials: {total:.3g} "
         f"(paper: ~10 billion; shape target: accelerating growth)\n"
         f"growth in the second half of the window: "
         f"{total / max(first_half, 1):.1f}x")

    # Shape assertions: monotone growth that accelerates over time.
    cumulative = [entry.cumulative_trials for entry in series]
    assert cumulative == sorted(cumulative)
    if full_scale:
        assert total > 4 * first_half
        assert total > 1e8
