"""Fig. 13 — run-time distribution per machine.

Paper shape: run times are far below queue times but vary non-trivially,
from sub-minute to ~15 minutes per job, with larger machines showing higher
run times (larger circuits plus larger machine overheads).
"""

import numpy as np

from repro.analysis import run_time_by_machine
from repro.analysis.report import render_table


def test_fig13_run_time_by_machine(benchmark, study_trace, emit, full_scale):
    distribution = benchmark(run_time_by_machine, study_trace)

    qubits = {r.machine: r.machine_qubits for r in study_trace}
    rows = [
        {
            "machine": machine,
            "qubits": qubits[machine],
            "jobs": summary.count,
            "median_minutes": summary.median,
            "p90_minutes": summary.p90,
            "max_minutes": summary.maximum,
        }
        for machine, summary in sorted(distribution.items(),
                                       key=lambda kv: qubits[kv[0]])
    ]
    emit(render_table("Fig. 13 — run time per job vs machine (minutes)", rows))

    per_circuit = study_trace.numeric_column("per_circuit_run_seconds")
    emit(f"per-circuit run time: median {np.median(per_circuit):.1f}s, "
         f"{100 * float((per_circuit < 60).mean()):.0f}% under a minute "
         "(paper: the vast majority of circuits execute in well under a minute)")

    small = [s.median for m, s in distribution.items()
             if qubits[m] <= 7 and "simulator" not in m]
    large = [s.median for m, s in distribution.items() if qubits[m] >= 27]
    if full_scale:
        assert small and large
        # Larger machines show higher run times on average.
        assert np.mean(large) > np.mean(small)
        # Run times span sub-minute to tens of minutes.
        assert min(s.median for s in distribution.values()) < 5
        assert max(s.p90 for s in distribution.values()) > 5
        assert float((per_circuit < 60).mean()) > 0.9
