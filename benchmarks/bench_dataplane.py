"""Benchmark: columnar data plane versus the row-at-a-time reference path.

Measures, at a configurable trace scale:

* **run_study** — the end-to-end single-process pipeline (plan, synthesise,
  simulate, record) with the columnar CircuitBatch/vectorised path versus
  the pre-columnar object-per-row path (`repro.workloads.rowpath`),
* **construct** — building the columnar TraceDataset from materialised
  records,
* **filter_groupby** — vectorised selection/grouping versus record loops,
* **analysis** — the full trace-driven figure suite, vectorised versus
  per-record loops,
* **cache** — npz column-dump save/load versus the legacy JSON round-trip.
* **out_of_core** — the figure-suite analysis on a tiled million-row trace
  under a fixed resident-bytes budget versus fully in RAM: wall-clock,
  peak-RSS growth and spill counts per block size.
* **export** — the optional Arrow/Parquet export path, skipped cleanly
  (``"skipped": true`` in the artifact) when pyarrow is unavailable.

Writes a ``BENCH_dataplane.json`` artifact (consumed by CI) and prints a
summary.  Run as a script::

    PYTHONPATH=src python benchmarks/bench_dataplane.py --jobs 6000 --months 28

Targets (checked at full scale): >=5x on the analysis suite and >=2x on the
end-to-end run-study versus the row-at-a-time path.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from repro.analysis.figures import trace_figure_suite
from repro.cloud.service import QuantumCloudService
from repro.core.env import env_int
from repro.runner.cache import TraceCache, config_fingerprint
from repro.workloads.blocks import ResidencyGovernor
from repro.workloads.generator import (
    JobSynthesizer,
    TraceGeneratorConfig,
    expected_pending_estimator,
    plan_submissions,
    record_for,
)
from repro.workloads.rowpath import (
    RowPathSynthesizer,
    figure_suite_rowpath,
    record_for_rowpath,
)
from repro.workloads.trace import _STORED_COLUMNS, TraceDataset


def _best_of(repeats: int, action: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        action()
        best = min(best, time.perf_counter() - started)
    return best


def _speedup(baseline: float, columnar: float) -> float:
    return round(baseline / columnar, 2) if columnar > 0 else float("inf")


def _run_pipeline(config: TraceGeneratorConfig, fleet, synthesizer,
                  recorder) -> List:
    """One single-process study pass: plan -> synthesise -> simulate -> record."""
    jobs = [synthesizer.synthesise(planned)
            for planned in plan_submissions(config)]
    jobs = [job for job in jobs if job is not None]
    service = QuantumCloudService(fleet, seed=config.seed)
    for job in jobs:
        service.submit(job)
    service.drain()
    return [recorder(job, fleet) for job in jobs]


def bench_run_study(config: TraceGeneratorConfig, fleet,
                    repeats: int) -> Dict[str, object]:
    columnar_records: List = []

    def columnar_pass():
        columnar_records.clear()
        columnar_records.extend(_run_pipeline(
            config, fleet,
            JobSynthesizer(config, fleet, expected_pending_estimator(fleet)),
            record_for))

    def rowpath_pass():
        _run_pipeline(
            config, fleet,
            RowPathSynthesizer(config, fleet,
                               expected_pending_estimator(fleet)),
            record_for_rowpath)

    # Untimed warm-up: the first pass pays the one-off circuit-building cost
    # of the shared logical-metrics caches; whichever path ran first would
    # otherwise be charged for warming them on the other's behalf.
    columnar_pass()

    columnar_seconds = _best_of(repeats, columnar_pass)
    rowpath_seconds = _best_of(repeats, rowpath_pass)
    return {
        "columnar_seconds": round(columnar_seconds, 4),
        "rowpath_seconds": round(rowpath_seconds, 4),
        "speedup": _speedup(rowpath_seconds, columnar_seconds),
        "_records": columnar_records,
    }


def bench_construct(records: List, repeats: int) -> Dict[str, object]:
    seconds = _best_of(repeats, lambda: TraceDataset.from_records(records))
    return {"columnar_seconds": round(seconds, 4), "rows": len(records)}


def bench_filter_groupby(trace: TraceDataset, records: List,
                         repeats: int) -> Dict[str, object]:
    import numpy as np

    def columnar():
        # completed-job selection, per-machine median queue, monthly job
        # counts, large-batch selection, status counts: the selection and
        # grouping mix every figure analysis is built from.
        len(trace.completed())
        for subset in trace.group_by_machine().values():
            minutes = subset.numeric_column("queue_minutes")
            if minutes.size:
                np.median(minutes)
        trace.value_counts("month_index")
        int((trace.values("batch_size") >= 100).sum())
        trace.value_counts("status")

    def rowpath():
        len([r for r in records
             if r.run_seconds is not None and r.run_seconds > 0])
        by_machine: Dict[str, List[float]] = {}
        for record in records:
            minutes = record.queue_minutes
            if minutes is not None:
                by_machine.setdefault(record.machine, []).append(minutes)
        for values in by_machine.values():
            np.median(values)
        month_counts: Dict[int, int] = {}
        for record in records:
            month_counts[record.month_index] = \
                month_counts.get(record.month_index, 0) + 1
        len([r for r in records if r.batch_size >= 100])
        counts: Dict[str, int] = {}
        for record in records:
            counts[record.status] = counts.get(record.status, 0) + 1

    columnar_seconds = _best_of(repeats, columnar)
    rowpath_seconds = _best_of(repeats, rowpath)
    return {
        "columnar_seconds": round(columnar_seconds, 4),
        "rowpath_seconds": round(rowpath_seconds, 4),
        "speedup": _speedup(rowpath_seconds, columnar_seconds),
    }


def bench_analysis(trace: TraceDataset, records: List,
                   repeats: int) -> Dict[str, object]:
    def columnar():
        # Fresh dataset per pass so the derived-column cache is cold, like a
        # newly loaded trace.
        fresh = trace.take(range(len(trace)))
        trace_figure_suite(fresh)

    columnar_seconds = _best_of(repeats, columnar)
    rowpath_seconds = _best_of(repeats, lambda: figure_suite_rowpath(records))
    return {
        "columnar_seconds": round(columnar_seconds, 4),
        "rowpath_seconds": round(rowpath_seconds, 4),
        "speedup": _speedup(rowpath_seconds, columnar_seconds),
    }


def bench_cache(trace: TraceDataset, config: TraceGeneratorConfig,
                scratch: Path, repeats: int) -> Dict[str, object]:
    cache = TraceCache(scratch / "cache")
    key = config_fingerprint(config)
    json_path = scratch / "trace.json"

    npz_save = _best_of(repeats, lambda: cache.put(key, trace))
    npz_load = _best_of(repeats, lambda: cache.get(key))
    json_save = _best_of(repeats, lambda: trace.to_json(json_path))
    json_load = _best_of(repeats, lambda: TraceDataset.from_json(json_path))
    npz_bytes = cache.path_for(key).stat().st_size
    json_bytes = json_path.stat().st_size
    return {
        "npz_save_seconds": round(npz_save, 4),
        "npz_load_seconds": round(npz_load, 4),
        "json_save_seconds": round(json_save, 4),
        "json_load_seconds": round(json_load, 4),
        "load_speedup": _speedup(json_load, npz_load),
        "npz_bytes": npz_bytes,
        "json_bytes": json_bytes,
        "compression_ratio": round(json_bytes / npz_bytes, 2)
        if npz_bytes else None,
    }


def _peak_rss_kb() -> Optional[int]:
    """Lifetime peak RSS of this process in KiB (None when unavailable)."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _tiled_blocks(base: TraceDataset, total_rows: int,
                  block_rows: int) -> Iterator[Dict[str, np.ndarray]]:
    """Column blocks tiling ``base`` out to ``total_rows`` rows.

    Block ``i`` covers rows ``[i * block_rows, ...)`` of one global tiling
    of the base trace, so the assembled dataset is identical for every
    block size — and no full-length column ever exists in memory, which is
    the point of the out-of-core measurement.
    """
    base_columns = {name: base._columns[name] for name in _STORED_COLUMNS}
    base_rows = len(base)
    produced = 0
    while produced < total_rows:
        rows = min(block_rows, total_rows - produced)
        indices = np.arange(produced, produced + rows) % base_rows
        yield {name: column[indices]
               for name, column in base_columns.items()}
        produced += rows


def _jsonable(value: object) -> object:
    """Digest-friendly view of a figure suite (tuple keys, numpy values)."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def bench_out_of_core(base: TraceDataset, total_rows: int,
                      budget_bytes: int) -> Dict[str, object]:
    """Figure-suite analysis at ``total_rows`` rows, budgeted vs in-RAM.

    The budgeted modes run first: ``ru_maxrss`` is a lifetime high-water
    mark, so the low-memory passes must be measured before the in-RAM
    reference inflates it.
    """
    modes: List[Dict[str, object]] = []
    reference_digest = None

    def run_mode(label: str, block_rows: Optional[int]) -> None:
        nonlocal reference_digest
        rss_before = _peak_rss_kb()
        started = time.perf_counter()
        if block_rows is None:
            columns = {
                name: np.concatenate([b[name] for b in _tiled_blocks(
                    base, total_rows, total_rows)])
                for name in _STORED_COLUMNS
            }
            trace = TraceDataset.from_columns(columns, dict(base._vocabs))
        else:
            governor = ResidencyGovernor(budget_bytes)
            trace = TraceDataset.from_blocks(
                _tiled_blocks(base, total_rows, block_rows),
                dict(base._vocabs), governor=governor)
        build_seconds = time.perf_counter() - started

        started = time.perf_counter()
        suite = trace_figure_suite(trace)
        analysis_seconds = time.perf_counter() - started
        rss_after = _peak_rss_kb()
        digest = json.dumps(_jsonable(suite), sort_keys=True, default=str)
        if reference_digest is None:
            reference_digest = digest
        stats = trace.data_plane_stats()
        modes.append({
            "mode": label,
            "rows": len(trace),
            "block_rows": block_rows,
            "budget_bytes": budget_bytes if block_rows else None,
            "column_bytes": trace.column_nbytes(),
            "build_seconds": round(build_seconds, 3),
            "analysis_seconds": round(analysis_seconds, 3),
            "peak_rss_kb": rss_after,
            "peak_rss_growth_kb": (rss_after - rss_before
                                   if rss_after is not None
                                   and rss_before is not None else None),
            "spills": stats["spills"],
            "loads": stats["loads"],
            "value_identical": digest == reference_digest,
        })
        print(f"[dataplane]   out-of-core {label}: "
              f"build {modes[-1]['build_seconds']}s, "
              f"analysis {modes[-1]['analysis_seconds']}s, "
              f"rss +{modes[-1]['peak_rss_growth_kb']} KiB, "
              f"{modes[-1]['spills']} spills")

    for block_rows in (16_384, 65_536, 262_144):
        if block_rows * 2 <= total_rows:  # at least two blocks to govern
            run_mode(f"budgeted-{block_rows}", block_rows)
    run_mode("in-ram", None)
    return {
        "total_rows": total_rows,
        "budget_bytes": budget_bytes,
        "all_value_identical": all(m["value_identical"] for m in modes),
        "modes": modes,
    }


def bench_export(trace: TraceDataset, scratch: Path) -> Dict[str, object]:
    """Arrow/Parquet export smoke — records a clean skip without pyarrow."""
    try:
        import pyarrow  # noqa: F401
    except ImportError:
        return {"skipped": True, "reason": "pyarrow not installed"}
    parquet_path = scratch / "trace.parquet"
    feather_path = scratch / "trace.feather"
    parquet_seconds = _best_of(1, lambda: trace.to_parquet(parquet_path))
    feather_seconds = _best_of(1, lambda: trace.to_feather(feather_path))
    return {
        "skipped": False,
        "rows": len(trace),
        "parquet_seconds": round(parquet_seconds, 4),
        "parquet_bytes": parquet_path.stat().st_size,
        "feather_seconds": round(feather_seconds, 4),
        "feather_bytes": feather_path.stat().st_size,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the columnar data plane against the "
                    "row-at-a-time reference path.")
    parser.add_argument("--jobs", type=int,
                        default=env_int("REPRO_BENCH_JOBS", 6000))
    parser.add_argument("--months", type=int,
                        default=env_int("REPRO_BENCH_MONTHS", 28))
    parser.add_argument("--seed", type=int,
                        default=env_int("REPRO_BENCH_SEED", 7))
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repeats per section (best-of)")
    parser.add_argument("--output", default="BENCH_dataplane.json")
    parser.add_argument("--scratch", default=None,
                        help="scratch directory for cache files "
                             "(default: a temp dir)")
    parser.add_argument("--out-of-core-rows", type=int,
                        default=env_int("REPRO_BENCH_OOC_ROWS", 0),
                        help="rows of the tiled out-of-core trace "
                             "(default: 1M at full scale, 200k reduced; "
                             "0 = auto)")
    parser.add_argument("--out-of-core-budget", type=int,
                        default=32 << 20,
                        help="resident-bytes budget of the out-of-core "
                             "modes (default: %(default)s)")
    args = parser.parse_args(argv)

    config = TraceGeneratorConfig(total_jobs=args.jobs, months=args.months,
                                  seed=args.seed)
    fleet = config.build_fleet()

    print(f"[dataplane] end-to-end run-study at {args.jobs} jobs / "
          f"{args.months} months ...")
    run_study_section = bench_run_study(config, fleet, args.repeats)
    records = run_study_section.pop("_records")
    print(f"[dataplane]   columnar {run_study_section['columnar_seconds']}s, "
          f"rowpath {run_study_section['rowpath_seconds']}s "
          f"({run_study_section['speedup']}x)")

    # The remaining sections run in milliseconds; repeat them a few times so
    # a single scheduler hiccup cannot dominate the best-of timing.
    fast_repeats = max(args.repeats, 3)
    construct_section = bench_construct(records, fast_repeats)
    trace = TraceDataset.from_records(records, metadata={"seed": args.seed})

    filter_section = bench_filter_groupby(trace, records, fast_repeats)
    print(f"[dataplane]   filter/group-by {filter_section['speedup']}x")

    analysis_section = bench_analysis(trace, records, fast_repeats)
    print(f"[dataplane]   analysis suite "
          f"{analysis_section['columnar_seconds']}s vs "
          f"{analysis_section['rowpath_seconds']}s "
          f"({analysis_section['speedup']}x)")

    if args.scratch:
        scratch = Path(args.scratch)
        scratch.mkdir(parents=True, exist_ok=True)
        cache_section = bench_cache(trace, config, scratch, fast_repeats)
        export_section = bench_export(trace, scratch)
    else:
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            cache_section = bench_cache(trace, config, Path(tmp),
                                        fast_repeats)
            export_section = bench_export(trace, Path(tmp))
    print(f"[dataplane]   cache load {cache_section['load_speedup']}x "
          f"(npz {cache_section['npz_bytes']} B vs "
          f"json {cache_section['json_bytes']} B)")
    if export_section.get("skipped"):
        print(f"[dataplane]   export skipped ({export_section['reason']})")
    else:
        print(f"[dataplane]   export parquet "
              f"{export_section['parquet_seconds']}s "
              f"({export_section['parquet_bytes']} B)")

    full_scale = args.jobs >= 2000 and args.months >= 20

    ooc_rows = args.out_of_core_rows or (1_000_000 if full_scale
                                         else 200_000)
    print(f"[dataplane] out-of-core analysis at {ooc_rows} rows under a "
          f"{args.out_of_core_budget} B budget ...")
    out_of_core_section = bench_out_of_core(trace, ooc_rows,
                                            args.out_of_core_budget)
    payload = {
        "benchmark": "dataplane",
        "jobs": args.jobs,
        "months": args.months,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "full_scale": full_scale,
        "run_study": run_study_section,
        "construct": construct_section,
        "filter_groupby": filter_section,
        "analysis": analysis_section,
        "cache": cache_section,
        "export": export_section,
        "out_of_core": out_of_core_section,
        "targets": {
            "analysis_speedup_min": 5.0,
            "run_study_speedup_min": 2.0,
            "analysis_ok": analysis_section["speedup"] >= 5.0,
            "run_study_ok": run_study_section["speedup"] >= 2.0,
        },
    }
    Path(args.output).write_text(json.dumps(payload, indent=2))
    print(f"[dataplane] results written to {args.output}")
    if full_scale and not (payload["targets"]["analysis_ok"]
                           and payload["targets"]["run_study_ok"]):
        print("[dataplane] WARNING: full-scale speedup targets not met")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
