"""Fig. 3 — sorted per-circuit queuing times.

Paper shape: only ~20 % of circuits wait under a minute, the median wait is
about an hour, more than 30 % wait over two hours, and ~10 % wait a day or
longer.
"""

import numpy as np

from repro.analysis import queue_time_percentile_report
from repro.analysis.queuing import sorted_queue_times_minutes
from repro.analysis.report import render_table


def test_fig03_sorted_queue_times(benchmark, study_trace, emit, full_scale):
    report = benchmark(queue_time_percentile_report, study_trace)

    minutes = sorted_queue_times_minutes(study_trace, per_circuit=True)
    percentile_rows = [
        {"percentile": p, "queue_minutes": float(np.percentile(minutes, p))}
        for p in (10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 99)
    ]
    emit(render_table("Fig. 3 — sorted per-circuit queue times (percentiles)",
                      percentile_rows))
    emit(render_table("Fig. 3 — headline statistics (paper targets in comments)", [
        {"metric": "fraction under 1 minute (paper ~0.20)",
         "value": report.fraction_under_one_minute},
        {"metric": "median minutes (paper ~60)", "value": report.median_minutes},
        {"metric": "fraction over 2 hours (paper >0.30)",
         "value": report.fraction_over_two_hours},
        {"metric": "fraction over 1 day (paper ~0.10)",
         "value": report.fraction_over_one_day},
    ]))

    # Shape assertions.
    assert report.fraction_under_one_minute < 0.5
    if full_scale:
        assert 10.0 < report.median_minutes < 600.0
        assert report.fraction_over_two_hours > 0.15
        assert 0.02 < report.fraction_over_one_day < 0.4
