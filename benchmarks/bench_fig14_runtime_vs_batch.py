"""Fig. 14 — job run time vs batch size.

Paper shape: run times grow proportionally with batch size (the red trend
line), with scatter around the trend caused by shots and machine overheads.
"""

from repro.analysis import batch_runtime_trend, run_time_by_batch_size
from repro.analysis.report import render_table


def test_fig14_run_time_vs_batch(benchmark, study_trace, emit):
    trend = benchmark(batch_runtime_trend, study_trace)

    binned = run_time_by_batch_size(study_trace, bin_width=100)
    rows = []
    for key in sorted(binned):
        low, high = key
        midpoint = (low + high) / 2
        rows.append({
            "batch_bin": f"{low}-{high}",
            "jobs": binned[key].count,
            "median_run_minutes": binned[key].median,
            "trend_line_minutes": trend.predict_minutes(midpoint),
        })
    emit(render_table("Fig. 14 — run time vs batch size", rows))
    emit(f"trend: run_minutes = {trend.slope_minutes_per_circuit:.3f} * batch "
         f"+ {trend.intercept_minutes:.2f} (correlation {trend.correlation:.2f}; "
         "paper: proportional growth)")

    assert trend.slope_minutes_per_circuit > 0
    assert trend.correlation > 0.6
    medians = [binned[key].median for key in sorted(binned)]
    assert medians[-1] > 3 * medians[0]
