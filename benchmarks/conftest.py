"""Shared fixtures for the figure-reproduction benchmark harness.

The harness regenerates the data series behind every figure of the paper's
evaluation.  A single full-scale synthetic study trace (about 6000 jobs over
28 months, matching the paper's dataset size) is produced once per session
through the parallel sharded study runner (:mod:`repro.runner`) and shared
by all benches.  Scale and execution knobs come from the environment:

``REPRO_BENCH_JOBS`` / ``REPRO_BENCH_MONTHS`` / ``REPRO_BENCH_SEED``
    trace scale (defaults: 6000 jobs, 28 months, seed 7),
``REPRO_BENCH_WORKERS``
    worker processes for trace generation (default: one per core),
``REPRO_BENCH_CACHE``
    trace-cache directory (default ``.repro-cache``; set to an empty string
    to disable caching and regenerate every session).

Each bench prints the reproduced series/rows (via the ``emit`` fixture,
which bypasses pytest's output capture so the tables appear in the console
and in any ``tee`` log) and records timings through pytest-benchmark.
"""

from __future__ import annotations

import os

import pytest

from repro.core.env import env_int
from repro.devices import fleet_in_study
from repro.runner import default_workers, run_study
from repro.workloads import TraceGeneratorConfig

BENCH_JOBS = env_int("REPRO_BENCH_JOBS", 6000)
BENCH_MONTHS = env_int("REPRO_BENCH_MONTHS", 28)
BENCH_SEED = env_int("REPRO_BENCH_SEED", 7)
BENCH_WORKERS = env_int("REPRO_BENCH_WORKERS", default_workers())
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE", ".repro-cache")

#: The paper-shape assertions (growth ratios, distribution medians, machine
#: coverage) only hold once the trace approaches the paper's scale.  Reduced
#: runs — like the CI smoke job at 200 jobs / 2 months — still exercise and
#: time every analysis but skip those final assertions.
FULL_SCALE = BENCH_JOBS >= 2000 and BENCH_MONTHS >= 20


@pytest.fixture(scope="session")
def study_config():
    """The generator config every figure bench reproduces from."""
    return TraceGeneratorConfig(total_jobs=BENCH_JOBS, months=BENCH_MONTHS,
                                seed=BENCH_SEED)


@pytest.fixture(scope="session")
def study_trace(study_config):
    """The full-scale synthetic study trace shared by every figure bench."""
    result = run_study(config=study_config, workers=BENCH_WORKERS,
                       cache_dir=BENCH_CACHE or None)
    return result.trace


@pytest.fixture(scope="session")
def full_scale():
    """Whether the trace is big enough for the paper-shape assertions."""
    return FULL_SCALE


@pytest.fixture(scope="session")
def study_fleet():
    """The machine fleet of the study."""
    return fleet_in_study(seed=BENCH_SEED)


@pytest.fixture
def emit(capsys):
    """Print text to the real terminal, bypassing pytest capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _emit
