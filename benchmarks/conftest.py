"""Shared fixtures for the figure-reproduction benchmark harness.

The harness regenerates the data series behind every figure of the paper's
evaluation.  A single full-scale synthetic study trace (about 6000 jobs over
28 months, matching the paper's dataset size) is generated once per session
and shared by all benches; the scale can be reduced for quick runs with the
``REPRO_BENCH_JOBS`` / ``REPRO_BENCH_MONTHS`` environment variables.

Each bench prints the reproduced series/rows (via the ``emit`` fixture,
which bypasses pytest's output capture so the tables appear in the console
and in any ``tee`` log) and records timings through pytest-benchmark.
"""

from __future__ import annotations

import os

import pytest

from repro.devices import fleet_in_study
from repro.workloads import TraceGenerator, TraceGeneratorConfig


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


BENCH_JOBS = _env_int("REPRO_BENCH_JOBS", 6000)
BENCH_MONTHS = _env_int("REPRO_BENCH_MONTHS", 28)
BENCH_SEED = _env_int("REPRO_BENCH_SEED", 7)


@pytest.fixture(scope="session")
def study_trace():
    """The full-scale synthetic study trace shared by every figure bench."""
    config = TraceGeneratorConfig(total_jobs=BENCH_JOBS, months=BENCH_MONTHS,
                                  seed=BENCH_SEED)
    return TraceGenerator(config).generate()


@pytest.fixture(scope="session")
def study_fleet():
    """The machine fleet of the study."""
    return fleet_in_study(seed=BENCH_SEED)


@pytest.fixture
def emit(capsys):
    """Print text to the real terminal, bypassing pytest capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _emit
