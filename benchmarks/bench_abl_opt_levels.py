"""Ablation — transpiler optimisation levels (recommendation III-E.2).

The paper recommends separating mandatory passes from nice-to-have
optimisations.  This ablation compiles the same circuit at levels 0-3 and
reports compile time versus the CX count of the output, quantifying that
trade-off.
"""

from repro.analysis.report import render_table
from repro.circuits import qft_circuit
from repro.devices import build_backend
from repro.transpiler import transpile

MACHINE = "ibmq_toronto"
CIRCUIT_QUBITS = 6


def _sweep_levels():
    backend = build_backend(MACHINE, seed=5)
    circuit = qft_circuit(CIRCUIT_QUBITS)
    rows = []
    for level in (0, 1, 2, 3):
        result = transpile(circuit, backend, optimization_level=level, seed=5)
        summary = result.summary()
        rows.append({
            "optimization_level": level,
            "compile_seconds": result.total_seconds,
            "cx_count": summary["cx_count"],
            "depth": summary["depth"],
            "swap_count": summary["swap_count"],
        })
    return rows


def test_ablation_optimization_levels(benchmark, emit):
    rows = benchmark.pedantic(_sweep_levels, rounds=1, iterations=1)
    emit(render_table(
        f"Ablation — optimisation levels ({CIRCUIT_QUBITS}q QFT on {MACHINE})",
        rows))

    by_level = {row["optimization_level"]: row for row in rows}
    # Higher levels spend more compile effort...
    assert by_level[3]["compile_seconds"] > by_level[0]["compile_seconds"]
    # ...and do not produce worse circuits than the unoptimised pipeline.
    assert by_level[3]["cx_count"] <= by_level[0]["cx_count"]
