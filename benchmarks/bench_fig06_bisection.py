"""Fig. 6 — qubit count vs bisection bandwidth across the machine fleet.

Paper shape: bisection bandwidth stays tiny (<= ~4) even for the 65-qubit
Manhattan, far below the bandwidth of a comparable classical mesh (a
64-node mesh has bisection bandwidth 8).
"""

from repro.analysis import bisection_bandwidth_table
from repro.analysis.report import render_table
from repro.devices.topology import grid_topology


def test_fig06_bisection_bandwidth(benchmark, study_fleet, emit):
    rows = benchmark(bisection_bandwidth_table, study_fleet)

    table = [
        {
            "machine": row.machine,
            "qubits": row.num_qubits,
            "bisection_bandwidth": row.bisection_bandwidth,
            "access": row.access,
        }
        for row in rows
    ]
    mesh = grid_topology(8, 8).bisection_bandwidth()
    emit(render_table("Fig. 6 — qubits vs bisection bandwidth", table))
    emit(f"classical 64-node mesh bisection bandwidth for comparison: {mesh} "
         "(paper: 8, vs 3 for the 65-qubit Manhattan)")

    by_name = {row.machine: row for row in rows}
    largest = max(rows, key=lambda r: r.num_qubits)
    assert largest.num_qubits == 65
    assert largest.bisection_bandwidth <= 5
    assert largest.bisection_bandwidth < mesh
    assert by_name["ibmq_athens"].bisection_bandwidth == 1
    # Bisection bandwidth grows far slower than machine size.
    assert largest.bisection_bandwidth < largest.num_qubits / 8
