"""Benchmark: equivalence-class transpile cache and rank-mode studies.

Measures, at a configurable trace scale:

* **dedup** — how many per-job machine-ranking transpiles the equivalence
  classes amortise away: a naive rank-mode implementation transpiles every
  probed (job, machine) pair, the class planner transpiles each
  (family, width, machine) class once.  The ratio is also computed for the
  full-scale study (planning only — no transpiles), where the >=10x
  acceptance target is asserted.
* **cold vs warm** — wall-clock of a rank-mode study with an empty
  transpile cache versus a fully warm one, plus the warm run against the
  trace-level ``policy-swap`` baseline (same objective, logical metrics
  only) — the warm rank study should stay within ~2x of it.
* **per-pass seconds** — the level-3 pass-pipeline cost profile, summed
  from the cached summaries' recorded timings.
* **rank identity** — the byte-equivalence contract: the cold, warm and
  cache-disabled runs must produce identical traces (asserted, not just
  reported).

Writes a ``BENCH_transpile.json`` artifact (consumed by CI) and prints a
summary.  Run as a script::

    PYTHONPATH=src python benchmarks/bench_transpile.py --jobs 1000 --months 6
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict

from repro.core.env import env_int
from repro.runner import run_study
from repro.transpiler.cache import TranspileCache
from repro.workloads.generator import (
    ScenarioKnobs,
    TraceGeneratorConfig,
    plan_transpile_classes,
)

#: The acceptance target holds at the paper-scale study; reduced runs
#: reproduce fewer jobs per class, so their measured ratio is reported
#: but asserted only loosely.
FULL_SCALE_CONFIG = dict(jobs=6000, months=28)
DEDUP_TARGET = 10.0


def _rank_config(jobs: int, months: int, seed: int) -> TraceGeneratorConfig:
    return TraceGeneratorConfig(
        total_jobs=jobs, months=months, seed=seed,
        scenario=ScenarioKnobs(ranking_objective="balanced"))


def _trace_columns(result) -> Dict[str, list]:
    names = ("job_id", "machine", "user_policy", "submit_time",
             "start_time", "end_time", "status")
    return {name: list(result.trace.column(name)) for name in names}


def _planned_dedup(jobs: int, months: int, seed: int) -> Dict[str, float]:
    config = _rank_config(jobs, months, seed)
    pairs, stats = plan_transpile_classes(config, config.build_fleet())
    return {
        **stats,
        "dedup_ratio": round(stats["probes"] / max(stats["pairs"], 1), 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the equivalence-class transpile cache")
    parser.add_argument("--jobs", type=int,
                        default=min(env_int("REPRO_BENCH_JOBS", 6000), 1000))
    parser.add_argument("--months", type=int,
                        default=min(env_int("REPRO_BENCH_MONTHS", 28), 6))
    parser.add_argument("--seed", type=int,
                        default=env_int("REPRO_BENCH_SEED", 7))
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--output", default="BENCH_transpile.json")
    args = parser.parse_args(argv)

    config = _rank_config(args.jobs, args.months, args.seed)
    baseline_config = TraceGeneratorConfig(
        total_jobs=args.jobs, months=args.months, seed=args.seed,
        scenario=ScenarioKnobs(forced_policy="balanced"))
    cache_root = Path(tempfile.mkdtemp(prefix="bench-transpile-"))
    try:
        # -- dedup: measured at bench scale, asserted at paper scale -------
        planned = _planned_dedup(args.jobs, args.months, args.seed)
        full = _planned_dedup(seed=args.seed, **FULL_SCALE_CONFIG)
        assert full["dedup_ratio"] >= DEDUP_TARGET, (
            f"full-scale dedup {full['dedup_ratio']}x below the "
            f"{DEDUP_TARGET}x target")

        # -- cold run: every class transpiled, cache filled ----------------
        started = time.perf_counter()
        cold = run_study(config=config, workers=args.workers,
                         cache_dir=cache_root)
        cold_seconds = time.perf_counter() - started
        assert cold.transpile["cold"] == planned["pairs"]

        # -- warm run: drop the trace, keep the transpile entries ----------
        for path in cache_root.glob("trace-*"):
            if path.is_dir():
                shutil.rmtree(path)
            else:
                path.unlink()
        started = time.perf_counter()
        warm = run_study(config=config, workers=args.workers,
                         cache_dir=cache_root)
        warm_seconds = time.perf_counter() - started
        assert warm.transpile["cold"] == 0

        # -- cache-off run + the byte-identity contract --------------------
        uncached = run_study(config=config, workers=args.workers,
                             use_cache=False)
        reference = _trace_columns(cold)
        rank_identity = (_trace_columns(warm) == reference
                         and _trace_columns(uncached) == reference)
        assert rank_identity, "cached and uncached rank traces diverged"

        # -- the trace-level baseline the warm run must stay close to ------
        started = time.perf_counter()
        baseline = run_study(config=baseline_config, workers=args.workers,
                             use_cache=False)
        baseline_seconds = time.perf_counter() - started
        warm_over_baseline = warm_seconds / max(baseline_seconds, 1e-9)

        # -- per-pass profile, from the summaries the cold run cached ------
        cache = TranspileCache(cache_root)
        pass_seconds: Dict[str, float] = {}
        pass_counts: Dict[str, int] = {}
        for entry in cache.entries():
            summary = cache.get(entry.key)
            if summary is None:
                continue
            for pass_name, seconds in summary.pass_timings:
                pass_seconds[pass_name] = \
                    pass_seconds.get(pass_name, 0.0) + seconds
                pass_counts[pass_name] = pass_counts.get(pass_name, 0) + 1

        payload = {
            "scale": {"jobs": args.jobs, "months": args.months,
                      "seed": args.seed, "workers": args.workers},
            "dedup": {
                "bench_scale": planned,
                "full_scale": full,
                "target": DEDUP_TARGET,
            },
            "wall_clock": {
                "cold_seconds": round(cold_seconds, 3),
                "warm_seconds": round(warm_seconds, 3),
                "cold_transpile_phase": round(
                    cold.timings["transpile"], 3),
                "warm_transpile_phase": round(
                    warm.timings["transpile"], 3),
                "trace_level_baseline_seconds": round(baseline_seconds, 3),
                "warm_over_baseline": round(warm_over_baseline, 2),
                "baseline_jobs": len(baseline.trace),
            },
            "pass_seconds": {name: round(seconds, 4)
                             for name, seconds
                             in sorted(pass_seconds.items())},
            "pass_counts": dict(sorted(pass_counts.items())),
            "rank_identity": rank_identity,
            "transpile_cache": {"entries": len(cache.entries()),
                                "total_bytes": cache.total_bytes()},
        }
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    Path(args.output).write_text(json.dumps(payload, indent=2))
    print(json.dumps(payload, indent=2))
    print(f"\nbench artifact written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
