"""Ablation — vendor-side load balancing (recommendation V-E.4).

Takes the jobs the study's users routed to 5-qubit machines by their own
heuristics and re-assigns them with the vendor-side least-backlog balancer;
reports the backlog imbalance and worst-machine backlog under both policies.
"""

from repro.analysis.report import render_table
from repro.cloud.execution_model import ExecutionTimeModel
from repro.cloud.job import CircuitSpec, Job
from repro.devices import build_fleet
from repro.scheduling import LoadBalancer

FIVE_QUBIT_MACHINES = ["ibmq_athens", "ibmq_santiago", "ibmq_lima", "ibmq_belem",
                       "ibmq_quito", "ibmq_rome", "ibmq_bogota", "ibmqx2"]


def _jobs_from_trace(trace):
    jobs = []
    for record in trace:
        if record.machine not in FIVE_QUBIT_MACHINES:
            continue
        spec = CircuitSpec(
            name=record.job_id, width=record.circuit_width,
            depth=record.circuit_depth, num_gates=record.circuit_gates,
            cx_count=record.circuit_cx, cx_depth=record.circuit_cx_depth,
            family=record.circuit_family,
        )
        jobs.append(Job(provider=record.provider, backend_name=record.machine,
                        circuits=[spec] * record.batch_size, shots=record.shots,
                        submit_time=record.submit_time))
    return jobs


def test_ablation_load_balancing(benchmark, study_trace, emit, full_scale):
    fleet = build_fleet(FIVE_QUBIT_MACHINES, seed=7)
    jobs = _jobs_from_trace(study_trace)
    model = ExecutionTimeModel()

    def estimator(job, backend):
        return model.expected_seconds(job, backend)

    balancer = LoadBalancer(fleet)
    balanced = benchmark.pedantic(
        balancer.assign, args=(jobs,), kwargs={"job_runtime_estimator": estimator},
        rounds=1, iterations=1)
    baseline = LoadBalancer.user_driven_baseline(jobs, fleet,
                                                 job_runtime_estimator=estimator)

    rows = []
    for name in sorted(fleet):
        rows.append({
            "machine": name,
            "user_routed_backlog_hours": baseline.backlog_seconds[name] / 3600.0,
            "balanced_backlog_hours": balanced.backlog_seconds[name] / 3600.0,
        })
    emit(render_table(
        "Ablation — user-heuristic routing vs vendor load balancing "
        f"({len(jobs)} jobs on 5-qubit machines)", rows))
    emit(f"imbalance (max/mean backlog): user-routed {baseline.imbalance:.2f}, "
         f"balanced {balanced.imbalance:.2f}; "
         f"worst backlog: {baseline.max_backlog / 3600:.1f}h -> "
         f"{balanced.max_backlog / 3600:.1f}h")

    if full_scale:
        assert len(jobs) > 100
        assert balanced.imbalance < baseline.imbalance
        assert balanced.max_backlog < 0.8 * baseline.max_backlog
