"""Bench: multi-worker speedup of the sharded study runner.

Generates the same (reduced-scale) study trace with one worker and with all
available workers, reporting the wall-clock ratio.  Synthesis dominates the
pipeline and is embarrassingly parallel, so on an N-core machine the
speedup should approach N; the merged trace is byte-identical either way,
which this bench also asserts (it is the runner's core invariant).
"""

from __future__ import annotations

import pytest

from repro.core.env import env_int
from repro.runner import default_workers, run_study
from repro.workloads import TraceGeneratorConfig

#: Keep the scaling bench affordable even at full 6000-job scale.
SCALING_JOBS = min(env_int("REPRO_BENCH_JOBS", 6000), 1000)
SCALING_MONTHS = min(env_int("REPRO_BENCH_MONTHS", 28), 12)
BENCH_SEED = env_int("REPRO_BENCH_SEED", 7)


@pytest.fixture(scope="module")
def scaling_config():
    return TraceGeneratorConfig(total_jobs=SCALING_JOBS, months=SCALING_MONTHS,
                                seed=BENCH_SEED)


def test_runner_speedup(scaling_config, emit, benchmark):
    serial = run_study(config=scaling_config, workers=1, use_cache=False)

    workers = default_workers()
    parallel = benchmark.pedantic(
        lambda: run_study(config=scaling_config, workers=workers,
                          use_cache=False),
        rounds=1, iterations=1,
    )

    assert parallel.trace.records == serial.trace.records

    serial_s = serial.timings["total"]
    parallel_s = parallel.timings["total"]
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    emit(
        f"runner scaling ({SCALING_JOBS} jobs, {SCALING_MONTHS} months):\n"
        f"  workers=1:  {serial_s:7.2f}s "
        f"(synthesis {serial.timings['synthesis']:.2f}s, "
        f"simulation {serial.timings['simulation']:.2f}s)\n"
        f"  workers={workers}:  {parallel_s:7.2f}s "
        f"(synthesis {parallel.timings['synthesis']:.2f}s, "
        f"simulation {parallel.timings['simulation']:.2f}s)\n"
        f"  speedup: {speedup:.2f}x on {workers} workers"
    )


def test_simulation_engine_speedup(scaling_config, emit, benchmark):
    """Simulation-phase breakdown: batched fast-sim vs the event loop.

    Runs the same single-worker study through both simulation cores.  The
    golden contract (tests/test_fastsim_golden.py) makes the traces
    byte-identical, which this bench re-asserts; on top of that it reports
    the simulation-phase wall-clock, an events/sec estimate for the event
    engine, and the batched-vs-event speedup.  The ~5-10x target holds at
    full study scale — at the reduced CI smoke scale fixed per-run setup
    costs dominate, so the speedup is reported, not asserted.
    """
    event = run_study(config=scaling_config, workers=1, use_cache=False,
                      engine="event")
    batched = benchmark.pedantic(
        lambda: run_study(config=scaling_config, workers=1, use_cache=False,
                          engine="batched"),
        rounds=1, iterations=1,
    )

    # The byte-equivalence contract, end to end through the runner.
    assert batched.trace.records == event.trace.records

    counts = event.trace.status_counts()
    # ~4 events per completed job (dispatch/start/finish/chained dispatch),
    # ~3 per cancellation (dispatch/cancel/chained dispatch).
    events = (4 * (counts.get("DONE", 0) + counts.get("ERROR", 0))
              + 3 * counts.get("CANCELLED", 0))
    event_sim = event.timings["simulation"]
    batched_sim = batched.timings["simulation"]
    speedup = event_sim / batched_sim if batched_sim > 0 else float("inf")
    events_per_s = events / event_sim if event_sim > 0 else float("inf")
    emit(
        f"simulation engines ({SCALING_JOBS} jobs, {SCALING_MONTHS} "
        f"months, workers=1):\n"
        f"  event:    {event_sim:7.3f}s simulation phase "
        f"({events} events, {events_per_s:,.0f} events/s)\n"
        f"  batched:  {batched_sim:7.3f}s simulation phase\n"
        f"  speedup:  {speedup:.2f}x (byte-identical traces)"
    )
