"""Bench: multi-worker speedup of the sharded study runner.

Generates the same (reduced-scale) study trace with one worker and with all
available workers, reporting the wall-clock ratio.  Synthesis dominates the
pipeline and is embarrassingly parallel, so on an N-core machine the
speedup should approach N; the merged trace is byte-identical either way,
which this bench also asserts (it is the runner's core invariant).
"""

from __future__ import annotations

import pytest

from repro.core.env import env_int
from repro.runner import default_workers, run_study
from repro.workloads import TraceGeneratorConfig

#: Keep the scaling bench affordable even at full 6000-job scale.
SCALING_JOBS = min(env_int("REPRO_BENCH_JOBS", 6000), 1000)
SCALING_MONTHS = min(env_int("REPRO_BENCH_MONTHS", 28), 12)
BENCH_SEED = env_int("REPRO_BENCH_SEED", 7)


@pytest.fixture(scope="module")
def scaling_config():
    return TraceGeneratorConfig(total_jobs=SCALING_JOBS, months=SCALING_MONTHS,
                                seed=BENCH_SEED)


def test_runner_speedup(scaling_config, emit, benchmark):
    serial = run_study(config=scaling_config, workers=1, use_cache=False)

    workers = default_workers()
    parallel = benchmark.pedantic(
        lambda: run_study(config=scaling_config, workers=workers,
                          use_cache=False),
        rounds=1, iterations=1,
    )

    assert parallel.trace.records == serial.trace.records

    serial_s = serial.timings["total"]
    parallel_s = parallel.timings["total"]
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    emit(
        f"runner scaling ({SCALING_JOBS} jobs, {SCALING_MONTHS} months):\n"
        f"  workers=1:  {serial_s:7.2f}s "
        f"(synthesis {serial.timings['synthesis']:.2f}s, "
        f"simulation {serial.timings['simulation']:.2f}s)\n"
        f"  workers={workers}:  {parallel_s:7.2f}s "
        f"(synthesis {parallel.timings['synthesis']:.2f}s, "
        f"simulation {parallel.timings['simulation']:.2f}s)\n"
        f"  speedup: {speedup:.2f}x on {workers} workers"
    )
