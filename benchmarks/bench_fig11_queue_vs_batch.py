"""Fig. 11 — queue time vs batch size.

Paper shape: batch sizes span the full 1-900 range; the per-job queue time
tends to grow with batch size, while the *effective per-circuit* queue time
almost always decreases as batches grow (the whole batch pays the queue
once).
"""

from repro.analysis import per_circuit_queue_by_batch_size, queue_time_by_batch_size
from repro.analysis.report import render_table


def test_fig11_queue_vs_batch_size(benchmark, study_trace, emit):
    per_job = benchmark(queue_time_by_batch_size, study_trace, 100)
    per_circuit = per_circuit_queue_by_batch_size(study_trace, bin_width=100)

    rows = []
    for key in sorted(per_job):
        low, high = key
        rows.append({
            "batch_bin": f"{low}-{high}",
            "jobs": per_job[key].count,
            "median_queue_min_per_job": per_job[key].median,
            "median_queue_sec_per_circuit": per_circuit.get(key, float("nan")),
        })
    emit(render_table("Fig. 11 — queue time vs batch size", rows))

    bins = sorted(per_circuit)
    smallest_bin, largest_bin = bins[0], bins[-1]
    emit(f"effective per-circuit queue: {per_circuit[smallest_bin]:.0f}s in the "
         f"smallest batches vs {per_circuit[largest_bin]:.0f}s in the largest "
         "(paper: decreases with batch size)")

    # Shape assertions.
    batch_sizes = study_trace.numeric_column("batch_size")
    assert batch_sizes.min() >= 1 and batch_sizes.max() > 700
    assert per_circuit[largest_bin] < 0.25 * per_circuit[smallest_bin]
