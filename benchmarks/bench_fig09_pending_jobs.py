"""Fig. 9 — average pending jobs per machine over a one-week window.

Paper shape (week in March 2021, i.e. near the end of the study window):
within every machine-size class the busiest machine is a public one, public
machines carry 10-100x the pending jobs of comparable privileged machines,
and the load is unequal even between machines of the same size.
"""


from repro.analysis import pending_jobs_by_machine
from repro.analysis.report import render_table
from repro.core.units import DAY_SECONDS

# A week late in the study window (month 26 of 28 ~ March 2021).
WINDOW_START = 26 * 30.4 * DAY_SECONDS


def test_fig09_pending_jobs(benchmark, study_fleet, study_trace, emit):
    pending = benchmark(
        pending_jobs_by_machine, study_fleet, WINDOW_START, 7.0, 64, 7,
        study_trace,
    )

    rows = [
        {
            "machine": name,
            "qubits": study_fleet[name].num_qubits,
            "access": study_fleet[name].access.value,
            "avg_pending_jobs": value,
        }
        for name, value in sorted(pending.items(),
                                  key=lambda kv: study_fleet[kv[0]].num_qubits)
        if not study_fleet[name].is_simulator
    ]
    emit(render_table("Fig. 9 — average pending jobs per machine (1-week window)",
                      rows))

    five_q_public = [pending[n] for n, b in study_fleet.items()
                     if b.num_qubits == 5 and b.is_public]
    five_q_privileged = [pending[n] for n, b in study_fleet.items()
                         if b.num_qubits == 5 and not b.is_public]
    emit(f"5-qubit machines: busiest public {max(five_q_public):.0f} vs busiest "
         f"privileged {max(five_q_privileged):.0f} pending jobs "
         "(paper: public 10-100x busier)")

    assert max(five_q_public) > 10 * max(five_q_privileged)
    # Load is unequal even among same-size public machines.
    assert max(five_q_public) > 3 * min(five_q_public)
    # Larger privileged machines still hold non-trivial queues.
    big = [pending[n] for n, b in study_fleet.items() if b.num_qubits >= 27]
    assert max(big) > 1.0
