"""Fig. 15 — correlation of predicted vs actual job runtimes per machine.

Paper shape: with the product-of-linear-terms model trained on a 70/30
split, the Pearson correlation between predicted and actual runtimes is
0.95 or above on all but a couple of machines; batch size is the dominant
feature and shots the second contributor; the remaining features add little.
"""

from collections import Counter

import numpy as np
import pytest

from repro.analysis.report import render_table
from repro.prediction import RuntimePredictionStudy


def test_fig15_runtime_prediction_correlation(benchmark, study_trace, emit,
                                              full_scale):
    per_machine = Counter(r.machine for r in study_trace.completed())
    if not per_machine or max(per_machine.values()) < 60:
        pytest.skip("trace too small: no machine has the 60 jobs the "
                    "prediction study trains on")
    study = RuntimePredictionStudy(min_jobs_per_machine=60, seed=3)
    results = benchmark.pedantic(study.run, args=(study_trace,), rounds=1,
                                 iterations=1)

    feature_labels = ["Batch", "+Shots", "+Depth", "+Width", "+GateOps",
                      "+MemSlots", "+Qubits"]
    rows = []
    for machine, result in sorted(results.items()):
        row = {"machine": machine, "jobs": result.num_jobs}
        for label in feature_labels:
            row[label] = result.correlations.get(label, float("nan"))
        rows.append(row)
    emit(render_table(
        "Fig. 15 — Pearson correlation of predicted vs actual runtime "
        "(cumulative feature sets)", rows))

    full_correlations = [r.full_model_correlation for r in results.values()]
    batch_only = [r.correlations.get("Batch", 0.0) for r in results.values()]
    emit(f"machines evaluated: {len(results)}; "
         f"median full-model correlation {np.median(full_correlations):.3f}; "
         f"machines >= 0.95: {sum(c >= 0.95 for c in full_correlations)} "
         f"(paper: >= 0.95 on all but two machines)")

    if full_scale:
        assert len(results) >= 8
        # All-but-two machines reach high correlation.
        assert sum(c >= 0.9 for c in full_correlations) >= len(full_correlations) - 2
        assert np.median(full_correlations) > 0.93
        # Batch size alone is already the dominant contributor.
        assert np.median(batch_only) > 0.8
