"""Fig. 8 — machine utilisation distribution per machine.

Paper shape: small machines are highly utilised (circuits use most of their
qubits); utilisation drops sharply on the larger machines; machines of the
same size are not utilised uniformly.
"""

import numpy as np

from repro.analysis import utilization_by_machine
from repro.analysis.report import render_table


def test_fig08_machine_utilization(benchmark, study_trace, emit):
    utilization = benchmark(utilization_by_machine, study_trace)

    machine_qubits = {r.machine: r.machine_qubits for r in study_trace}
    rows = [
        {
            "machine": machine,
            "qubits": machine_qubits[machine],
            "jobs": summary.count,
            "p25": summary.p25,
            "median": summary.median,
            "p75": summary.p75,
        }
        for machine, summary in sorted(utilization.items(),
                                       key=lambda kv: machine_qubits[kv[0]])
    ]
    emit(render_table("Fig. 8 — machine utilisation (fraction of qubits used)",
                      rows))

    small = [s.median for m, s in utilization.items() if machine_qubits[m] <= 7]
    large = [s.median for m, s in utilization.items() if machine_qubits[m] >= 27]
    emit(f"median utilisation: small machines {np.mean(small):.2f}, "
         f"27q+ machines {np.mean(large):.2f} "
         "(paper: high on small machines, low on large ones)")

    assert small and large
    assert np.mean(small) > 2.5 * np.mean(large)
    assert all(0.0 <= s.maximum <= 1.0 for s in utilization.values())
