"""Fig. 10 — queue-time distribution per machine.

Paper shape: queue times vary widely across machines; public machines show
mean queue times of multiple hours; privileged machines (especially the
large ones) average around a couple of hours or less.
"""

import numpy as np

from repro.analysis import queue_time_by_machine
from repro.analysis.report import render_table


def test_fig10_queue_time_by_machine(benchmark, study_trace, emit):
    distribution = benchmark(queue_time_by_machine, study_trace)

    access = {r.machine: r.access for r in study_trace}
    qubits = {r.machine: r.machine_qubits for r in study_trace}
    rows = [
        {
            "machine": machine,
            "qubits": qubits[machine],
            "access": access[machine],
            "jobs": summary.count,
            "median_minutes": summary.median,
            "p90_minutes": summary.p90,
            "max_minutes": summary.maximum,
        }
        for machine, summary in sorted(distribution.items(),
                                       key=lambda kv: qubits[kv[0]])
    ]
    emit(render_table("Fig. 10 — queue time per job vs machine (minutes)", rows))

    public_medians = [s.median for m, s in distribution.items()
                      if access[m] == "public" and "simulator" not in m]
    privileged_medians = [s.median for m, s in distribution.items()
                          if access[m] == "privileged"]
    emit(f"median of medians: public {np.median(public_medians):.0f} min, "
         f"privileged {np.median(privileged_medians):.0f} min "
         "(paper: public = hours, privileged <= ~1-2 hours)")

    assert public_medians and privileged_medians
    assert np.median(public_medians) > np.median(privileged_medians)
    # Wide spread: some machines see day-plus waits, others only minutes.
    assert max(s.maximum for s in distribution.values()) > 12 * 60
    assert min(s.median for s in distribution.values()) < 60
