"""Benchmark: suite scheduling on one shared pool vs the sequential engine.

Runs the same scenario suite twice at a configurable scale:

* **sequential** — the per-scenario engine (``suite_scheduling=False``):
  every scenario builds its own worker pool, runs its synthesis and
  simulation phases behind private barriers, and tears the pool down.
* **suite** — the shared-pool scheduler: one
  :class:`~repro.runner.pool.SharedWorkerPool` executes every scenario's
  shards and machine groups as a single interleaved work queue.

Both runs are cache-disabled and their per-scenario traces are compared
byte for byte, so the measured speedup never trades determinism away.  The
suite optionally includes a parameter sweep (``--sweep``) and seed
replicates (``--replicates``) — the shapes the suite scheduler exists for:
many small related studies.

Writes a ``BENCH_suite.json`` artifact (consumed by CI) and prints a
summary.  Run as a script::

    PYTHONPATH=src python benchmarks/bench_suite.py --jobs 200 --months 2 \
        --replicates 2 --sweep backlog_shift.scale=1.5,2.5

Target (the PR acceptance bar): >=1.3x wall-clock over the sequential
engine on a 5-scenario reduced-scale suite with multiple workers.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path
from typing import List

from repro.core.env import env_int
from repro.runner import default_workers
from repro.scenarios import (
    ScenarioEngine,
    expand_sweeps,
    replicate_scenarios,
    resolve_scenarios,
    sweep_from_flags,
)
from repro.workloads.generator import TraceGeneratorConfig

DEFAULT_SCENARIOS = ("baseline", "demand-surge", "machine-outage",
                     "calibration-drift", "policy-swap")


def build_scenarios(args, base_seed: int) -> List:
    names = tuple(name.strip() for name in args.scenarios.split(",")
                  if name.strip())
    scenarios = list(resolve_scenarios(names))
    if args.sweep:
        scenarios.append(sweep_from_flags(args.sweep))
    scenarios = expand_sweeps(scenarios)
    if args.replicates > 1:
        scenarios = replicate_scenarios(scenarios, args.replicates,
                                        base_seed=base_seed)
    return scenarios


def run_mode(config, scenarios, workers, suite_scheduling, quiet):
    progress = None if quiet else (
        lambda message: print(f"  [{'suite' if suite_scheduling else 'seq'}] "
                              f"{message}"))
    engine = ScenarioEngine(
        config, workers=workers, suite_scheduling=suite_scheduling,
        progress=progress)
    started = time.perf_counter()
    suite = engine.run(scenarios, use_cache=False)
    return suite, time.perf_counter() - started


def traces_match(first, second, scratch: Path) -> bool:
    for run in first:
        a = scratch / "a.npz"
        b = scratch / "b.npz"
        run.trace.to_npz(a)
        second.run_for(run.name).trace.to_npz(b)
        if a.read_bytes() != b.read_bytes():
            return False
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=env_int("REPRO_BENCH_JOBS", 200))
    parser.add_argument(
        "--months", type=int, default=env_int("REPRO_BENCH_MONTHS", 2))
    parser.add_argument(
        "--seed", type=int, default=env_int("REPRO_BENCH_SEED", 7))
    parser.add_argument(
        "--workers", type=int,
        default=env_int("REPRO_BENCH_WORKERS", default_workers()))
    parser.add_argument(
        "--scenarios", default=",".join(DEFAULT_SCENARIOS),
        help="comma-separated scenario names (default: %(default)s)")
    parser.add_argument(
        "--sweep", action="append",
        help="sweep axis kind.field=v1,v2,... (repeatable)")
    parser.add_argument(
        "--replicates", type=int, default=1,
        help="seed replicates per scenario (default: %(default)s)")
    parser.add_argument("--output", default="BENCH_suite.json")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args()

    config = TraceGeneratorConfig(
        total_jobs=args.jobs, months=args.months, seed=args.seed)
    scenarios = build_scenarios(args, base_seed=args.seed)
    print(f"suite: {len(scenarios)} scenarios x {args.jobs} jobs / "
          f"{args.months} months, {args.workers} workers")

    sequential_suite, sequential_seconds = run_mode(
        config, scenarios, args.workers, suite_scheduling=False,
        quiet=args.quiet)
    print(f"sequential engine: {sequential_seconds:.2f}s")
    shared_suite, suite_seconds = run_mode(
        config, scenarios, args.workers, suite_scheduling=True,
        quiet=args.quiet)
    print(f"shared-pool suite scheduler: {suite_seconds:.2f}s")

    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        byte_identical = traces_match(sequential_suite, shared_suite,
                                      Path(scratch))
    speedup = (round(sequential_seconds / suite_seconds, 3)
               if suite_seconds > 0 else float("inf"))
    print(f"speedup {speedup}x, byte_identical={byte_identical}")
    if not byte_identical:
        raise SystemExit(
            "suite scheduler and sequential engine disagree on trace bytes")

    payload = {
        "benchmark": "suite_scheduler",
        "jobs": args.jobs,
        "months": args.months,
        "seed": args.seed,
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        "scenarios": [scenario.name for scenario in scenarios],
        "replicates": args.replicates,
        "sweeps": args.sweep or [],
        "sequential_seconds": round(sequential_seconds, 3),
        "suite_seconds": round(suite_seconds, 3),
        "speedup": speedup,
        "byte_identical": byte_identical,
    }
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2))
    print(f"benchmark results written to {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
