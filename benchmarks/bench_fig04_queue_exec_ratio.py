"""Fig. 4 — per-job queue:execution time ratios (sorted).

Paper shape: ~30 % of jobs have a ratio at or below 1x, the median ratio is
around 10x, and ~25 % of jobs see 100x or worse.
"""

import numpy as np

from repro.analysis import ratio_report
from repro.analysis.queuing import queue_to_run_ratios
from repro.analysis.report import render_table


def test_fig04_queue_to_run_ratio(benchmark, study_trace, emit):
    report = benchmark(ratio_report, study_trace)

    ratios = queue_to_run_ratios(study_trace)
    rows = [{"percentile": p, "queue_to_run_ratio": float(np.percentile(ratios, p))}
            for p in (10, 25, 50, 75, 90, 99)]
    emit(render_table("Fig. 4 — queue:execution ratio percentiles", rows))
    emit(render_table("Fig. 4 — headline statistics", [
        {"metric": "fraction <= 1x (paper ~0.30)",
         "value": report.fraction_at_or_below_one},
        {"metric": "median ratio (paper ~10x)", "value": report.median_ratio},
        {"metric": "fraction >= 100x (paper ~0.25)",
         "value": report.fraction_at_or_above_hundred},
    ]))

    assert 0.1 < report.fraction_at_or_below_one < 0.6
    assert 2.0 < report.median_ratio < 100.0
    assert 0.1 < report.fraction_at_or_above_hundred < 0.6
