"""Fig. 16 — predicted vs actual runtimes on individual machines.

Paper shape: a machine with a wide runtime range (Manhattan) shows visually
tight prediction; the worst machine (Vigo) has a narrow runtime range so its
correlation looks poor even though the absolute errors are small
(~1 minute).
"""

from collections import Counter

import numpy as np
import pytest

from repro.analysis.report import render_table
from repro.prediction import RuntimePredictionStudy


def test_fig16_predicted_vs_actual(benchmark, study_trace, emit, full_scale):
    per_machine = Counter(r.machine for r in study_trace.completed())
    if not per_machine or max(per_machine.values()) < 60:
        pytest.skip("trace too small: no machine has the 60 jobs the "
                    "prediction study trains on")
    study = RuntimePredictionStudy(min_jobs_per_machine=60, seed=3)
    results = benchmark.pedantic(study.run, args=(study_trace,), rounds=1,
                                 iterations=1)

    by_correlation = sorted(results.values(),
                            key=lambda r: r.full_model_correlation)
    worst = by_correlation[0]
    best = by_correlation[-1]

    for label, result in (("highest-correlation machine", best),
                          ("lowest-correlation machine", worst)):
        actual = np.asarray(result.test_actual_minutes)
        predicted = np.asarray(result.test_predicted_minutes)
        order = np.argsort(actual)
        rows = [
            {"job_instance": int(i),
             "actual_minutes": float(actual[index]),
             "predicted_minutes": float(predicted[index])}
            for i, index in enumerate(order[:: max(1, len(order) // 25)])
        ]
        emit(render_table(
            f"Fig. 16 — predicted vs actual runtimes ({label}: "
            f"{result.machine}, correlation "
            f"{result.full_model_correlation:.3f})", rows))
        error = np.abs(actual - predicted)
        emit(f"{result.machine}: runtime range "
             f"{actual.min():.1f}-{actual.max():.1f} min, "
             f"median absolute error {np.median(error):.2f} min")

    # Shape assertions: the best machine tracks very closely; the worst
    # machine's weakness is its narrow runtime range (small absolute errors),
    # exactly the paper's explanation for Vigo.
    best_range = max(best.test_actual_minutes) - min(best.test_actual_minutes)
    worst_range = max(worst.test_actual_minutes) - min(worst.test_actual_minutes)
    worst_error = np.median(np.abs(np.asarray(worst.test_actual_minutes)
                                   - np.asarray(worst.test_predicted_minutes)))
    if full_scale:
        assert best.full_model_correlation > 0.95
        assert worst.full_model_correlation < best.full_model_correlation
        assert worst_error < 0.25 * max(best_range, 1.0)
        assert worst_range < best_range
