"""Fig. 2b — execution status breakdown.

Paper shape: around 95 % of jobs are DONE; roughly 5 % end in ERROR or
CANCELLED (the "wasted executions" of insight 1).
"""

from repro.analysis import status_breakdown, wasted_execution_fraction
from repro.analysis.report import render_table


def test_fig02b_status_breakdown(benchmark, study_trace, emit):
    breakdown = benchmark(status_breakdown, study_trace)

    rows = [{"status": status, "fraction": fraction}
            for status, fraction in sorted(breakdown.items())]
    emit(render_table("Fig. 2b — job execution status breakdown", rows))
    wasted = wasted_execution_fraction(study_trace)
    emit(f"wasted (non-DONE) fraction: {wasted:.3f} (paper: ~0.05)")

    assert abs(sum(breakdown.values()) - 1.0) < 1e-9
    assert breakdown["DONE"] > 0.85
    assert 0.01 < wasted < 0.15
