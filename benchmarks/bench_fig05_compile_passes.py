"""Fig. 5 — per-pass compile time: today's machines vs a ~1000-qubit target.

Paper shape: for a 64-qubit QFT on the 65-qubit Manhattan every pass costs
roughly a second or less, while compiling a ~1000-qubit QFT for a fake
1000-qubit machine blows the layout and routing passes up by 100-1000x.

The full-size 980-qubit compile takes hours with a pure-Python transpiler,
so by default the bench compiles a scaled-down large circuit (set by
``REPRO_FIG5_LARGE_QUBITS``, default 96 qubits on a 128-qubit fake device),
measures the per-pass scaling exponent between the small and large runs and
extrapolates it to 1000 qubits — preserving the figure's conclusion that
layout/routing dominate and grow by orders of magnitude.
"""

import math
import os

from repro.analysis.report import render_table
from repro.circuits import qft_circuit
from repro.devices import build_backend, fake_large_backend
from repro.transpiler import preset_pass_manager

SMALL_QUBITS = int(os.environ.get("REPRO_FIG5_SMALL_QUBITS", "24"))
LARGE_QUBITS = int(os.environ.get("REPRO_FIG5_LARGE_QUBITS", "96"))
TARGET_QUBITS = 980


def _compile_timing(num_qubits: int, backend) -> dict:
    manager = preset_pass_manager(optimization_level=2, seed=3)
    circuit = qft_circuit(num_qubits, measure=True)
    result = manager.run(circuit, backend=backend)
    return result.timing_by_pass()


def test_fig05_per_pass_compile_time(benchmark, emit):
    small_backend = build_backend("ibmq_manhattan", seed=3)
    large_backend = fake_large_backend(max(LARGE_QUBITS + 32, 128), seed=3)

    small = _compile_timing(SMALL_QUBITS, small_backend)

    def compile_large():
        return _compile_timing(LARGE_QUBITS, large_backend)

    large = benchmark.pedantic(compile_large, rounds=1, iterations=1)

    scale = math.log(LARGE_QUBITS / SMALL_QUBITS)
    rows = []
    for pass_name in sorted(set(small) | set(large)):
        small_seconds = small.get(pass_name, 0.0)
        large_seconds = large.get(pass_name, 0.0)
        if small_seconds > 1e-6 and large_seconds > 1e-6:
            exponent = math.log(large_seconds / small_seconds) / scale
            extrapolated = large_seconds * (TARGET_QUBITS / LARGE_QUBITS) ** exponent
        else:
            exponent = float("nan")
            extrapolated = large_seconds
        rows.append({
            "pass": pass_name,
            f"{SMALL_QUBITS}q_seconds": small_seconds,
            f"{LARGE_QUBITS}q_seconds": large_seconds,
            "scaling_exponent": exponent,
            f"extrapolated_{TARGET_QUBITS}q_seconds": extrapolated,
        })
    rows.sort(key=lambda r: -r[f"{LARGE_QUBITS}q_seconds"])
    emit(render_table(
        "Fig. 5 — compile time per pass (small vs large QFT, with extrapolation)",
        rows))

    total_small = sum(small.values())
    total_large = sum(large.values())
    emit(f"total compile time: {total_small:.2f}s at {SMALL_QUBITS}q -> "
         f"{total_large:.2f}s at {LARGE_QUBITS}q "
         f"({total_large / max(total_small, 1e-9):.0f}x; paper: 100-1000x "
         f"from 64q to ~1000q)")

    # Shape assertions: the large compile is much slower, and the routing /
    # layout family of passes dominates it (as in the paper).
    assert total_large > 5 * total_small
    routing_like = sum(seconds for name, seconds in large.items()
                       if name in ("StochasticSwap", "CSPLayout", "DenseLayout",
                                   "NoiseAdaptiveLayout", "SabreLayout"))
    assert routing_like > 0.3 * total_large
