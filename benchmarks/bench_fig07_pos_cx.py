"""Fig. 7 — Probability of Success of a 4-qubit QFT vs CX metrics.

Paper shape: POS varies widely (62 % down to 19 %) across Casablanca (7q),
Toronto (27q), Guadalupe (16q), Rome (5q) and Manhattan (65q); it does NOT
track machine size, but it anti-correlates with the CX metrics (CX-Depth,
CX-Total, and each multiplied by the average CX error).

The POS here is measured by the noisy sampler on a QFT-echo benchmark (the
hardware-style way of giving the QFT a definite correct answer).
"""

from repro.analysis.report import render_table
from repro.analysis.stats import pearson_correlation
from repro.circuits import qft_echo_circuit
from repro.devices import build_backend
from repro.fidelity import measure_probability_of_success, compute_cx_metrics
from repro.transpiler import transpile

MACHINES = ["ibmq_casablanca", "ibmq_toronto", "ibmq_guadalupe", "ibmq_rome",
            "ibmq_manhattan"]


def _evaluate_machines():
    circuit = qft_echo_circuit(4)
    rows = []
    for name in MACHINES:
        backend = build_backend(name, seed=11)
        calibration = backend.calibration_at(6 * 3600.0)
        compiled = transpile(circuit, backend, optimization_level=3, seed=11,
                             compile_time=6 * 3600.0)
        metrics = compute_cx_metrics(compiled.circuit, calibration)
        pos = measure_probability_of_success(circuit, compiled.circuit,
                                             calibration, shots=4096, seed=11)
        rows.append({
            "machine": name,
            "machine_qubits": backend.num_qubits,
            "pos_percent": 100.0 * pos,
            "cx_depth": metrics.cx_depth,
            "cx_total": metrics.cx_total,
            "cx_depth_x_err": metrics.cx_depth_x_error,
            "cx_total_x_err": metrics.cx_total_x_error,
        })
    return rows


def test_fig07_pos_vs_cx_metrics(benchmark, emit):
    rows = benchmark.pedantic(_evaluate_machines, rounds=1, iterations=1)

    emit(render_table("Fig. 7 — POS of the 4q QFT vs CX metrics", rows))

    pos = [row["pos_percent"] for row in rows]
    sizes = [row["machine_qubits"] for row in rows]
    cx_total_err = [row["cx_total_x_err"] for row in rows]
    cx_depth_err = [row["cx_depth_x_err"] for row in rows]
    correlation_total = pearson_correlation(pos, cx_total_err)
    correlation_depth = pearson_correlation(pos, cx_depth_err)
    correlation_size = pearson_correlation(pos, sizes)
    emit(f"corr(POS, CX-Total*err) = {correlation_total:.2f}, "
         f"corr(POS, CX-Depth*err) = {correlation_depth:.2f}, "
         f"corr(POS, machine size) = {correlation_size:.2f} "
         "(paper: POS anti-correlates with CX metrics, not with machine size)")

    # Shape assertions: wide POS spread, anti-correlation with CX*error
    # metrics, and the best machine is not the largest one.
    assert max(pos) - min(pos) > 15.0
    assert correlation_total < -0.4
    assert correlation_depth < -0.4
    best = max(rows, key=lambda r: r["pos_percent"])
    assert best["machine_qubits"] < 65
