"""Benchmark: the study-service gateway's submit → stream → fetch path.

Stands up a real :class:`~repro.service.gateway.StudyService` (HTTP server
on an ephemeral localhost port, executor threads over one shared worker
pool) and drives it through the stdlib
:class:`~repro.service.client.StudyServiceClient` — the exact stack
``python -m repro serve`` runs — measuring the service overheads the
gateway adds on top of the batch engine:

* **submit → first event**: time from ``POST /jobs`` returning to the
  first NDJSON line of the job's event stream (queueing + dispatch
  latency);
* **submit → done**: end-to-end latency of a small suite, cold
  (everything simulated) and warm (every scenario served from the trace
  cache — the resubmission path a long-lived service exists for);
* **cache-hit ratio** of the warm submission (must be 1.0: a resubmitted
  suite re-simulates nothing);
* **fetch**: latency of pulling a finished trace by fingerprint and the
  suite comparison by content key;
* **/metrics smoke**: the gateway's Prometheus exposition must scrape
  and parse cleanly — an unparseable ``GET /metrics`` fails the run.

Writes a ``BENCH_service.json`` artifact (consumed by CI) and prints a
summary.  Run as a script::

    PYTHONPATH=src python benchmarks/bench_service.py --jobs 200 \
        --months 2 --output BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import tempfile
import threading
import time
from pathlib import Path

from repro.core.env import env_int
from repro.service import StudyService, StudyServiceClient
from repro.telemetry import parse_prometheus_text
from repro.workloads.generator import TraceGeneratorConfig

DEFAULT_SCENARIOS = "baseline,demand-surge,machine-outage"


def time_submission(client: StudyServiceClient, payload: dict) -> dict:
    """Submit, stream to completion, return latency + result telemetry."""
    submitted = time.perf_counter()
    job_id = client.submit(payload)["job"]
    first_event = None
    for _ in client.events(job_id):
        if first_event is None:
            first_event = time.perf_counter() - submitted
    done = time.perf_counter() - submitted
    snapshot = client.job(job_id)
    if snapshot["state"] != "done":
        raise RuntimeError(
            f"job {job_id} finished {snapshot['state']}: "
            f"{snapshot.get('error')}")
    result = snapshot["result"]
    return {
        "job": job_id,
        "submit_to_first_event_seconds": round(first_event, 4),
        "submit_to_done_seconds": round(done, 4),
        "scenarios": len(result["scenarios"]),
        "cache_hits": result["cache_hits"],
        "cache_hit_ratio": round(
            result["cache_hits"] / len(result["scenarios"]), 3),
        "engine_seconds": result["total_seconds"],
        "result": result,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int,
                        default=env_int("REPRO_BENCH_JOBS", 600))
    parser.add_argument("--months", type=int,
                        default=env_int("REPRO_BENCH_MONTHS", 6))
    parser.add_argument("--seed", type=int,
                        default=env_int("REPRO_BENCH_SEED", 7))
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--scenarios", default=DEFAULT_SCENARIOS)
    parser.add_argument("--output", default="BENCH_service.json")
    args = parser.parse_args()

    names = [name.strip() for name in args.scenarios.split(",")
             if name.strip()]
    config = TraceGeneratorConfig(total_jobs=args.jobs, months=args.months,
                                  seed=args.seed)
    with tempfile.TemporaryDirectory(prefix="bench-service-") as cache_dir:
        service = StudyService(config, workers=args.workers,
                               cache_dir=cache_dir)
        service.start()
        server = service.make_server("127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        client = StudyServiceClient(url, tenant="bench")
        try:
            payload = {"scenarios": names}
            cold = time_submission(client, payload)
            warm = time_submission(client, payload)

            fingerprint = next(iter(cold["result"]["fingerprints"].values()))
            fetch_start = time.perf_counter()
            trace_bytes = len(client.fetch_trace(fingerprint))
            trace_fetch = time.perf_counter() - fetch_start
            fetch_start = time.perf_counter()
            client.fetch_comparison(cold["result"]["comparison_key"])
            comparison_fetch = time.perf_counter() - fetch_start
            stats = client.stats()

            # /metrics smoke: the exposition must parse as Prometheus
            # text — an unparseable scrape fails the bench run.
            metrics_error = None
            metric_families = 0
            try:
                exposition = parse_prometheus_text(client.metrics())
                metric_families = len(exposition)
            except ValueError as exc:
                metrics_error = str(exc)
        finally:
            server.shutdown()
            server.server_close()
            service.stop()
            thread.join(timeout=10)

    for run in (cold, warm):
        run.pop("result")
    payload = {
        "benchmark": "study_service_gateway",
        "jobs": args.jobs,
        "months": args.months,
        "seed": args.seed,
        "workers": service.pool.workers,
        "scenarios": names,
        "cold": cold,
        "warm": warm,
        "fetch": {
            "trace_seconds": round(trace_fetch, 4),
            "trace_bytes": trace_bytes,
            "comparison_seconds": round(comparison_fetch, 4),
        },
        "store": stats["store"],
        "pool": stats["pool"],
        "metrics": {
            "families": metric_families,
            "parse_error": metrics_error,
        },
    }

    print(f"study-service gateway ({args.jobs} jobs, {args.months} months, "
          f"{len(names)} scenarios, {service.pool.workers} workers):")
    print(f"  cold: first event {cold['submit_to_first_event_seconds']:.3f}s, "
          f"done {cold['submit_to_done_seconds']:.2f}s "
          f"(engine {cold['engine_seconds']:.2f}s)")
    print(f"  warm: first event {warm['submit_to_first_event_seconds']:.3f}s, "
          f"done {warm['submit_to_done_seconds']:.2f}s, "
          f"cache-hit ratio {warm['cache_hit_ratio']:.0%}")
    print(f"  fetch: trace {trace_bytes} bytes in {trace_fetch:.3f}s, "
          f"comparison in {comparison_fetch:.3f}s")
    print(f"  metrics: {metric_families} families scraped from /metrics")

    if metrics_error is not None:
        print(f"FAIL: GET /metrics served unparseable Prometheus text: "
              f"{metrics_error}")
        return 1
    if warm["cache_hit_ratio"] != 1.0:
        print("FAIL: warm resubmission re-simulated at least one scenario")
        return 1
    if warm["submit_to_done_seconds"] > cold["submit_to_done_seconds"]:
        print("WARN: warm submission slower than cold (noisy machine?)")

    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2))
    print(f"benchmark data written to {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
