"""Fig. 12a — fraction of jobs crossing a calibration boundary.

Paper shape: roughly 22 % of jobs were compiled against one day's
calibration but executed after the next recalibration (78 % stay within the
same calibration epoch).
"""

from repro.analysis import crossover_statistics
from repro.analysis.report import render_table


def test_fig12a_calibration_crossover(benchmark, study_trace, emit):
    stats = benchmark(crossover_statistics, study_trace)

    emit(render_table("Fig. 12a — calibration crossovers", [
        {"category": "intra-calibration (paper ~78.1%)",
         "fraction": stats.intra_calibration_fraction},
        {"category": "crossover (paper ~21.9%)",
         "fraction": stats.crossover_fraction},
        {"category": "jobs considered", "fraction": stats.total_jobs},
    ]))

    assert 0.08 < stats.crossover_fraction < 0.45
    assert stats.total_jobs > 0.8 * len(study_trace)
