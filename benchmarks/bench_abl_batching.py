"""Ablation — client-side batching (recommendations III-E.5 / V-E.5).

Sweeps the batch-size limit used to pack a fixed stream of circuits into
jobs and reports the effective per-circuit queue time, reproducing the
paper's argument that batching amortises the (dominant) queue time.
"""

from repro.analysis import queue_time_percentile_report
from repro.analysis.report import render_table
from repro.cloud.job import CircuitSpec
from repro.devices import build_backend
from repro.scheduling import BatchingPlanner

BATCH_LIMITS = [1, 10, 50, 100, 300, 900]
NUM_CIRCUITS = 1800


def test_ablation_batching(benchmark, study_trace, emit):
    backend = build_backend("ibmq_athens", seed=7)
    # Use the trace's own median queue time as the expected wait per job.
    median_queue_minutes = queue_time_percentile_report(
        study_trace, per_circuit=False).median_minutes
    planner = BatchingPlanner(backend, expected_queue_minutes=median_queue_minutes)
    circuits = [CircuitSpec(name=f"c{i}", width=3, depth=12, num_gates=24,
                            cx_count=8, cx_depth=5) for i in range(NUM_CIRCUITS)]

    def sweep():
        rows = []
        for limit in BATCH_LIMITS:
            plan = planner.plan(circuits, max_batch=limit)
            rows.append({
                "batch_limit": limit,
                "jobs_submitted": plan.num_jobs,
                "per_circuit_queue_minutes": plan.per_circuit_queue_minutes,
                "total_queue_minutes": plan.total_queue_minutes,
            })
        return rows

    rows = benchmark(sweep)
    emit(render_table(
        f"Ablation — batch-size sweep ({NUM_CIRCUITS} circuits, expected "
        f"queue {median_queue_minutes:.0f} min/job)", rows))

    per_circuit = [row["per_circuit_queue_minutes"] for row in rows]
    assert per_circuit == sorted(per_circuit, reverse=True)
    assert per_circuit[-1] < 0.01 * per_circuit[0]
