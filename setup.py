"""Setup shim for offline editable installs.

`pip install -e .` without network access must take the legacy
``setup.py develop`` path (the PEP 660 editable route of this pip/setuptools
vintage requires the ``wheel`` package, which the offline image lacks).
Keeping this shim — and no ``[build-system]`` table in ``pyproject.toml`` —
preserves that path; all metadata lives in ``pyproject.toml``.
"""
from setuptools import setup

setup()
