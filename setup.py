"""Setup shim.

The environment used for the reproduction is offline; a plain ``setup.py``
lets ``pip install -e .`` take the legacy editable-install path without
needing to download the ``wheel`` build backend.
"""
from setuptools import setup

setup()
