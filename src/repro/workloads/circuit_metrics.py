"""Fast structural metrics for benchmark circuit families.

The trace covers ~600k circuit executions; building and transpiling each one
would be prohibitively slow and is unnecessary because the analysis only
consumes structural metrics (width, depth, gate count, CX count/depth).
This module provides those metrics in two steps:

1. :func:`logical_metrics` — exact metrics of the *logical* circuit for a
   (family, width) pair, computed by actually building small circuits once
   and caching, and by closed-form gate-count formulas for larger widths.
2. :func:`compiled_metrics` — the post-compilation metrics, obtained by
   applying a routing-overhead factor that depends on how sparse the target
   machine's connectivity is (validated against the real transpiler in the
   test suite).
"""

from __future__ import annotations

import functools
import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import build_circuit
from repro.core.exceptions import WorkloadError
from repro.core.rng import RandomSource
from repro.devices.backend import Backend


@dataclass(frozen=True)
class CircuitMetrics:
    """Structural metrics of one circuit."""

    width: int
    depth: int
    num_gates: int
    cx_count: int
    cx_depth: int

    def scaled(self, gate_factor: float, depth_factor: float) -> "CircuitMetrics":
        """Return metrics scaled by routing overhead factors."""
        return CircuitMetrics(
            width=self.width,
            depth=max(self.depth, int(round(self.depth * depth_factor))),
            num_gates=max(self.num_gates, int(round(self.num_gates * gate_factor))),
            cx_count=max(self.cx_count, int(round(self.cx_count * gate_factor))),
            cx_depth=max(self.cx_depth, int(round(self.cx_depth * depth_factor))),
        )

    def jittered(self, rng: RandomSource, relative: float = 0.15) -> "CircuitMetrics":
        """Apply small multiplicative jitter (parameter-sweep variation)."""
        factor = max(0.5, 1.0 + rng.normal(0.0, relative))
        return CircuitMetrics(
            width=self.width,
            depth=max(1, int(round(self.depth * factor))),
            num_gates=max(1, int(round(self.num_gates * factor))),
            cx_count=max(0, int(round(self.cx_count * factor))),
            cx_depth=max(0, int(round(self.cx_depth * factor))),
        )


#: Widths up to this bound are measured by building the actual circuit.
_EXACT_WIDTH_LIMIT = 24


def structural_fingerprint(circuit: QuantumCircuit) -> str:
    """Stable hash of a circuit's *structure*, with parameters abstracted.

    Two circuits share a fingerprint iff they have the same qubit/clbit
    counts and the same ordered sequence of (gate name, parameter count,
    qubits, clbits).  Parameter *values* are deliberately excluded: the
    study's parameterised families (qaoa, vqe, random rotations) differ only
    in rotation angles, which never change layout, routing or gate-level
    optimisation decisions in our pass library — so all draws of one
    (family, width) template collapse into a single transpile equivalence
    class.

    The digest is derived purely from instruction content (no ``id()``,
    ``hash()`` or dict iteration), so it is stable across processes and
    ``PYTHONHASHSEED`` values.
    """
    hasher = hashlib.sha256()
    hasher.update(f"v1|{circuit.num_qubits}|{circuit.num_clbits}".encode())
    for instruction in circuit.instructions:
        record = "|{name}:{params}:{qubits}:{clbits}".format(
            name=instruction.name,
            params=len(instruction.gate.params),
            qubits=",".join(str(q) for q in instruction.qubits),
            clbits=",".join(str(c) for c in instruction.clbits),
        )
        hasher.update(record.encode())
    return hasher.hexdigest()[:24]


@functools.lru_cache(maxsize=1024)
def representative_circuit(family: str, width: int) -> QuantumCircuit:
    """The canonical member of the (family, width) equivalence class.

    Built with the same pinned RNG stream as :func:`logical_metrics`, so the
    representative is identical in every process and every worker — the
    fingerprint of this circuit *is* the class identity used by the
    transpile cache.
    """
    if width < 1:
        raise WorkloadError("width must be at least 1")
    return build_circuit(family, width, rng=RandomSource(width, name="metrics"))


@functools.lru_cache(maxsize=1024)
def class_fingerprint(family: str, width: int) -> str:
    """Structural fingerprint of the (family, width) representative."""
    return structural_fingerprint(representative_circuit(family, width))


#: CX-equivalent cost of each two-qubit gate once translated to the IBM basis.
_CX_EQUIVALENTS = {
    "cx": 1, "cz": 1, "cp": 2, "crz": 2, "rzz": 2, "swap": 3, "iswap": 2,
}


@functools.lru_cache(maxsize=4096)
def logical_metrics(family: str, width: int) -> CircuitMetrics:
    """Structural metrics of the benchmark circuit in the IBM basis.

    Two-qubit gates are counted in *CX equivalents* (a controlled phase costs
    two CX after basis translation, a SWAP costs three), matching what the
    real transpiler emits.
    """
    if width < 1:
        raise WorkloadError("width must be at least 1")
    if width <= _EXACT_WIDTH_LIMIT:
        circuit = build_circuit(family, width, rng=RandomSource(width, name="metrics"))
        raw_two_qubit = circuit.cx_count
        cx_equivalent = sum(
            _CX_EQUIVALENTS.get(instruction.name, 1)
            for instruction in circuit.two_qubit_instructions()
        )
        expansion = cx_equivalent / raw_two_qubit if raw_two_qubit else 1.0
        return CircuitMetrics(
            width=circuit.num_qubits,
            depth=max(circuit.depth(),
                      int(round(circuit.depth() * (0.5 + 0.5 * expansion)))),
            num_gates=circuit.num_gates + (cx_equivalent - raw_two_qubit),
            cx_count=cx_equivalent,
            cx_depth=max(circuit.cx_depth,
                         int(round(circuit.cx_depth * expansion))),
        )
    return _analytic_metrics(family, width)


def _analytic_metrics(family: str, width: int) -> CircuitMetrics:
    """Closed-form gate-count formulas for large widths."""
    if family == "qft":
        cx = width * (width - 1)  # each cp contributes 2 cx after translation
        gates = cx + 3 * width
        depth = 4 * width
        cx_depth = 2 * width
    elif family == "ghz":
        cx = width - 1
        gates = cx + width + 1
        depth = width + 1
        cx_depth = width - 1
    elif family == "bv":
        cx = max(1, width // 2)
        gates = 3 * width + cx
        depth = 5 + cx
        cx_depth = cx
    elif family == "qaoa":
        cx = 2 * width
        gates = 4 * width
        depth = 8
        cx_depth = 4
    elif family == "vqe":
        layers = 2
        cx = layers * (width - 1)
        gates = cx + 2 * width * (layers + 1)
        depth = 4 * (layers + 1)
        cx_depth = layers
    elif family == "random":
        depth = 2 * width
        cx = int(0.35 * width * depth / 2)
        gates = width * depth
        cx_depth = int(depth * 0.5)
    else:
        raise WorkloadError(f"unknown circuit family {family!r}")
    return CircuitMetrics(width=width, depth=depth, num_gates=gates,
                          cx_count=cx, cx_depth=cx_depth)


def routing_overhead_factor(backend: Backend, width: int) -> Tuple[float, float]:
    """(gate_factor, depth_factor) modelling swap-insertion overhead.

    Sparse machines (low average degree relative to the circuit width) incur
    more SWAPs.  A fully connected simulator incurs none.
    """
    coupling = backend.coupling_map
    if width <= 1 or backend.is_simulator:
        return 1.0, 1.0
    if coupling.num_qubits <= 1:
        return 1.0, 1.0
    average_degree = 2.0 * coupling.num_edges / coupling.num_qubits
    # Fraction of the machine occupied by the circuit: larger fractions of a
    # sparse device force longer swap chains.
    occupancy = min(1.0, width / coupling.num_qubits)
    sparsity = max(0.0, 1.0 - average_degree / max(width - 1, 1))
    gate_factor = 1.0 + 1.6 * sparsity * (0.4 + 0.6 * occupancy)
    depth_factor = 1.0 + 1.2 * sparsity * (0.4 + 0.6 * occupancy)
    return gate_factor, depth_factor


def compiled_metrics(family: str, width: int, backend: Backend,
                     rng: Optional[RandomSource] = None) -> CircuitMetrics:
    """Post-compilation metrics of a benchmark circuit on ``backend``."""
    if width > backend.num_qubits:
        raise WorkloadError(
            f"{width}-qubit circuit does not fit on {backend.name} "
            f"({backend.num_qubits} qubits)"
        )
    base = logical_metrics(family, width)
    gate_factor, depth_factor = routing_overhead_factor(backend, width)
    compiled = base.scaled(gate_factor, depth_factor)
    if rng is not None:
        compiled = compiled.jittered(rng)
    return compiled
