"""The synthetic two-year study trace generator.

:class:`TraceGenerator` drives the cloud simulator with a workload whose
scale and marginal distributions match the paper's dataset: ~6000 jobs /
~600k circuits / billions of shots over 28 months across the machine fleet,
with exponential demand growth, mixed public/privileged access, and the
mixed user population of :mod:`repro.workloads.users`.

The generator is split into three deterministic stages so that the parallel
study runner (:mod:`repro.runner`) can reuse them from worker processes:

* :func:`plan_submissions` — when each job is submitted (pure function of
  the config seed),
* :class:`JobSynthesizer` — what each job looks like (keyed by the *global*
  job index through :meth:`repro.core.rng.RandomSource.spawn`, so the result
  does not depend on which shard or process synthesises it),
* :func:`record_for` — how a completed job becomes a trace row.

The output is a :class:`~repro.workloads.trace.TraceDataset` ready for the
analysis layer and the per-figure benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cloud.backlog import ExternalLoadModel
from repro.cloud.job import CircuitBatch, Job
from repro.cloud.service import FailureModel, QuantumCloudService
from repro.core.exceptions import WorkloadError
from repro.core.rng import RandomSource
from repro.core.units import DAY_SECONDS
from repro.devices.backend import Backend
from repro.devices.calibration import DriftModel
from repro.devices.catalog import STUDY_MONTHS, fleet_in_study
from repro.scheduling.policies import SelectionObjective
from repro.telemetry import get_tracer
from repro.workloads.circuit_metrics import compiled_metrics
from repro.workloads.compile_model import CompileTimeModel
from repro.workloads.distributions import WorkloadDistributions
from repro.workloads.trace import (
    TRACE_SCHEMA_VERSION,
    JobRecord,
    TraceDataset,
)
from repro.workloads.users import (
    MachineSelectionPolicy,
    UserProfile,
    default_user_population,
    pick_user,
)

#: Average length of a study month in seconds.
MONTH_SECONDS = 30.4 * DAY_SECONDS

#: An estimator of the pending-job count on a backend at a timestamp,
#: used by queue-sensitive machine-selection policies.
PendingEstimator = Callable[[Backend, float], float]


@dataclass(frozen=True)
class ScenarioKnobs:
    """Declarative what-if perturbations applied on top of the baseline study.

    Every default is neutral: a config whose knobs are all defaults (or whose
    ``scenario`` field is ``None``) produces the baseline trace bit for bit.
    The knobs are plain data — tuples, floats, strings — so the trace-cache
    fingerprint covers them automatically and two scenarios that expand to
    the same knobs share one cache entry.

    The scenario layer (:mod:`repro.scenarios`) builds these from composable
    perturbation objects; they can also be set directly.
    """

    #: uniform multiplier on every month's arrival rate (demand surge/lull)
    demand_scale: float = 1.0
    #: per-month arrival-rate multipliers (index = month; missing months = 1.0)
    monthly_demand: Tuple[float, ...] = ()
    #: temporary outage windows: (machine, first_month, last_month) inclusive
    machine_outages: Tuple[Tuple[str, int, int], ...] = ()
    #: machines removed from the fleet for the whole study
    machines_removed: Tuple[str, ...] = ()
    #: fleet timeline changes: (machine, online_since_month) overrides
    machine_online_overrides: Tuple[Tuple[str, int], ...] = ()
    #: multiplier on calibration drift rates (error growth / coherence decay)
    calibration_drift_scale: float = 1.0
    #: fleet-wide multiplier on the external-backlog regime
    backlog_scale: float = 1.0
    #: per-machine backlog multipliers, composed with ``backlog_scale``
    machine_backlog_scales: Tuple[Tuple[str, float], ...] = ()
    #: terminal-status failure rates (None = the simulator's defaults)
    error_probability: Optional[float] = None
    cancel_probability: Optional[float] = None
    #: machine-selection policy forced onto every user (policy swap);
    #: a :class:`~repro.workloads.users.MachineSelectionPolicy` value
    forced_policy: Optional[str] = None
    #: full transpile-based ranking forced onto every user
    #: (``PolicySwap(mode="rank")``): a
    #: :class:`~repro.scheduling.policies.SelectionObjective` value.  Every
    #: job then picks its machine from the equivalence-class rank table
    #: instead of the trace-level policy heuristics.
    ranking_objective: Optional[str] = None
    #: preset optimisation level the rank table transpiles classes at
    ranking_level: int = 3

    def __post_init__(self):
        if self.demand_scale <= 0:
            raise WorkloadError("demand_scale must be positive")
        if any(m < 0 for m in self.monthly_demand):
            raise WorkloadError("monthly demand multipliers must be >= 0")
        if self.calibration_drift_scale < 0:
            raise WorkloadError("calibration_drift_scale must be >= 0")
        if self.backlog_scale <= 0:
            raise WorkloadError("backlog_scale must be positive")
        if any(s <= 0 for _, s in self.machine_backlog_scales):
            raise WorkloadError("machine backlog scales must be positive")
        for probability in (self.error_probability, self.cancel_probability):
            if probability is not None and not 0 <= probability < 1:
                raise WorkloadError("failure probabilities must be in [0, 1)")
        for machine, first, last in self.machine_outages:
            if first > last:
                raise WorkloadError(
                    f"outage window for {machine!r} has first month {first} "
                    f"after last month {last}")
        if self.forced_policy is not None:
            valid = {p.value for p in MachineSelectionPolicy}
            if self.forced_policy not in valid:
                raise WorkloadError(
                    f"unknown forced policy {self.forced_policy!r}; "
                    f"choose one of {sorted(valid)}")
        if self.ranking_objective is not None:
            valid = {o.value for o in SelectionObjective}
            if self.ranking_objective not in valid:
                raise WorkloadError(
                    f"unknown ranking objective {self.ranking_objective!r}; "
                    f"choose one of {sorted(valid)}")
            if self.forced_policy is not None:
                raise WorkloadError(
                    "forced_policy and ranking_objective are mutually "
                    "exclusive: a rank-mode scenario replaces the "
                    "trace-level policy swap entirely")
        if not 0 <= self.ranking_level <= 3:
            raise WorkloadError(
                f"ranking_level must be a preset level 0-3, "
                f"got {self.ranking_level}")

    def is_neutral(self) -> bool:
        """True if the knobs leave the baseline study untouched."""
        reference = ScenarioKnobs()
        if self.monthly_demand and all(value == 1.0
                                       for value in self.monthly_demand):
            # An all-ones overlay is demand-shaping that shapes nothing.
            reference = replace(reference, monthly_demand=self.monthly_demand)
        return self == reference

    def demand_multipliers(self, months: int) -> Optional[List[float]]:
        """Per-month arrival-rate multipliers, or None when neutral."""
        if self.demand_scale == 1.0 and not self.monthly_demand:
            return None
        overlay = list(self.monthly_demand[:months])
        overlay += [1.0] * (months - len(overlay))
        multipliers = [self.demand_scale * value for value in overlay]
        if all(value == 1.0 for value in multipliers):
            return None
        return multipliers

    def apply_to_fleet(self, fleet: Dict[str, Backend]) -> Dict[str, Backend]:
        """Apply the fleet-shaped perturbations to a freshly built fleet."""
        for name in self.machines_removed:
            fleet.pop(name, None)
        for name, month in self.machine_online_overrides:
            backend = fleet.get(name)
            if backend is not None:
                backend.online_since_month = int(month)
        for name, first, last in self.machine_outages:
            backend = fleet.get(name)
            if backend is not None:
                months = set(backend.offline_months)
                months.update(range(int(first), int(last) + 1))
                backend.offline_months = tuple(sorted(months))
        if self.calibration_drift_scale != 1.0:
            scale = self.calibration_drift_scale
            for backend in fleet.values():
                drift = backend.calibration_model.drift
                backend.calibration_model.drift = DriftModel(
                    error_growth_per_hour=drift.error_growth_per_hour * scale,
                    coherence_decay_per_hour=(
                        drift.coherence_decay_per_hour * scale),
                )
        per_machine = dict(self.machine_backlog_scales)
        if self.backlog_scale != 1.0 or per_machine:
            for name, backend in fleet.items():
                scale = self.backlog_scale * per_machine.get(name, 1.0)
                if scale != 1.0:
                    backend.metadata["backlog_scale"] = scale
        if not fleet:
            raise WorkloadError(
                "scenario perturbations removed every machine from the fleet")
        return fleet


@dataclass
class TraceGeneratorConfig:
    """Knobs of the synthetic trace."""

    total_jobs: int = 6000
    months: int = STUDY_MONTHS
    #: ratio between the last month's job rate and the first month's
    growth_ratio: float = 12.0
    seed: int = 7
    distributions: WorkloadDistributions = field(default_factory=WorkloadDistributions)
    compile_model: CompileTimeModel = field(default_factory=CompileTimeModel)
    users: Sequence[UserProfile] = field(default_factory=default_user_population)
    include_simulator: bool = True
    #: declarative what-if perturbations (None = the baseline study)
    scenario: Optional[ScenarioKnobs] = None

    def __post_init__(self):
        if self.total_jobs < 1:
            raise WorkloadError("total_jobs must be positive")
        if self.months < 1:
            raise WorkloadError("months must be positive")
        if self.growth_ratio <= 0:
            raise WorkloadError("growth_ratio must be positive")

    def jobs_per_month(self) -> List[int]:
        """Exponentially growing monthly job counts.

        The baseline counts sum to ``total_jobs``; scenario demand shaping
        multiplies each month's arrival rate relative to that baseline (a
        surge therefore raises the total while a lull lowers it).
        """
        rate = self.growth_ratio ** (1.0 / max(self.months - 1, 1))
        weights = [rate ** month for month in range(self.months)]
        total_weight = sum(weights)
        counts = [int(round(self.total_jobs * w / total_weight))
                  for w in weights]
        # Fix rounding drift on the busiest month.
        drift = self.total_jobs - sum(counts)
        counts[-1] += drift
        counts = [max(0, c) for c in counts]
        multipliers = (None if self.scenario is None
                       else self.scenario.demand_multipliers(self.months))
        if multipliers is None:
            return counts
        # Multipliers scale the *baseline counts* (not the raw weights), so
        # months a scenario leaves at 1.0 keep the exact baseline schedule
        # and per-scenario deltas are attributable to the perturbation.
        return [max(0, int(round(count * multiplier)))
                for count, multiplier in zip(counts, multipliers)]

    def build_fleet(self) -> Dict[str, Backend]:
        """The study fleet this configuration simulates."""
        fleet = fleet_in_study(seed=self.seed,
                               include_simulator=self.include_simulator)
        if self.scenario is not None:
            fleet = self.scenario.apply_to_fleet(fleet)
        return fleet

    def build_failure_model(self) -> Optional[FailureModel]:
        """The scenario's failure model (None = the simulator's default)."""
        knobs = self.scenario
        if knobs is None or (knobs.error_probability is None
                             and knobs.cancel_probability is None):
            return None
        defaults = FailureModel()
        return FailureModel(
            error_probability=(defaults.error_probability
                               if knobs.error_probability is None
                               else knobs.error_probability),
            cancel_probability=(defaults.cancel_probability
                                if knobs.cancel_probability is None
                                else knobs.cancel_probability),
        )


@dataclass(frozen=True)
class PlannedSubmission:
    """One planned job submission: when it happens and which job it is."""

    submit_time: float
    month: int
    job_index: int


def job_id_for_index(job_index: int) -> str:
    """The deterministic job id of the ``job_index``-th planned submission."""
    return f"job-{job_index + 1:06d}"


def plan_submissions(config: TraceGeneratorConfig) -> List[PlannedSubmission]:
    """Lay out every submission of the study, sorted by submission time.

    The schedule is a pure function of the config seed: monthly job counts
    follow the configured exponential growth, and each job's offset within
    its month is drawn from the root trace-generator stream in a fixed
    order.  Shard runners therefore all agree on the exact same plan.
    """
    rng = RandomSource(config.seed, name="trace_generator")
    submissions: List[PlannedSubmission] = []
    job_index = 0
    for month, count in enumerate(config.jobs_per_month()):
        month_start = month * MONTH_SECONDS
        for _ in range(count):
            offset = rng.uniform(0.0, MONTH_SECONDS)
            submissions.append(PlannedSubmission(
                submit_time=month_start + offset,
                month=month,
                job_index=job_index,
            ))
            job_index += 1
    submissions.sort(key=lambda item: item.submit_time)
    return submissions


#: Width of the memoisation buckets of :func:`expected_pending_estimator`.
PENDING_BUCKET_SECONDS = 3600.0


def expected_pending_estimator(
    fleet: Dict[str, Backend],
    bucket_seconds: float = PENDING_BUCKET_SECONDS,
) -> PendingEstimator:
    """A service-free pending-jobs estimator (the external-load expectation).

    Queue-sensitive users see the *expected* backlog of each machine, a pure
    function of the timestamp.  This is what the sharded runner uses: unlike
    the live-service estimate it does not depend on how many studied jobs
    happen to sit in the queue of one shard's service, so machine selection
    is identical for every shard layout.

    Lookups are memoised per ``(backend, coarse time bucket)``: every job
    probes every eligible machine at its submission time, and in the busy
    late months many submissions land in the same hour, so quantising the
    probe to the bucket start stops machine-selection probing from
    recomputing the same external-load expectation thousands of times.  The
    bucketed estimate stays a pure function of the timestamp, so shard
    layouts still agree exactly.
    """
    models = {
        name: ExternalLoadModel(backend=backend)
        for name, backend in fleet.items()
    }
    cache: Dict[Tuple[str, int], float] = {}

    def estimate(backend: Backend, timestamp: float) -> float:
        bucket = int(timestamp // bucket_seconds)
        key = (backend.name, bucket)
        value = cache.get(key)
        if value is None:
            value = models[backend.name].mean_pending_jobs(
                bucket * bucket_seconds)
            cache[key] = value
        return value

    return estimate


class JobSynthesizer:
    """Synthesises study jobs deterministically by global job index.

    All randomness of job ``i`` comes from ``root.spawn(i)``, where ``root``
    is the trace-generator stream of the config seed.  Two synthesizers with
    the same config and fleet therefore produce byte-identical jobs for the
    same index, no matter how many other jobs either one has synthesised —
    the property the sharded study runner relies on.
    """

    def __init__(self, config: TraceGeneratorConfig,
                 fleet: Dict[str, Backend],
                 pending_estimator: Optional[PendingEstimator] = None,
                 rank_table: Optional["ClassRankTable"] = None):
        self.config = config
        self.fleet = fleet
        self._root = RandomSource(config.seed, name="trace_generator")
        self._pending = pending_estimator or expected_pending_estimator(fleet)
        scenario = config.scenario
        if rank_table is None and scenario is not None \
                and scenario.ranking_objective is not None:
            # Rank-mode study without a prebuilt table (the single-process
            # reference path): selections compute class summaries inline.
            # Every summary is a pure function, so this is byte-identical
            # to the runner's sharded warm-up — just slower on cold classes.
            from repro.workloads.transpile_classes import ClassRankTable
            rank_table = ClassRankTable(
                objective=scenario.ranking_objective,
                level=scenario.ranking_level)
        self.rank_table = rank_table

    def _build_circuits(self, rng: RandomSource, family: str, width: int,
                        batch_size: int, base_metrics) -> CircuitBatch:
        """Materialise the job's circuits as a compact columnar batch.

        Only the first min(16, batch) circuits carry jittered metrics; the
        rest of the batch shares ``base_metrics`` exactly, so the batch
        stores just those variants columnar instead of one spec object per
        circuit.  The jitter child streams are derived only for the jittered
        variants (deriving is a pure hash and draws nothing from ``rng``, so
        this changes no random stream).  The row-path reference synthesiser
        overrides only this hook.
        """
        variants = [
            base_metrics.jittered(rng.child("circuit", circuit_index),
                                  relative=0.08)
            for circuit_index in range(min(batch_size, 16))
        ]
        return CircuitBatch.from_metrics(
            name_prefix=f"{family}_{width}_",
            family=family,
            batch_size=batch_size,
            base=base_metrics,
            variants=variants,
        )

    def _eligible_backends(self, month: int, width: int,
                           privileged: bool) -> List[Backend]:
        eligible = []
        for backend in self.fleet.values():
            if not backend.is_online_in_month(month):
                continue
            if backend.num_qubits < width:
                continue
            if not backend.is_public and not privileged:
                continue
            eligible.append(backend)
        return eligible

    def _draw_prefix(self, planned: PlannedSubmission):
        """Replay the fixed draw prefix of one job's random stream.

        Everything up to (but excluding) machine selection: the user, the
        privileged draw, the circuit shape, and the eligibility/shrink
        loop.  This is the part of :meth:`synthesise` whose outcome decides
        which transpile equivalence class the job probes, factored out so
        :meth:`class_requirement` — the rank-mode transpile planner — and
        the synthesis path replay *the same code* and can never drift
        apart.  Returns ``None`` when nothing fits, else
        ``(rng, user, privileged, family, width, eligible)`` with ``rng``
        positioned exactly where machine selection would continue.
        """
        config = self.config
        rng = self._root.spawn(planned.job_index)
        distributions = config.distributions

        user = pick_user(config.users, rng)
        if config.scenario is not None and config.scenario.forced_policy:
            # Policy swap: the user population (and its random draws) is
            # unchanged so scenarios stay comparable job for job; only the
            # selection behaviour is overridden.
            user = replace(user, policy=MachineSelectionPolicy(
                config.scenario.forced_policy))
        privileged = rng.random() < user.privileged_probability

        width = distributions.width.sample(rng)
        family = distributions.family.sample(rng)
        eligible = self._eligible_backends(planned.month, width, privileged)
        if not eligible:
            # Shrink the circuit until something fits (tiny early-fleet months).
            while width > 1 and not eligible:
                width = max(1, width // 2)
                eligible = self._eligible_backends(planned.month, width,
                                                   privileged)
            if not eligible:
                return None
        return rng, user, privileged, family, width, eligible

    def class_requirement(
            self, planned: PlannedSubmission
    ) -> Optional[Tuple[str, int, Tuple[str, ...]]]:
        """The transpile class one planned job will probe, without
        synthesising it: ``(family, width, eligible machine names)``.

        Used by the runner's rank-mode warm-up to enumerate exactly the
        (class, machine) transpiles the study needs.  Cheap: only the draw
        prefix is replayed, and each job spawns a fresh stream, so probing
        job ``i`` here never perturbs job ``i``'s synthesis.
        """
        prefix = self._draw_prefix(planned)
        if prefix is None:
            return None
        _, _, _, family, width, eligible = prefix
        return family, width, tuple(b.name for b in eligible)

    def synthesise(self, planned: PlannedSubmission) -> Optional[Job]:
        """Build the job for one planned submission (None if nothing fits)."""
        config = self.config
        month = planned.month
        submit_time = planned.submit_time
        distributions = config.distributions

        prefix = self._draw_prefix(planned)
        if prefix is None:
            return None
        rng, user, privileged, family, width, eligible = prefix
        provider = "academic-hub" if privileged else "open"

        pending_estimate = {
            b.name: self._pending(b, submit_time) for b in eligible
        }
        if self.rank_table is not None:
            # Rank mode: every user selects through the batch-ranked
            # equivalence-class table (the full MachineSelector algebra)
            # instead of the trace-level policy heuristics.  No rng draws —
            # the selection is a pure function of the class summaries and
            # the expected pending load.
            backend = self.rank_table.select(family, width, eligible,
                                             pending_estimate)
        else:
            backend = user.select_machine(eligible, rng,
                                          timestamp=submit_time,
                                          pending_estimate=pending_estimate)
        width = min(width, backend.num_qubits)
        if width < 1:
            width = 1

        batch_size = distributions.batch_size.sample(rng)
        batch_size = min(batch_size, backend.max_batch_size)
        shots = min(distributions.shots.sample(rng), backend.max_shots)

        base_metrics = compiled_metrics(family, max(width, 1), backend, rng=rng)
        circuits = self._build_circuits(rng, family, width, batch_size,
                                        base_metrics)

        compile_seconds = config.compile_model.job_seconds(
            base_metrics, batch_size, backend.num_qubits, rng=rng
        )
        job = Job(
            provider=provider,
            backend_name=backend.name,
            circuits=circuits,
            shots=shots,
            submit_time=submit_time,
            compile_seconds=compile_seconds,
            job_id=job_id_for_index(planned.job_index),
            metadata={
                "family": family,
                "month_index": month,
                "user_policy": (
                    f"rank-{self.rank_table.objective.value}"
                    if self.rank_table is not None else user.policy.value),
                "job_index": planned.job_index,
            },
        )
        return job


def plan_transpile_classes(
        config: TraceGeneratorConfig,
        fleet: Dict[str, Backend],
) -> Tuple[List[Tuple[str, int, str]], Dict[str, int]]:
    """Enumerate the (family, width, machine) transpiles a rank study needs.

    Replays the draw prefix of every planned submission (cheap — no circuit
    building, no selection) and unions the (class, eligible machine) pairs
    the selections will probe.  The pair list is sorted, so shard planning
    over it is deterministic for any worker count.

    Returns ``(pairs, stats)`` where ``stats`` counts the amortisation:
    ``probes`` is how many per-job machine rankings the study will perform,
    ``circuits`` would each have paid a transpile in a naive per-circuit
    implementation, and ``pairs`` is what the study actually transpiles.
    """
    synthesizer = JobSynthesizer(config, fleet,
                                 pending_estimator=lambda backend, t: 0.0)
    pairs = set()
    probes = 0
    jobs = 0
    for planned in plan_submissions(config):
        requirement = synthesizer.class_requirement(planned)
        if requirement is None:
            continue
        family, width, machines = requirement
        jobs += 1
        probes += len(machines)
        for machine in machines:
            pairs.add((family, width, machine))
    ordered = sorted(pairs)
    stats = {
        "jobs": jobs,
        "probes": probes,
        "classes": len({(family, width) for family, width, _ in ordered}),
        "pairs": len(ordered),
    }
    return ordered, stats


def record_for(job: Job, fleet: Dict[str, Backend]) -> JobRecord:
    """Turn a finished job into the trace row the analysis layer consumes."""
    backend = fleet[job.backend_name]
    first = job.circuits[0]
    crossed = False
    if job.start_time is not None:
        crossed = backend.calibration_model.crosses_calibration(
            job.submit_time, job.start_time
        )
    batch_size = job.batch_size
    if isinstance(job.circuits, CircuitBatch):
        # O(variants) aggregate instead of a 900-iteration spec walk; the
        # integer totals are exact, so the means match the loop bit for bit.
        total_depth, total_gates, total_cx, total_cx_depth = \
            job.circuits.totals()
    else:
        total_depth = sum(c.depth for c in job.circuits)
        total_gates = sum(c.num_gates for c in job.circuits)
        total_cx = sum(c.cx_count for c in job.circuits)
        total_cx_depth = sum(c.cx_depth for c in job.circuits)
    mean_depth = int(round(total_depth / batch_size))
    mean_gates = int(round(total_gates / batch_size))
    mean_cx = int(round(total_cx / batch_size))
    mean_cx_depth = int(round(total_cx_depth / batch_size))
    return JobRecord(
        job_id=job.job_id,
        provider=job.provider,
        access=backend.access.value,
        machine=job.backend_name,
        machine_qubits=backend.num_qubits,
        month_index=int(job.metadata.get("month_index", 0)),
        batch_size=job.batch_size,
        shots=job.shots,
        circuit_family=first.family,
        circuit_width=first.width,
        circuit_depth=mean_depth,
        circuit_gates=mean_gates,
        circuit_cx=mean_cx,
        circuit_cx_depth=mean_cx_depth,
        memory_slots=first.width,
        submit_time=job.submit_time,
        start_time=job.start_time,
        end_time=job.end_time,
        status=job.status.value,
        queue_seconds=job.queue_seconds,
        run_seconds=job.run_seconds,
        compile_seconds=job.compile_seconds,
        pending_ahead=job.pending_ahead,
        crossed_calibration=crossed,
        user_policy=str(job.metadata.get("user_policy", "unknown")),
    )


class TraceGenerator:
    """Generates the study trace by submitting jobs to the cloud simulator.

    This is the single-process reference path: synthesis and simulation are
    interleaved against one live :class:`QuantumCloudService`, so
    queue-sensitive users see the live studied queue on top of the external
    load.  The parallel runner in :mod:`repro.runner` shards the same
    synthesis and simulation stages across processes instead.

    Because this path probes the service's pending-jobs estimate
    *mid-stream*, it always drives the scalar event loop — the batched
    engine (:mod:`repro.cloud.fastsim`) needs the full submission list up
    front and is only reachable through the runner's ``engine`` switch.
    """

    def __init__(self, config: Optional[TraceGeneratorConfig] = None,
                 fleet: Optional[Dict[str, Backend]] = None,
                 service: Optional[QuantumCloudService] = None):
        self.config = config or TraceGeneratorConfig()
        self.fleet = fleet or self.config.build_fleet()
        self.service = service or QuantumCloudService(
            self.fleet, seed=self.config.seed,
            failure_model=self.config.build_failure_model())
        self.synthesizer = JobSynthesizer(
            self.config, self.fleet, pending_estimator=self._live_pending_estimate
        )

    def _live_pending_estimate(self, backend: Backend, timestamp: float) -> float:
        return self.service.pending_jobs_estimate(backend.name, timestamp)

    # -- trace generation --------------------------------------------------------------

    def generate(self) -> TraceDataset:
        """Submit the whole workload and return the completed trace."""
        config = self.config
        tracer = get_tracer()
        submitted_jobs: List[Job] = []
        # Coarse stage spans only — synthesise() runs per job and must
        # stay span-free on this hot loop.
        with tracer.span("generator.synthesis", jobs=config.total_jobs):
            for planned in plan_submissions(config):
                job = self.synthesizer.synthesise(planned)
                if job is None:
                    continue
                self.service.submit(job)
                submitted_jobs.append(job)
        self.service.drain()

        with tracer.span("generator.columnarise",
                         jobs=len(submitted_jobs)):
            records = [record_for(job, self.fleet)
                       for job in submitted_jobs]
            dataset = TraceDataset.from_records(records, metadata={
                "seed": config.seed,
                "total_jobs": len(records),
                "months": config.months,
                "trace_schema": TRACE_SCHEMA_VERSION,
            })
        return dataset


@lru_cache(maxsize=4)
def _cached_trace(total_jobs: int, months: int, seed: int) -> TraceDataset:
    generator = TraceGenerator(TraceGeneratorConfig(
        total_jobs=total_jobs, months=months, seed=seed
    ))
    return generator.generate()


def generate_study_trace(total_jobs: int = 6000, months: int = STUDY_MONTHS,
                         seed: int = 7, use_cache: bool = True) -> TraceDataset:
    """Generate (or fetch a cached copy of) the full study trace.

    The cache avoids regenerating the same trace for every benchmark figure
    within one process; callers that mutate the dataset should pass
    ``use_cache=False``.
    """
    if use_cache:
        return _cached_trace(total_jobs, months, seed)
    generator = TraceGenerator(TraceGeneratorConfig(
        total_jobs=total_jobs, months=months, seed=seed
    ))
    return generator.generate()
