"""Trace records and the columnar trace dataset.

A :class:`JobRecord` is one row of the study dataset: everything the
analysis layer needs about one job (identity, machine, shape, timestamps,
status, structural circuit metrics, calibration-crossover flag).

:class:`TraceDataset` stores those rows **columnar**: every field lives in
one typed NumPy array (float64 with NaN for optional values, int64 for
counts, small-int codes plus a vocabulary for categorical strings).  The
analysis layer consumes whole columns through :meth:`TraceDataset.values`,
boolean-mask selection (:meth:`where` / :meth:`mask_equal`) and the
group-by primitives, so a 6000-job study is processed as a handful of
vectorised array operations rather than hundreds of thousands of Python
attribute accesses.  Row-oriented callers keep working: indexing and
iteration materialise :class:`JobRecord` views lazily from the columns.

Persistence: JSON and CSV round-trips (unchanged, byte-compatible formats)
plus a versioned compressed ``.npz`` column dump that loads an order of
magnitude faster and is written deterministically (same trace in, same
bytes out) so on-disk caches stay byte-stable.

Out-of-core: when a resident-bytes budget is active (see
:func:`repro.workloads.blocks.set_memory_budget`), a dataset is chunked
into fixed-size :class:`~repro.workloads.blocks.ColumnBlock` rows that
spill to versioned ``.npz`` block files past the budget and stream back on
access.  :meth:`TraceDataset.iter_blocks` / :meth:`TraceDataset.map_blocks`
are the sanctioned full-scan path; column access, selection and group-by
keep working unchanged on chunked datasets (they stream block-wise under
the hood), and every on-disk format — including the byte-stable cache
``.npz`` — is identical whether or not the dataset was chunked in memory.
"""

from __future__ import annotations

import csv
import io
import json
import warnings
import zipfile
from dataclasses import dataclass, fields
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.exceptions import TraceSchemaError, WorkloadError
from repro.core.types import JobStatus
from repro.workloads.blocks import (
    BLOCK_SCHEMA_VERSION,
    BlockStore,
    ColumnBlock,
    DEFAULT_BLOCK_ROWS,
    ResidencyGovernor,
    get_memory_budget,
    write_block_file,
    write_npz_member,
)

#: Version of the *generated-trace semantics*: bump when the generator or
#: simulator changes the content of equivalent-config traces so stale cache
#: entries (and cross-version comparisons) are detected explicitly.
#: 2: columnar data plane — batched circuit synthesis and the bucketed
#: external-load estimator reshape machine selection slightly.
#: 3: scenario engine — the simulator's backlog sampling draws from a
#: dedicated block-buffered per-machine stream instead of the machine's
#: general stream, which re-times every queue/backlog draw.
TRACE_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class JobRecord:
    """One job of the study trace (the analysis layer's unit of data).

    Inside a :class:`TraceDataset` these objects are *views*: they are
    materialised on demand from the dataset's columns and are not what the
    dataset stores.
    """

    job_id: str
    provider: str
    access: str                 # "public" | "privileged" (of the machine)
    machine: str
    machine_qubits: int
    month_index: int            # 0 = first month of the study window
    batch_size: int
    shots: int
    circuit_family: str
    circuit_width: int
    circuit_depth: int
    circuit_gates: int
    circuit_cx: int
    circuit_cx_depth: int
    memory_slots: int
    submit_time: float          # seconds from the study epoch
    start_time: Optional[float]
    end_time: Optional[float]
    status: str                 # JobStatus value
    queue_seconds: Optional[float]
    run_seconds: Optional[float]
    compile_seconds: float
    pending_ahead: int
    crossed_calibration: bool
    user_policy: str = "unknown"

    # -- derived quantities ----------------------------------------------------------

    @property
    def total_trials(self) -> int:
        """Machine trials contributed by this job (batch x shots)."""
        return self.batch_size * self.shots

    @property
    def utilization(self) -> float:
        """Fraction of the machine's qubits used by the job's circuits (Fig. 8)."""
        if self.machine_qubits <= 0:
            return 0.0
        return min(1.0, self.circuit_width / self.machine_qubits)

    @property
    def queue_minutes(self) -> Optional[float]:
        return None if self.queue_seconds is None else self.queue_seconds / 60.0

    @property
    def run_minutes(self) -> Optional[float]:
        return None if self.run_seconds is None else self.run_seconds / 60.0

    @property
    def queue_to_run_ratio(self) -> Optional[float]:
        if not self.run_seconds or self.queue_seconds is None:
            return None
        if self.run_seconds <= 0:
            return None
        return self.queue_seconds / self.run_seconds

    @property
    def per_circuit_queue_seconds(self) -> Optional[float]:
        """Effective queue time per circuit in the batch (Fig. 11's metric)."""
        if self.queue_seconds is None or self.batch_size == 0:
            return None
        return self.queue_seconds / self.batch_size

    @property
    def per_circuit_run_seconds(self) -> Optional[float]:
        if self.run_seconds is None or self.batch_size == 0:
            return None
        return self.run_seconds / self.batch_size

    @property
    def is_done(self) -> bool:
        return self.status == JobStatus.DONE.value

    def as_dict(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in _FIELD_NAMES}


_FIELD_NAMES = [f.name for f in fields(JobRecord)]

# -- column schema -------------------------------------------------------------------

#: integer-valued fields, stored as int64 columns
_INT_COLUMNS = (
    "machine_qubits", "month_index", "batch_size", "shots", "circuit_width",
    "circuit_depth", "circuit_gates", "circuit_cx", "circuit_cx_depth",
    "memory_slots", "pending_ahead",
)
#: always-present float fields, stored as float64 columns
_FLOAT_COLUMNS = ("submit_time", "compile_seconds")
#: Optional[float] fields, stored as float64 columns with NaN for None
_OPTIONAL_FLOAT_COLUMNS = ("start_time", "end_time", "queue_seconds",
                           "run_seconds")
_BOOL_COLUMNS = ("crossed_calibration",)
#: low-cardinality string fields, stored as int32 codes + sorted vocabulary
_CATEGORICAL_COLUMNS = ("provider", "access", "machine", "circuit_family",
                        "status", "user_policy")
#: high-cardinality string fields, stored as fixed-width unicode arrays
_STRING_COLUMNS = ("job_id",)
#: every stored (non-derived) column, in schema order
_STORED_COLUMNS = (_INT_COLUMNS + _FLOAT_COLUMNS + _OPTIONAL_FLOAT_COLUMNS
                   + _BOOL_COLUMNS + _CATEGORICAL_COLUMNS + _STRING_COLUMNS)

#: JobRecord properties exposed as computed (derived) columns
_DERIVED_COLUMNS = (
    "queue_minutes", "run_minutes", "utilization", "queue_to_run_ratio",
    "per_circuit_queue_seconds", "per_circuit_run_seconds", "total_trials",
    "is_done",
)
#: derived columns that can be missing (NaN in arrays, None in row views)
_OPTIONAL_DERIVED_COLUMNS = frozenset((
    "queue_minutes", "run_minutes", "queue_to_run_ratio",
    "per_circuit_queue_seconds", "per_circuit_run_seconds",
))

#: Version of the ``.npz`` column-dump layout; bump on incompatible changes.
NPZ_SCHEMA_VERSION = 1


def _string_array(values: Sequence[str]) -> np.ndarray:
    if not values:
        return np.asarray([], dtype="<U1")
    return np.asarray(list(values), dtype=str)


def _encode_categorical(values: Sequence[str]) -> Tuple[np.ndarray, Tuple[str, ...]]:
    """Encode strings as (int32 codes, sorted vocabulary)."""
    vocab = tuple(sorted(set(values)))
    mapping = {value: code for code, value in enumerate(vocab)}
    codes = np.fromiter((mapping[v] for v in values), dtype=np.int32,
                        count=len(values))
    return codes, vocab


def _read_member_array(archive: zipfile.ZipFile, member: str) -> np.ndarray:
    with archive.open(member + ".npy") as handle:
        return np.lib.format.read_array(io.BytesIO(handle.read()),
                                        allow_pickle=False)


def _parse_npz_header(text: str, path: Path) -> Dict[str, object]:
    header = json.loads(text)
    found = header.get("schema")
    if found != NPZ_SCHEMA_VERSION:
        raise TraceSchemaError(
            f"trace npz {path} was written with column-layout schema "
            f"{found!r} but this version reads schema {NPZ_SCHEMA_VERSION}; "
            f"regenerate the trace (or delete the file) to proceed")
    return header


class _LazyNpzColumns(dict):
    """Column mapping that decompresses one ``.npz`` member per first access.

    Behaves like the eager ``{name: ndarray}`` dict the dataset stores, but a
    column is only read (and DEFLATE-decompressed) from the archive the first
    time something touches it, so analyses over a few columns never pay for
    the rest of the trace.  Whole-dataset operations (subsetting, group-by,
    re-saving) iterate ``items()`` and therefore force-load everything.
    """

    def __init__(self, path: Path, names: Sequence[str]):
        super().__init__()
        self._path = Path(path)
        self._names = tuple(names)

    def __missing__(self, name: str) -> np.ndarray:
        if name not in self._names:
            raise KeyError(name)
        with zipfile.ZipFile(self._path) as archive:
            array = _read_member_array(archive, f"col__{name}")
        dict.__setitem__(self, name, array)
        return array

    def loaded(self) -> Tuple[str, ...]:
        """Names of the columns decompressed so far."""
        return tuple(dict.keys(self))

    def __contains__(self, name: object) -> bool:
        return name in self._names

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def keys(self) -> Tuple[str, ...]:  # type: ignore[override]
        return self._names

    def items(self):  # type: ignore[override]
        return [(name, self[name]) for name in self._names]

    def values(self):  # type: ignore[override]
        return [self[name] for name in self._names]


def columns_from_records(
    rows: Sequence[JobRecord],
) -> Tuple[Dict[str, np.ndarray], Dict[str, Tuple[str, ...]]]:
    """Columnarise records into typed arrays plus categorical vocabularies."""
    columns: Dict[str, np.ndarray] = {}
    vocabs: Dict[str, Tuple[str, ...]] = {}
    for name in _INT_COLUMNS:
        columns[name] = np.asarray([getattr(r, name) for r in rows],
                                   dtype=np.int64)
    for name in _FLOAT_COLUMNS:
        columns[name] = np.asarray([getattr(r, name) for r in rows],
                                   dtype=np.float64)
    for name in _OPTIONAL_FLOAT_COLUMNS:
        columns[name] = np.asarray(
            [np.nan if getattr(r, name) is None else getattr(r, name)
             for r in rows],
            dtype=np.float64,
        )
    for name in _BOOL_COLUMNS:
        columns[name] = np.asarray([getattr(r, name) for r in rows],
                                   dtype=np.bool_)
    for name in _CATEGORICAL_COLUMNS:
        codes, vocab = _encode_categorical([getattr(r, name) for r in rows])
        columns[name] = codes
        vocabs[name] = vocab
    for name in _STRING_COLUMNS:
        columns[name] = _string_array([getattr(r, name) for r in rows])
    return columns, vocabs


class ShardColumns(NamedTuple):
    """One shard's already-columnar rows, as produced by a worker.

    The parallel runner's simulation tasks return these instead of
    ``List[JobRecord]`` — rows are columnarised where they were simulated
    and the merge is pure array work (vocabulary union + code remap +
    concatenate + lexsort), never a row-object round-trip.
    """

    rows: int
    columns: Dict[str, np.ndarray]
    vocabs: Dict[str, Tuple[str, ...]]

    @classmethod
    def from_records(cls, records: Sequence[JobRecord]) -> "ShardColumns":
        columns, vocabs = columns_from_records(records)
        return cls(rows=len(records), columns=columns, vocabs=vocabs)


def merge_shard_columns(
    payloads: Sequence[ShardColumns],
    metadata: Optional[Dict[str, object]] = None,
) -> "TraceDataset":
    """Merge per-shard column payloads into one sorted dataset.

    Value- and byte-identical to flattening every shard's records, sorting
    by ``(submit_time, job_id)`` and columnarising the result: vocabularies
    are unioned (sorted, exactly like a full-list encode), shard codes are
    remapped into the union, and one stable ``np.lexsort`` orders the rows.
    """
    payloads = [p for p in payloads if p is not None]
    if not payloads or sum(p.rows for p in payloads) == 0:
        columns, vocabs = columns_from_records([])
        return TraceDataset._from_columns(columns, vocabs, metadata)
    columns: Dict[str, np.ndarray] = {}
    vocabs: Dict[str, Tuple[str, ...]] = {}
    for name in _CATEGORICAL_COLUMNS:
        merged = tuple(sorted(
            set().union(*(set(p.vocabs[name]) for p in payloads))))
        mapping = {value: code for code, value in enumerate(merged)}
        parts = []
        for payload in payloads:
            remap = np.asarray(
                [mapping[v] for v in payload.vocabs[name]] or [0],
                dtype=np.int32)
            parts.append(remap[payload.columns[name]])
        columns[name] = np.concatenate(parts)
        vocabs[name] = merged
    for name in _STORED_COLUMNS:
        if name in _CATEGORICAL_COLUMNS:
            continue
        columns[name] = np.concatenate(
            [np.asarray(p.columns[name]) for p in payloads])
    order = np.lexsort((columns["job_id"], columns["submit_time"]))
    columns = {name: column[order] for name, column in columns.items()}
    return TraceDataset.from_columns(columns, vocabs, metadata)


class _BlockColumns(dict):
    """Column mapping over a :class:`~repro.workloads.blocks.BlockStore`.

    Presents the same ``{name: ndarray}`` surface the dataset's plain dict
    backend does, but a column is concatenated from the store's blocks on
    every access and never cached — the resident-bytes budget stays in
    charge of what lives in memory.
    """

    def __init__(self, store: BlockStore):
        super().__init__()
        self._store = store

    def __missing__(self, name: str) -> np.ndarray:
        if name not in self._store.names:
            raise KeyError(name)
        return self._store.column(name)

    def __contains__(self, name: object) -> bool:
        return name in self._store.names

    def __iter__(self) -> Iterator[str]:
        return iter(self._store.names)

    def __len__(self) -> int:
        return len(self._store.names)

    def keys(self) -> Tuple[str, ...]:  # type: ignore[override]
        return self._store.names

    def items(self):  # type: ignore[override]
        return [(name, self[name]) for name in self._store.names]

    def values(self):  # type: ignore[override]
        return [self[name] for name in self._store.names]


#: stored columns each derived column is computed from (block streaming
#: materialises only these when a scan asks for a derived name)
_DERIVED_INPUTS: Dict[str, Tuple[str, ...]] = {
    "queue_minutes": ("queue_seconds",),
    "run_minutes": ("run_seconds",),
    "queue_to_run_ratio": ("queue_seconds", "run_seconds"),
    "per_circuit_queue_seconds": ("queue_seconds", "batch_size"),
    "per_circuit_run_seconds": ("run_seconds", "batch_size"),
    "utilization": ("machine_qubits", "circuit_width"),
    "total_trials": ("batch_size", "shots"),
    "is_done": ("status",),
}

#: manifest file name inside a block-manifest cache entry directory
MANIFEST_NAME = "manifest.json"


class TraceDataset:
    """An ordered, columnar collection of :class:`JobRecord` rows.

    Construct through :meth:`from_records`, :meth:`from_columns` or
    :meth:`from_blocks`; calling ``TraceDataset(records)`` directly is a
    deprecated shim kept for older callers.
    """

    def __init__(self, records: Optional[Iterable[JobRecord]] = None,
                 metadata: Optional[Dict[str, object]] = None):
        if records is not None:
            warnings.warn(
                "TraceDataset(records=...) is deprecated; use "
                "TraceDataset.from_records(...) instead",
                DeprecationWarning, stacklevel=2)
        self._init_from_records(list(records or []), metadata)

    # -- construction ------------------------------------------------------------------

    def _init_from_records(self, rows: List[JobRecord],
                           metadata: Optional[Dict[str, object]]) -> None:
        self.metadata: Dict[str, object] = dict(metadata or {})
        columns, vocabs = columns_from_records(rows)
        self._columns = columns
        self._vocabs = vocabs
        self._derived: Dict[str, np.ndarray] = {}
        self._row_count: Optional[int] = None
        self._blocks: Optional[BlockStore] = None
        if rows and get_memory_budget() is not None:
            self._chunk_in_place()

    @classmethod
    def from_records(cls, records: Optional[Iterable[JobRecord]] = None,
                     metadata: Optional[Dict[str, object]] = None,
                     ) -> "TraceDataset":
        """Build a dataset from row records (the sanctioned spelling)."""
        dataset = cls.__new__(cls)
        dataset._init_from_records(list(records or []), metadata)
        return dataset

    @staticmethod
    def _columns_from_records(
        rows: List[JobRecord],
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, Tuple[str, ...]]]:
        return columns_from_records(rows)

    @classmethod
    def _from_columns(cls, columns: Dict[str, np.ndarray],
                      vocabs: Dict[str, Tuple[str, ...]],
                      metadata: Optional[Dict[str, object]] = None,
                      ) -> "TraceDataset":
        dataset = cls.__new__(cls)
        dataset.metadata = dict(metadata or {})
        dataset._columns = columns
        dataset._vocabs = dict(vocabs)
        dataset._derived = {}
        dataset._row_count = None
        dataset._blocks = None
        return dataset

    @classmethod
    def from_columns(cls, columns: Dict[str, np.ndarray],
                     vocabs: Dict[str, Tuple[str, ...]],
                     metadata: Optional[Dict[str, object]] = None,
                     ) -> "TraceDataset":
        """Build a dataset from full columns, chunking under a budget."""
        dataset = cls._from_columns(columns, vocabs, metadata)
        if len(dataset) and get_memory_budget() is not None:
            dataset._chunk_in_place()
        return dataset

    @classmethod
    def from_blocks(cls, blocks: Iterable[Union[ColumnBlock,
                                                Dict[str, np.ndarray]]],
                    vocabs: Dict[str, Tuple[str, ...]],
                    metadata: Optional[Dict[str, object]] = None,
                    governor: Optional[ResidencyGovernor] = None,
                    ) -> "TraceDataset":
        """Build a chunked dataset from column blocks.

        ``blocks`` yields either ready :class:`ColumnBlock` objects (which
        must share ``governor``) or plain ``{name: ndarray}`` dicts.  With
        no blocks an empty (plain) dataset is returned.
        """
        store = BlockStore(governor)
        for block in blocks:
            if isinstance(block, ColumnBlock):
                store.append_block(block)
            else:
                store.append_arrays(block)
        if not store.blocks:
            columns, empty_vocabs = columns_from_records([])
            empty_vocabs.update(vocabs)
            return cls._from_columns(columns, empty_vocabs, metadata)
        return cls._from_block_store(store, vocabs, metadata)

    @classmethod
    def _from_block_store(cls, store: BlockStore,
                          vocabs: Dict[str, Tuple[str, ...]],
                          metadata: Optional[Dict[str, object]] = None,
                          ) -> "TraceDataset":
        dataset = cls.__new__(cls)
        dataset.metadata = dict(metadata or {})
        dataset._columns = _BlockColumns(store)
        dataset._vocabs = dict(vocabs)
        dataset._derived = {}
        dataset._row_count = store.rows
        dataset._blocks = store
        return dataset

    def _chunk_in_place(self, block_rows: Optional[int] = None,
                        governor: Optional[ResidencyGovernor] = None) -> None:
        """Re-back a plain (fully resident) dataset with a block store."""
        size = len(self)
        columns = self._columns
        rows_per_block = int(block_rows) if block_rows else DEFAULT_BLOCK_ROWS
        budget = (governor.budget if governor is not None
                  else get_memory_budget())
        if block_rows is None and budget is not None and size:
            # Size blocks to the budget: several blocks should fit at once,
            # so the governor can actually rotate (spill/reload) them.
            bytes_per_row = max(1, sum(
                column.nbytes for column in columns.values()) // size)
            rows_per_block = min(rows_per_block,
                                 max(1, budget // (4 * bytes_per_row)))
        rows_per_block = max(1, rows_per_block)
        store = BlockStore(governor)
        for start in range(0, max(size, 1), rows_per_block):
            stop = min(start + rows_per_block, size)
            store.append_arrays({
                name: np.ascontiguousarray(column[start:stop])
                for name, column in columns.items()
            }, rows=stop - start)
        self._columns = _BlockColumns(store)
        self._derived = {}
        self._row_count = store.rows
        self._blocks = store

    # -- container protocol ------------------------------------------------------------

    def __len__(self) -> int:
        # Cached so lazily loaded datasets do not decompress a column just
        # to learn the row count (the npz header carries it).
        count = self._row_count
        if count is None:
            count = int(self._columns["month_index"].shape[0])
            self._row_count = count
        return count

    def __iter__(self) -> Iterator[JobRecord]:
        if len(self) == 0:
            return iter(())
        lists = [self.column(name) for name in _FIELD_NAMES]
        return (JobRecord(*row) for row in zip(*lists))

    def __getitem__(self, index: Union[int, slice]):
        size = len(self)
        if isinstance(index, slice):
            return [self._record_at(i) for i in range(*index.indices(size))]
        i = int(index)
        if i < 0:
            i += size
        if not 0 <= i < size:
            raise IndexError("record index out of range")
        return self._record_at(i)

    def _record_at(self, i: int) -> JobRecord:
        columns = self._columns
        vocabs = self._vocabs
        kwargs: Dict[str, object] = {}
        for name in _INT_COLUMNS:
            kwargs[name] = int(columns[name][i])
        for name in _FLOAT_COLUMNS:
            kwargs[name] = float(columns[name][i])
        for name in _OPTIONAL_FLOAT_COLUMNS:
            value = float(columns[name][i])
            kwargs[name] = None if value != value else value
        for name in _BOOL_COLUMNS:
            kwargs[name] = bool(columns[name][i])
        for name in _CATEGORICAL_COLUMNS:
            kwargs[name] = vocabs[name][int(columns[name][i])]
        for name in _STRING_COLUMNS:
            kwargs[name] = str(columns[name][i])
        return JobRecord(**kwargs)

    @property
    def records(self) -> List[JobRecord]:
        """Materialise every row as a :class:`JobRecord` (in trace order)."""
        return list(self)

    def append(self, record: JobRecord) -> None:
        self.extend([record])

    def extend(self, records: Iterable[JobRecord]) -> None:
        """Append rows (rebuilds the affected columns; not a hot path)."""
        rows = list(records)
        if not rows:
            return
        if self._blocks is not None:
            self._materialise_in_place()
        new_columns, new_vocabs = columns_from_records(rows)
        for name in (_INT_COLUMNS + _FLOAT_COLUMNS + _OPTIONAL_FLOAT_COLUMNS
                     + _BOOL_COLUMNS):
            self._columns[name] = np.concatenate(
                [self._columns[name], new_columns[name]])
        for name in _STRING_COLUMNS:
            self._columns[name] = np.concatenate(
                [np.asarray(self._columns[name], dtype=str),
                 np.asarray(new_columns[name], dtype=str)])
        for name in _CATEGORICAL_COLUMNS:
            merged = tuple(sorted(set(self._vocabs[name])
                                  | set(new_vocabs[name])))
            mapping = {value: code for code, value in enumerate(merged)}
            remap_old = np.asarray(
                [mapping[v] for v in self._vocabs[name]] or [0],
                dtype=np.int32)
            remap_new = np.asarray(
                [mapping[v] for v in new_vocabs[name]] or [0], dtype=np.int32)
            self._columns[name] = np.concatenate([
                remap_old[self._columns[name]],
                remap_new[new_columns[name]],
            ])
            self._vocabs[name] = merged
        self._derived.clear()
        self._row_count = None

    def _materialise_in_place(self) -> None:
        """Replace the block backend with plain fully resident columns."""
        store = self._blocks
        if store is None:
            return
        self._columns = {name: store.column(name) for name in store.names}
        self._derived = {}
        self._blocks = None

    # -- the chunked data plane --------------------------------------------------------

    @property
    def is_chunked(self) -> bool:
        """True when the dataset is backed by governed column blocks."""
        return self._blocks is not None

    @property
    def is_out_of_core(self) -> bool:
        """True when the column bytes exceed the dataset's budget."""
        store = self._blocks
        return (store is not None
                and store.governor.budget is not None
                and store.total_nbytes > store.governor.budget)

    def column_nbytes(self) -> int:
        """Total stored-column bytes (resident or spilled)."""
        store = self._blocks
        if store is not None:
            return store.total_nbytes
        return sum(column.nbytes for column in self._columns.values())

    def data_plane_stats(self) -> Dict[str, object]:
        """Residency and spill counters (all zero for a plain dataset)."""
        store = self._blocks
        if store is None:
            return {
                "chunked": False,
                "blocks": 1 if len(self) else 0,
                "rows": len(self),
                "total_bytes": self.column_nbytes(),
                "spills": 0,
                "loads": 0,
                "evictions": 0,
            }
        return {"chunked": True, **store.stats()}

    @staticmethod
    def _stored_dependencies(names: Optional[Sequence[str]]
                             ) -> Optional[Tuple[str, ...]]:
        """Expand requested column names to the stored columns they need."""
        if names is None:
            return None
        needed: List[str] = []
        for name in names:
            stored = _DERIVED_INPUTS.get(name, (name,))
            for dependency in stored:
                if dependency not in _STORED_COLUMNS:
                    raise WorkloadError(f"unknown column {name!r}")
                if dependency not in needed:
                    needed.append(dependency)
        return tuple(needed)

    def iter_blocks(self, columns: Optional[Sequence[str]] = None,
                    block_rows: Optional[int] = None,
                    ) -> Iterator["TraceDataset"]:
        """Yield the dataset as resident per-block datasets, in row order.

        This is the sanctioned full-scan path: each yielded block is a
        small fully resident :class:`TraceDataset` (sharing the parent's
        vocabularies, so codes and categories line up) and only one block's
        arrays need to be in memory at a time.  ``columns`` restricts which
        stored columns are materialised (derived names pull in their
        inputs); a spilled block then decompresses only those members.
        ``block_rows`` controls the chunking of *plain* datasets (chunked
        datasets always yield their physical blocks).
        """
        names = self._stored_dependencies(columns)
        store = self._blocks
        if store is not None:
            wanted = tuple(names if names is not None else store.names)
            for start, stop, block in store.iter_ranges():
                if names is None:
                    arrays = dict(block.arrays())
                else:
                    arrays = {name: block.column(name) for name in wanted}
                yield self._block_view(arrays, block.rows)
            return
        size = len(self)
        rows_per_block = max(1, int(block_rows or DEFAULT_BLOCK_ROWS))
        wanted = tuple(names if names is not None
                       else tuple(self._columns.keys()))
        for start in range(0, size, rows_per_block):
            stop = min(start + rows_per_block, size)
            arrays = {name: self._columns[name][start:stop]
                      for name in wanted}
            yield self._block_view(arrays, stop - start)

    def _block_view(self, arrays: Dict[str, np.ndarray],
                    rows: int) -> "TraceDataset":
        view = TraceDataset._from_columns(arrays, self._vocabs)
        view._row_count = rows
        return view

    def map_blocks(self, fn: Callable[["TraceDataset"], object],
                   columns: Optional[Sequence[str]] = None,
                   block_rows: Optional[int] = None) -> List[object]:
        """Apply ``fn`` to every block (see :meth:`iter_blocks`)."""
        return [fn(block)
                for block in self.iter_blocks(columns, block_rows)]

    def grouped_values(self, by: str, name: str,
                       drop_missing: bool = True
                       ) -> Dict[object, np.ndarray]:
        """Per-group float values of one column, streamed block-wise.

        Equivalent to ``{key: subset.numeric_column(name) for key, subset
        in trace.group_by(by).items()}`` (same keys, same per-group order)
        but touches only the two columns involved, one block at a time —
        the analysis layer's grouped reductions never materialise a full
        per-group trace.  Keys are sorted; empty groups cannot occur.
        """
        parts: Dict[object, List[np.ndarray]] = {}
        categorical = by in _CATEGORICAL_COLUMNS
        for block in self.iter_blocks(columns=[by, name]):
            keys = block._columns[by] if categorical else block.values(by)
            if keys.shape[0] == 0:
                continue
            if not categorical and keys.dtype.kind == "f" \
                    and np.isnan(keys).any():
                raise WorkloadError(
                    f"cannot group by {by!r}: column has missing values")
            values = np.asarray(block.values(name), dtype=float)
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
            starts = np.concatenate([[0], boundaries])
            ends = np.concatenate([boundaries, [keys.shape[0]]])
            for start, end in zip(starts.tolist(), ends.tolist()):
                key = sorted_keys[start].item()
                parts.setdefault(key, []).append(values[order[start:end]])
        vocab = self._vocabs[by] if categorical else None
        grouped: Dict[object, np.ndarray] = {}
        for key in sorted(parts):
            values = np.concatenate(parts[key])
            if drop_missing:
                values = values[~np.isnan(values)]
            grouped[vocab[key] if vocab is not None else key] = values
        return grouped

    # -- vectorised column access ------------------------------------------------------

    def values(self, name: str) -> np.ndarray:
        """The column ``name`` as a NumPy array (the vectorised primitive).

        Optional float columns use NaN for missing values; categorical
        columns decode to a string array; derived :class:`JobRecord`
        properties (``queue_minutes``, ``utilization``, ...) are computed as
        whole columns and cached.  The returned array is a view of dataset
        state — do not mutate it.
        """
        columns = self._columns
        # Chunked datasets never cache full-length arrays on the dataset —
        # the resident-bytes budget governs what stays in memory, so every
        # values() call re-streams from the blocks (transient result).
        cache = self._derived if self._blocks is None else None
        if name in columns:
            if name in _CATEGORICAL_COLUMNS:
                cached = cache.get(name) if cache is not None else None
                if cached is None:
                    vocab = _string_array(self._vocabs[name])
                    if len(self._vocabs[name]) == 0:
                        cached = np.asarray([], dtype="<U1")
                    else:
                        cached = vocab[columns[name]]
                    if cache is not None:
                        cache[name] = cached
                return cached
            return columns[name]
        if name in _DERIVED_COLUMNS:
            cached = cache.get(name) if cache is not None else None
            if cached is None:
                cached = self._compute_derived(name)
                if cache is not None:
                    cache[name] = cached
            return cached
        raise WorkloadError(f"unknown column {name!r}")

    def _compute_derived(self, name: str) -> np.ndarray:
        # Each branch touches only the stored columns it needs (matching
        # _DERIVED_INPUTS), so block-wise scans of one derived column only
        # materialise that column's inputs.
        columns = self._columns
        with np.errstate(divide="ignore", invalid="ignore"):
            if name == "queue_minutes":
                return columns["queue_seconds"] / 60.0
            if name == "run_minutes":
                return columns["run_seconds"] / 60.0
            if name == "queue_to_run_ratio":
                queue = columns["queue_seconds"]
                run = columns["run_seconds"]
                valid = ~np.isnan(queue) & (run > 0)
                return np.where(valid, queue / run, np.nan)
            if name == "per_circuit_queue_seconds":
                batch = columns["batch_size"]
                return np.where(batch != 0,
                                columns["queue_seconds"] / batch, np.nan)
            if name == "per_circuit_run_seconds":
                batch = columns["batch_size"]
                return np.where(batch != 0,
                                columns["run_seconds"] / batch, np.nan)
            if name == "utilization":
                qubits = columns["machine_qubits"]
                width = columns["circuit_width"]
                return np.where(
                    qubits > 0,
                    np.minimum(1.0, width / np.maximum(qubits, 1)),
                    0.0,
                )
            if name == "total_trials":
                return columns["batch_size"] * columns["shots"]
            if name == "is_done":
                return self.mask_equal("status", JobStatus.DONE.value)
        raise WorkloadError(f"unknown column {name!r}")  # pragma: no cover

    def column(self, name: str) -> List[object]:
        """The column as a Python list (``None`` for missing values)."""
        array = self.values(name)
        if name in _OPTIONAL_FLOAT_COLUMNS or name in _OPTIONAL_DERIVED_COLUMNS:
            return [None if v != v else v for v in array.tolist()]
        return array.tolist()

    def numeric_column(self, name: str, drop_none: bool = True) -> np.ndarray:
        """The column as a fresh float array, with missing values dropped.

        Unlike :meth:`values`, the result never aliases dataset state and is
        safe to mutate.
        """
        array = np.asarray(self.values(name), dtype=float)
        if drop_none:
            return array[~np.isnan(array)]
        return array.copy()

    def categories(self, name: str) -> Tuple[str, ...]:
        """The sorted vocabulary of a categorical column."""
        try:
            return self._vocabs[name]
        except KeyError:
            raise WorkloadError(f"{name!r} is not a categorical column") \
                from None

    def mask_equal(self, name: str, value: object) -> np.ndarray:
        """Vectorised equality mask over a column (categoricals via codes)."""
        if name in _CATEGORICAL_COLUMNS:
            vocab = self._vocabs[name]
            try:
                code = vocab.index(value)  # type: ignore[arg-type]
            except ValueError:
                return np.zeros(len(self), dtype=bool)
            return self._columns[name] == code
        return self.values(name) == value

    def value_counts(self, name: str) -> Dict[object, int]:
        """Occurrence counts of each present value of a column."""
        if name in _CATEGORICAL_COLUMNS:
            vocab = self._vocabs[name]
            counts = np.bincount(self._columns[name],
                                 minlength=max(len(vocab), 1))
            return {vocab[code]: int(count)
                    for code, count in enumerate(counts[:len(vocab)])
                    if count > 0}
        array = self.values(name)
        uniques, counts = np.unique(array, return_counts=True)
        return {value: int(count)
                for value, count in zip(uniques.tolist(), counts.tolist())}

    # -- selection ---------------------------------------------------------------------

    def _subset(self, selector: np.ndarray,
                metadata: Optional[Dict[str, object]] = None) -> "TraceDataset":
        if self._blocks is not None:
            return self._subset_blocks(selector, metadata)
        columns = {name: column[selector]
                   for name, column in self._columns.items()}
        return TraceDataset._from_columns(columns, self._vocabs, metadata)

    def _subset_blocks(self, selector: np.ndarray,
                       metadata: Optional[Dict[str, object]] = None
                       ) -> "TraceDataset":
        """Block-streamed row selection; the child shares the governor.

        Ascending selections (boolean masks, sorted index arrays — every
        internal caller) stream one parent block at a time into one child
        block each, so peak memory stays O(block).  An unsorted ``take``
        gathers column-at-a-time instead, preserving the requested order.
        """
        store = self._blocks
        selector = np.asarray(selector)
        if selector.dtype == bool:
            indices = np.flatnonzero(selector)
        else:
            indices = selector.astype(np.int64, copy=False)
            size = len(self)
            indices = np.where(indices < 0, indices + size, indices)
        ascending = bool(np.all(np.diff(indices) >= 0)) \
            if indices.size > 1 else True
        child = BlockStore(store.governor)
        if ascending:
            for start, stop, block in store.iter_ranges():
                local = indices[(indices >= start) & (indices < stop)] - start
                if local.size == 0 and child.blocks:
                    continue
                arrays = block.arrays()
                child.append_arrays(
                    {name: np.ascontiguousarray(array[local])
                     for name, array in arrays.items()},
                    rows=int(local.size))
                store.governor.enforce()
        else:
            gathered: Dict[str, np.ndarray] = {}
            for name in store.names:
                gathered[name] = store.column(name)[indices]
            child.append_arrays(gathered, rows=int(indices.size))
        return TraceDataset._from_block_store(child, self._vocabs, metadata)

    def where(self, mask: np.ndarray) -> "TraceDataset":
        """Vectorised row selection by boolean mask (keeps metadata)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise WorkloadError(
                f"mask length {mask.shape} does not match {len(self)} rows")
        return self._subset(mask, metadata=dict(self.metadata))

    def take(self, indices: Sequence[int]) -> "TraceDataset":
        """Row selection by integer indices, in the given order."""
        return self._subset(np.asarray(list(indices), dtype=np.int64),
                            metadata=dict(self.metadata))

    def filter(self, predicate: Callable[[JobRecord], bool]) -> "TraceDataset":
        """Row-predicate selection (compatibility path; prefer :meth:`where`)."""
        size = len(self)
        if size == 0:
            return self._subset(np.zeros(0, dtype=bool),
                                metadata=dict(self.metadata))
        mask = np.fromiter((bool(predicate(r)) for r in self), dtype=bool,
                           count=size)
        return self._subset(mask, metadata=dict(self.metadata))

    def completed(self) -> "TraceDataset":
        """Jobs that reached a terminal state and actually ran (have run time)."""
        return self.where(self._columns["run_seconds"] > 0)

    def successful(self) -> "TraceDataset":
        return self.where(self.mask_equal("status", JobStatus.DONE.value))

    def for_machine(self, machine: str) -> "TraceDataset":
        return self.where(self.mask_equal("machine", machine))

    def machines(self) -> List[str]:
        return self._present_categories("machine")

    def providers(self) -> List[str]:
        return self._present_categories("provider")

    def _present_categories(self, name: str) -> List[str]:
        vocab = self._vocabs[name]
        present = np.unique(self._columns[name])
        return [vocab[int(code)] for code in present]

    def group_by(self, name: str) -> Dict[object, "TraceDataset"]:
        """Split into per-value subsets of a categorical or integer column.

        Keys are sorted; each subset preserves row order.  Subsets share the
        parent's categorical vocabularies, so codes remain comparable.

        One stable sort reorders every column once; the per-group datasets
        are then contiguous slices (views), so the cost is independent of
        the number of groups rather than one full-column scan per group.
        """
        size = len(self)
        if size == 0:
            return {}
        if name in _CATEGORICAL_COLUMNS:
            keys = self._columns[name]
            vocab = self._vocabs[name]

            def decode(key: object) -> object:
                return vocab[key]
        else:
            keys = self.values(name)
            if keys.dtype.kind == "f" and np.isnan(keys).any():
                raise WorkloadError(
                    f"cannot group by {name!r}: column has missing values")

            def decode(key: object) -> object:
                return key
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [size]])
        if self._blocks is not None:
            # Chunked path: each group is a block-streamed ascending
            # selection (stable argsort keeps within-group indices sorted),
            # so no more than one parent block's columns are resident at a
            # time and the group datasets share the governor's budget.
            groups_chunked: Dict[object, "TraceDataset"] = {}
            for start, end in zip(starts.tolist(), ends.tolist()):
                key = decode(sorted_keys[start].item())
                groups_chunked[key] = self._subset_blocks(order[start:end])
            return groups_chunked
        sorted_columns = {column_name: column[order]
                          for column_name, column in self._columns.items()}
        groups: Dict[object, "TraceDataset"] = {}
        for start, end in zip(starts.tolist(), ends.tolist()):
            key = decode(sorted_keys[start].item())
            columns = {column_name: column[start:end]
                       for column_name, column in sorted_columns.items()}
            groups[key] = TraceDataset._from_columns(columns, self._vocabs)
        return groups

    def group_by_machine(self) -> Dict[str, "TraceDataset"]:
        return self.group_by("machine")

    def group_by_month(self) -> Dict[int, "TraceDataset"]:
        return self.group_by("month_index")

    # -- aggregate summaries -------------------------------------------------------------

    def total_circuits(self) -> int:
        return int(self._columns["batch_size"].sum())

    def total_trials(self) -> int:
        return int(self.values("total_trials").sum())

    def status_counts(self) -> Dict[str, int]:
        return self.value_counts("status")

    def summary(self) -> Dict[str, object]:
        return {
            "jobs": len(self),
            "circuits": self.total_circuits(),
            "trials": self.total_trials(),
            "machines": len(self.machines()),
            "statuses": self.status_counts(),
        }

    # -- persistence ----------------------------------------------------------------------

    def _row_dicts(self) -> List[Dict[str, object]]:
        lists = [self.column(name) for name in _FIELD_NAMES]
        return [dict(zip(_FIELD_NAMES, row)) for row in zip(*lists)]

    def to_json(self, path: Union[str, Path]) -> None:
        payload = {
            "metadata": self.metadata,
            "records": self._row_dicts(),
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "TraceDataset":
        payload = json.loads(Path(path).read_text())
        records = [JobRecord(**row) for row in payload.get("records", [])]
        return cls.from_records(records, metadata=payload.get("metadata", {}))

    def to_csv(self, path: Union[str, Path]) -> None:
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=_FIELD_NAMES)
            writer.writeheader()
            for row in self._row_dicts():
                writer.writerow(row)

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "TraceDataset":
        records: List[JobRecord] = []
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                records.append(JobRecord(**_coerce_row(row)))
        return cls.from_records(records)

    def to_npz(self, path: Union[str, Path]) -> None:
        """Write the columns as a versioned, deterministic compressed .npz.

        The member order, timestamps and compression are fixed, so the same
        trace always produces the same bytes — a requirement of the on-disk
        trace cache's byte-stability guarantee.  Members are written one at
        a time, with each column materialised on demand and released after
        writing, so dumping a chunked dataset needs at most one full column
        (not the whole trace) resident.
        """
        members = sorted(
            [f"col__{name}" for name in self._columns.keys()]
            + [f"vocab__{name}" for name in self._vocabs]
            + ["__meta__"])
        header = json.dumps({
            "schema": NPZ_SCHEMA_VERSION,
            "rows": len(self),
            "metadata": self.metadata,
        })
        with zipfile.ZipFile(path, "w",
                             compression=zipfile.ZIP_DEFLATED) as archive:
            for member in members:
                if member == "__meta__":
                    array = _string_array([header])
                elif member.startswith("vocab__"):
                    array = _string_array(
                        self._vocabs[member[len("vocab__"):]])
                else:
                    array = self._columns[member[len("col__"):]]
                write_npz_member(archive, member, array)

    @classmethod
    def from_npz(cls, path: Union[str, Path],
                 lazy: bool = False) -> "TraceDataset":
        """Load a trace written by :meth:`to_npz`.

        With ``lazy=True`` only the header and the categorical vocabularies
        are decompressed up front; each column is decompressed on first
        access, so comparisons that touch a handful of columns never pay for
        the whole trace.

        Raises :class:`~repro.core.exceptions.TraceSchemaError` (a
        ``ValueError`` subclass) when the column-layout schema does not
        match, naming the expected and found versions and the path, and
        ``KeyError`` on missing members.
        """
        path = Path(path)
        if lazy:
            return cls._from_npz_lazy(path)
        with np.load(path, allow_pickle=False) as data:
            header = _parse_npz_header(str(data["__meta__"][0]), path)
            columns: Dict[str, np.ndarray] = {}
            vocabs: Dict[str, Tuple[str, ...]] = {}
            for name in (_INT_COLUMNS + _FLOAT_COLUMNS
                         + _OPTIONAL_FLOAT_COLUMNS + _BOOL_COLUMNS
                         + _STRING_COLUMNS):
                columns[name] = data[f"col__{name}"]
            for name in _CATEGORICAL_COLUMNS:
                columns[name] = data[f"col__{name}"]
                vocabs[name] = tuple(data[f"vocab__{name}"].tolist())
            metadata = header.get("metadata", {})
        dataset = cls.from_columns(columns, vocabs, metadata)
        if isinstance(header.get("rows"), int):
            dataset._row_count = int(header["rows"])
        return dataset

    @classmethod
    def _from_npz_lazy(cls, path: Path) -> "TraceDataset":
        names = (_INT_COLUMNS + _FLOAT_COLUMNS + _OPTIONAL_FLOAT_COLUMNS
                 + _BOOL_COLUMNS + _CATEGORICAL_COLUMNS + _STRING_COLUMNS)
        vocabs: Dict[str, Tuple[str, ...]] = {}
        with zipfile.ZipFile(path) as archive:
            header = _parse_npz_header(
                str(_read_member_array(archive, "__meta__")[0]), path)
            for name in _CATEGORICAL_COLUMNS:
                vocabs[name] = tuple(
                    _read_member_array(archive, f"vocab__{name}").tolist())
            members = set(archive.namelist())
        missing = [name for name in names if f"col__{name}.npy" not in members]
        if missing:
            raise KeyError(
                f"trace npz {path} is missing columns {missing}")
        dataset = cls._from_columns(_LazyNpzColumns(path, names), vocabs,
                                    header.get("metadata", {}))
        if isinstance(header.get("rows"), int):
            dataset._row_count = int(header["rows"])
        return dataset

    # -- block manifests ---------------------------------------------------------------

    def to_block_manifest(self, directory: Union[str, Path]) -> Path:
        """Write the trace as a block-manifest directory.

        Layout: ``manifest.json`` (schema versions, rows, vocabularies,
        metadata, per-block file names and row counts) plus one versioned
        ``block-NNNNNN.npz`` file per block.  Blocks are streamed one at a
        time, so an out-of-core trace is persisted without ever being fully
        resident.  The cache stores budget-exceeding traces this way.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        entries: List[Dict[str, object]] = []
        for index, block in enumerate(self.iter_blocks()):
            name = f"block-{index:06d}.npz"
            arrays = {column: block._columns[column]
                      for column in block._columns.keys()}
            write_block_file(directory / name, arrays, len(block))
            entries.append({"file": name, "rows": len(block)})
        manifest = {
            "schema": BLOCK_SCHEMA_VERSION,
            "npz_schema": NPZ_SCHEMA_VERSION,
            "rows": len(self),
            "metadata": self.metadata,
            "vocabs": {name: list(vocab)
                       for name, vocab in self._vocabs.items()},
            "columns": list(_STORED_COLUMNS),
            "blocks": entries,
        }
        (directory / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True))
        return directory

    @classmethod
    def from_block_manifest(cls, directory: Union[str, Path],
                            budget: Optional[int] = None,
                            use_default_budget: bool = True,
                            ) -> "TraceDataset":
        """Load a block-manifest directory written by
        :meth:`to_block_manifest` without materialising any block.

        Every block starts spilled, backed by its manifest file; the
        governor's budget (explicit ``budget``, else the process-wide
        default) decides how many blocks may be resident at once.  Raises
        :class:`~repro.core.exceptions.TraceSchemaError` on a schema
        mismatch.
        """
        directory = Path(directory)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        found = manifest.get("schema")
        if found != BLOCK_SCHEMA_VERSION:
            raise TraceSchemaError(
                f"trace manifest {directory} was written with block schema "
                f"{found!r} but this version reads schema "
                f"{BLOCK_SCHEMA_VERSION}; regenerate the trace (or delete "
                f"the entry) to proceed")
        if budget is None and use_default_budget:
            budget = get_memory_budget()
        governor = ResidencyGovernor(budget)
        names = tuple(manifest.get("columns", _STORED_COLUMNS))
        store = BlockStore(governor)
        for entry in manifest["blocks"]:
            path = directory / str(entry["file"])
            store.append_block(ColumnBlock(
                governor, path=path, rows=int(entry["rows"]), names=names,
                nbytes=0))
        vocabs = {name: tuple(vocab)
                  for name, vocab in manifest.get("vocabs", {}).items()}
        if not store.blocks:
            columns, empty_vocabs = columns_from_records([])
            empty_vocabs.update(vocabs)
            return cls._from_columns(columns, empty_vocabs,
                                     manifest.get("metadata", {}))
        dataset = cls._from_block_store(store, vocabs,
                                        manifest.get("metadata", {}))
        dataset._row_count = int(manifest.get("rows", store.rows))
        return dataset

    # -- Arrow / Parquet export --------------------------------------------------------

    @staticmethod
    def _require_pyarrow():
        try:
            import pyarrow  # noqa: F401
        except ImportError:
            raise WorkloadError(
                "Arrow/Parquet export needs the optional 'pyarrow' package, "
                "which is not installed in this environment; install "
                "pyarrow (pip install pyarrow) or export to csv/json "
                "instead") from None
        return pyarrow

    def to_arrow(self):
        """The trace as a ``pyarrow.Table`` (optional dependency).

        Categorical columns become dictionary arrays (codes + vocabulary,
        mirroring the columnar layout), optional floats map NaN to null,
        and the trace metadata rides along in the schema metadata.  Raises
        :class:`~repro.core.exceptions.WorkloadError` with an actionable
        message when pyarrow is unavailable.
        """
        pa = self._require_pyarrow()
        arrays = []
        names = []
        for name in _STORED_COLUMNS:
            column = self._columns[name]
            if name in _CATEGORICAL_COLUMNS:
                vocab = list(self._vocabs[name])
                array = pa.DictionaryArray.from_arrays(
                    pa.array(np.asarray(column, dtype=np.int32)),
                    pa.array(vocab, type=pa.string()))
            elif name in _OPTIONAL_FLOAT_COLUMNS:
                array = pa.array(np.asarray(column, dtype=np.float64),
                                 from_pandas=True)  # NaN -> null
            elif name in _STRING_COLUMNS:
                array = pa.array([str(v) for v in column.tolist()],
                                 type=pa.string())
            else:
                array = pa.array(column)
            arrays.append(array)
            names.append(name)
        table = pa.table(dict(zip(names, arrays)))
        if self.metadata:
            table = table.replace_schema_metadata(
                {"repro_trace_metadata": json.dumps(self.metadata,
                                                    sort_keys=True)})
        return table

    def to_parquet(self, path: Union[str, Path]) -> None:
        """Write the trace as a Parquet file (optional pyarrow)."""
        self._require_pyarrow()
        import pyarrow.parquet as pq
        pq.write_table(self.to_arrow(), str(path))

    def to_feather(self, path: Union[str, Path]) -> None:
        """Write the trace as an Arrow IPC (Feather v2) file."""
        self._require_pyarrow()
        import pyarrow.feather as feather
        feather.write_feather(self.to_arrow(), str(path))

    @classmethod
    def load(cls, path: Union[str, Path],
             lazy: bool = False) -> "TraceDataset":
        """Load a trace from .npz, .csv or .json (by file suffix).

        ``lazy`` requests per-column on-demand loading and only applies to
        the ``.npz`` format (text formats are parsed whole regardless).
        """
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".npz":
            return cls.from_npz(path, lazy=lazy)
        if suffix == ".csv":
            return cls.from_csv(path)
        return cls.from_json(path)

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as .npz, .csv or .json (by file suffix)."""
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".npz":
            self.to_npz(path)
        elif suffix == ".csv":
            self.to_csv(path)
        else:
            self.to_json(path)


def _coerce_row(row: Dict[str, str]) -> Dict[str, object]:
    """Convert CSV string values back to the JobRecord field types."""
    coerced: Dict[str, object] = {}
    for key, value in row.items():
        if key in _INT_COLUMNS:
            coerced[key] = int(float(value))
        elif key in _FLOAT_COLUMNS:
            coerced[key] = float(value)
        elif key in _OPTIONAL_FLOAT_COLUMNS:
            coerced[key] = None if value in ("", "None") else float(value)
        elif key in _BOOL_COLUMNS:
            coerced[key] = value in ("True", "true", "1")
        else:
            coerced[key] = value
    return coerced
