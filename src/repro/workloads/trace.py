"""Trace records and the columnar trace dataset.

A :class:`JobRecord` is one row of the study dataset: everything the
analysis layer needs about one job (identity, machine, shape, timestamps,
status, structural circuit metrics, calibration-crossover flag).

:class:`TraceDataset` stores those rows **columnar**: every field lives in
one typed NumPy array (float64 with NaN for optional values, int64 for
counts, small-int codes plus a vocabulary for categorical strings).  The
analysis layer consumes whole columns through :meth:`TraceDataset.values`,
boolean-mask selection (:meth:`where` / :meth:`mask_equal`) and the
group-by primitives, so a 6000-job study is processed as a handful of
vectorised array operations rather than hundreds of thousands of Python
attribute accesses.  Row-oriented callers keep working: indexing and
iteration materialise :class:`JobRecord` views lazily from the columns.

Persistence: JSON and CSV round-trips (unchanged, byte-compatible formats)
plus a versioned compressed ``.npz`` column dump that loads an order of
magnitude faster and is written deterministically (same trace in, same
bytes out) so on-disk caches stay byte-stable.
"""

from __future__ import annotations

import csv
import io
import json
import zipfile
from dataclasses import dataclass, fields
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.exceptions import TraceSchemaError, WorkloadError
from repro.core.types import JobStatus

#: Version of the *generated-trace semantics*: bump when the generator or
#: simulator changes the content of equivalent-config traces so stale cache
#: entries (and cross-version comparisons) are detected explicitly.
#: 2: columnar data plane — batched circuit synthesis and the bucketed
#: external-load estimator reshape machine selection slightly.
#: 3: scenario engine — the simulator's backlog sampling draws from a
#: dedicated block-buffered per-machine stream instead of the machine's
#: general stream, which re-times every queue/backlog draw.
TRACE_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class JobRecord:
    """One job of the study trace (the analysis layer's unit of data).

    Inside a :class:`TraceDataset` these objects are *views*: they are
    materialised on demand from the dataset's columns and are not what the
    dataset stores.
    """

    job_id: str
    provider: str
    access: str                 # "public" | "privileged" (of the machine)
    machine: str
    machine_qubits: int
    month_index: int            # 0 = first month of the study window
    batch_size: int
    shots: int
    circuit_family: str
    circuit_width: int
    circuit_depth: int
    circuit_gates: int
    circuit_cx: int
    circuit_cx_depth: int
    memory_slots: int
    submit_time: float          # seconds from the study epoch
    start_time: Optional[float]
    end_time: Optional[float]
    status: str                 # JobStatus value
    queue_seconds: Optional[float]
    run_seconds: Optional[float]
    compile_seconds: float
    pending_ahead: int
    crossed_calibration: bool
    user_policy: str = "unknown"

    # -- derived quantities ----------------------------------------------------------

    @property
    def total_trials(self) -> int:
        """Machine trials contributed by this job (batch x shots)."""
        return self.batch_size * self.shots

    @property
    def utilization(self) -> float:
        """Fraction of the machine's qubits used by the job's circuits (Fig. 8)."""
        if self.machine_qubits <= 0:
            return 0.0
        return min(1.0, self.circuit_width / self.machine_qubits)

    @property
    def queue_minutes(self) -> Optional[float]:
        return None if self.queue_seconds is None else self.queue_seconds / 60.0

    @property
    def run_minutes(self) -> Optional[float]:
        return None if self.run_seconds is None else self.run_seconds / 60.0

    @property
    def queue_to_run_ratio(self) -> Optional[float]:
        if not self.run_seconds or self.queue_seconds is None:
            return None
        if self.run_seconds <= 0:
            return None
        return self.queue_seconds / self.run_seconds

    @property
    def per_circuit_queue_seconds(self) -> Optional[float]:
        """Effective queue time per circuit in the batch (Fig. 11's metric)."""
        if self.queue_seconds is None or self.batch_size == 0:
            return None
        return self.queue_seconds / self.batch_size

    @property
    def per_circuit_run_seconds(self) -> Optional[float]:
        if self.run_seconds is None or self.batch_size == 0:
            return None
        return self.run_seconds / self.batch_size

    @property
    def is_done(self) -> bool:
        return self.status == JobStatus.DONE.value

    def as_dict(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in _FIELD_NAMES}


_FIELD_NAMES = [f.name for f in fields(JobRecord)]

# -- column schema -------------------------------------------------------------------

#: integer-valued fields, stored as int64 columns
_INT_COLUMNS = (
    "machine_qubits", "month_index", "batch_size", "shots", "circuit_width",
    "circuit_depth", "circuit_gates", "circuit_cx", "circuit_cx_depth",
    "memory_slots", "pending_ahead",
)
#: always-present float fields, stored as float64 columns
_FLOAT_COLUMNS = ("submit_time", "compile_seconds")
#: Optional[float] fields, stored as float64 columns with NaN for None
_OPTIONAL_FLOAT_COLUMNS = ("start_time", "end_time", "queue_seconds",
                           "run_seconds")
_BOOL_COLUMNS = ("crossed_calibration",)
#: low-cardinality string fields, stored as int32 codes + sorted vocabulary
_CATEGORICAL_COLUMNS = ("provider", "access", "machine", "circuit_family",
                        "status", "user_policy")
#: high-cardinality string fields, stored as fixed-width unicode arrays
_STRING_COLUMNS = ("job_id",)

#: JobRecord properties exposed as computed (derived) columns
_DERIVED_COLUMNS = (
    "queue_minutes", "run_minutes", "utilization", "queue_to_run_ratio",
    "per_circuit_queue_seconds", "per_circuit_run_seconds", "total_trials",
    "is_done",
)
#: derived columns that can be missing (NaN in arrays, None in row views)
_OPTIONAL_DERIVED_COLUMNS = frozenset((
    "queue_minutes", "run_minutes", "queue_to_run_ratio",
    "per_circuit_queue_seconds", "per_circuit_run_seconds",
))

#: Version of the ``.npz`` column-dump layout; bump on incompatible changes.
NPZ_SCHEMA_VERSION = 1


def _string_array(values: Sequence[str]) -> np.ndarray:
    if not values:
        return np.asarray([], dtype="<U1")
    return np.asarray(list(values), dtype=str)


def _encode_categorical(values: Sequence[str]) -> Tuple[np.ndarray, Tuple[str, ...]]:
    """Encode strings as (int32 codes, sorted vocabulary)."""
    vocab = tuple(sorted(set(values)))
    mapping = {value: code for code, value in enumerate(vocab)}
    codes = np.fromiter((mapping[v] for v in values), dtype=np.int32,
                        count=len(values))
    return codes, vocab


def _read_member_array(archive: zipfile.ZipFile, member: str) -> np.ndarray:
    with archive.open(member + ".npy") as handle:
        return np.lib.format.read_array(io.BytesIO(handle.read()),
                                        allow_pickle=False)


def _parse_npz_header(text: str, path: Path) -> Dict[str, object]:
    header = json.loads(text)
    found = header.get("schema")
    if found != NPZ_SCHEMA_VERSION:
        raise TraceSchemaError(
            f"trace npz {path} was written with column-layout schema "
            f"{found!r} but this version reads schema {NPZ_SCHEMA_VERSION}; "
            f"regenerate the trace (or delete the file) to proceed")
    return header


class _LazyNpzColumns(dict):
    """Column mapping that decompresses one ``.npz`` member per first access.

    Behaves like the eager ``{name: ndarray}`` dict the dataset stores, but a
    column is only read (and DEFLATE-decompressed) from the archive the first
    time something touches it, so analyses over a few columns never pay for
    the rest of the trace.  Whole-dataset operations (subsetting, group-by,
    re-saving) iterate ``items()`` and therefore force-load everything.
    """

    def __init__(self, path: Path, names: Sequence[str]):
        super().__init__()
        self._path = Path(path)
        self._names = tuple(names)

    def __missing__(self, name: str) -> np.ndarray:
        if name not in self._names:
            raise KeyError(name)
        with zipfile.ZipFile(self._path) as archive:
            array = _read_member_array(archive, f"col__{name}")
        dict.__setitem__(self, name, array)
        return array

    def loaded(self) -> Tuple[str, ...]:
        """Names of the columns decompressed so far."""
        return tuple(dict.keys(self))

    def __contains__(self, name: object) -> bool:
        return name in self._names

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def keys(self) -> Tuple[str, ...]:  # type: ignore[override]
        return self._names

    def items(self):  # type: ignore[override]
        return [(name, self[name]) for name in self._names]

    def values(self):  # type: ignore[override]
        return [self[name] for name in self._names]


class TraceDataset:
    """An ordered, columnar collection of :class:`JobRecord` rows."""

    def __init__(self, records: Optional[Iterable[JobRecord]] = None,
                 metadata: Optional[Dict[str, object]] = None):
        self.metadata: Dict[str, object] = dict(metadata or {})
        columns, vocabs = self._columns_from_records(list(records or []))
        self._columns = columns
        self._vocabs = vocabs
        self._derived: Dict[str, np.ndarray] = {}
        self._row_count: Optional[int] = None

    # -- construction ------------------------------------------------------------------

    @staticmethod
    def _columns_from_records(
        rows: List[JobRecord],
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, Tuple[str, ...]]]:
        columns: Dict[str, np.ndarray] = {}
        vocabs: Dict[str, Tuple[str, ...]] = {}
        for name in _INT_COLUMNS:
            columns[name] = np.asarray([getattr(r, name) for r in rows],
                                       dtype=np.int64)
        for name in _FLOAT_COLUMNS:
            columns[name] = np.asarray([getattr(r, name) for r in rows],
                                       dtype=np.float64)
        for name in _OPTIONAL_FLOAT_COLUMNS:
            columns[name] = np.asarray(
                [np.nan if getattr(r, name) is None else getattr(r, name)
                 for r in rows],
                dtype=np.float64,
            )
        for name in _BOOL_COLUMNS:
            columns[name] = np.asarray([getattr(r, name) for r in rows],
                                       dtype=np.bool_)
        for name in _CATEGORICAL_COLUMNS:
            codes, vocab = _encode_categorical([getattr(r, name) for r in rows])
            columns[name] = codes
            vocabs[name] = vocab
        for name in _STRING_COLUMNS:
            columns[name] = _string_array([getattr(r, name) for r in rows])
        return columns, vocabs

    @classmethod
    def _from_columns(cls, columns: Dict[str, np.ndarray],
                      vocabs: Dict[str, Tuple[str, ...]],
                      metadata: Optional[Dict[str, object]] = None,
                      ) -> "TraceDataset":
        dataset = cls.__new__(cls)
        dataset.metadata = dict(metadata or {})
        dataset._columns = columns
        dataset._vocabs = dict(vocabs)
        dataset._derived = {}
        dataset._row_count = None
        return dataset

    # -- container protocol ------------------------------------------------------------

    def __len__(self) -> int:
        # Cached so lazily loaded datasets do not decompress a column just
        # to learn the row count (the npz header carries it).
        count = self._row_count
        if count is None:
            count = int(self._columns["month_index"].shape[0])
            self._row_count = count
        return count

    def __iter__(self) -> Iterator[JobRecord]:
        if len(self) == 0:
            return iter(())
        lists = [self.column(name) for name in _FIELD_NAMES]
        return (JobRecord(*row) for row in zip(*lists))

    def __getitem__(self, index: Union[int, slice]):
        size = len(self)
        if isinstance(index, slice):
            return [self._record_at(i) for i in range(*index.indices(size))]
        i = int(index)
        if i < 0:
            i += size
        if not 0 <= i < size:
            raise IndexError("record index out of range")
        return self._record_at(i)

    def _record_at(self, i: int) -> JobRecord:
        columns = self._columns
        vocabs = self._vocabs
        kwargs: Dict[str, object] = {}
        for name in _INT_COLUMNS:
            kwargs[name] = int(columns[name][i])
        for name in _FLOAT_COLUMNS:
            kwargs[name] = float(columns[name][i])
        for name in _OPTIONAL_FLOAT_COLUMNS:
            value = float(columns[name][i])
            kwargs[name] = None if value != value else value
        for name in _BOOL_COLUMNS:
            kwargs[name] = bool(columns[name][i])
        for name in _CATEGORICAL_COLUMNS:
            kwargs[name] = vocabs[name][int(columns[name][i])]
        for name in _STRING_COLUMNS:
            kwargs[name] = str(columns[name][i])
        return JobRecord(**kwargs)

    @property
    def records(self) -> List[JobRecord]:
        """Materialise every row as a :class:`JobRecord` (in trace order)."""
        return list(self)

    def append(self, record: JobRecord) -> None:
        self.extend([record])

    def extend(self, records: Iterable[JobRecord]) -> None:
        """Append rows (rebuilds the affected columns; not a hot path)."""
        rows = list(records)
        if not rows:
            return
        new_columns, new_vocabs = self._columns_from_records(rows)
        for name in (_INT_COLUMNS + _FLOAT_COLUMNS + _OPTIONAL_FLOAT_COLUMNS
                     + _BOOL_COLUMNS):
            self._columns[name] = np.concatenate(
                [self._columns[name], new_columns[name]])
        for name in _STRING_COLUMNS:
            self._columns[name] = np.concatenate(
                [np.asarray(self._columns[name], dtype=str),
                 np.asarray(new_columns[name], dtype=str)])
        for name in _CATEGORICAL_COLUMNS:
            merged = tuple(sorted(set(self._vocabs[name])
                                  | set(new_vocabs[name])))
            mapping = {value: code for code, value in enumerate(merged)}
            remap_old = np.asarray(
                [mapping[v] for v in self._vocabs[name]] or [0],
                dtype=np.int32)
            remap_new = np.asarray(
                [mapping[v] for v in new_vocabs[name]] or [0], dtype=np.int32)
            self._columns[name] = np.concatenate([
                remap_old[self._columns[name]],
                remap_new[new_columns[name]],
            ])
            self._vocabs[name] = merged
        self._derived.clear()
        self._row_count = None

    # -- vectorised column access ------------------------------------------------------

    def values(self, name: str) -> np.ndarray:
        """The column ``name`` as a NumPy array (the vectorised primitive).

        Optional float columns use NaN for missing values; categorical
        columns decode to a string array; derived :class:`JobRecord`
        properties (``queue_minutes``, ``utilization``, ...) are computed as
        whole columns and cached.  The returned array is a view of dataset
        state — do not mutate it.
        """
        columns = self._columns
        if name in columns:
            if name in _CATEGORICAL_COLUMNS:
                cached = self._derived.get(name)
                if cached is None:
                    vocab = _string_array(self._vocabs[name])
                    if len(self._vocabs[name]) == 0:
                        cached = np.asarray([], dtype="<U1")
                    else:
                        cached = vocab[columns[name]]
                    self._derived[name] = cached
                return cached
            return columns[name]
        if name in _DERIVED_COLUMNS:
            cached = self._derived.get(name)
            if cached is None:
                cached = self._compute_derived(name)
                self._derived[name] = cached
            return cached
        raise WorkloadError(f"unknown column {name!r}")

    def _compute_derived(self, name: str) -> np.ndarray:
        columns = self._columns
        queue = columns["queue_seconds"]
        run = columns["run_seconds"]
        batch = columns["batch_size"]
        with np.errstate(divide="ignore", invalid="ignore"):
            if name == "queue_minutes":
                return queue / 60.0
            if name == "run_minutes":
                return run / 60.0
            if name == "queue_to_run_ratio":
                valid = ~np.isnan(queue) & (run > 0)
                return np.where(valid, queue / run, np.nan)
            if name == "per_circuit_queue_seconds":
                return np.where(batch != 0, queue / batch, np.nan)
            if name == "per_circuit_run_seconds":
                return np.where(batch != 0, run / batch, np.nan)
            if name == "utilization":
                qubits = columns["machine_qubits"]
                width = columns["circuit_width"]
                return np.where(
                    qubits > 0,
                    np.minimum(1.0, width / np.maximum(qubits, 1)),
                    0.0,
                )
            if name == "total_trials":
                return batch * columns["shots"]
            if name == "is_done":
                return self.mask_equal("status", JobStatus.DONE.value)
        raise WorkloadError(f"unknown column {name!r}")  # pragma: no cover

    def column(self, name: str) -> List[object]:
        """The column as a Python list (``None`` for missing values)."""
        array = self.values(name)
        if name in _OPTIONAL_FLOAT_COLUMNS or name in _OPTIONAL_DERIVED_COLUMNS:
            return [None if v != v else v for v in array.tolist()]
        return array.tolist()

    def numeric_column(self, name: str, drop_none: bool = True) -> np.ndarray:
        """The column as a fresh float array, with missing values dropped.

        Unlike :meth:`values`, the result never aliases dataset state and is
        safe to mutate.
        """
        array = np.asarray(self.values(name), dtype=float)
        if drop_none:
            return array[~np.isnan(array)]
        return array.copy()

    def categories(self, name: str) -> Tuple[str, ...]:
        """The sorted vocabulary of a categorical column."""
        try:
            return self._vocabs[name]
        except KeyError:
            raise WorkloadError(f"{name!r} is not a categorical column") \
                from None

    def mask_equal(self, name: str, value: object) -> np.ndarray:
        """Vectorised equality mask over a column (categoricals via codes)."""
        if name in _CATEGORICAL_COLUMNS:
            vocab = self._vocabs[name]
            try:
                code = vocab.index(value)  # type: ignore[arg-type]
            except ValueError:
                return np.zeros(len(self), dtype=bool)
            return self._columns[name] == code
        return self.values(name) == value

    def value_counts(self, name: str) -> Dict[object, int]:
        """Occurrence counts of each present value of a column."""
        if name in _CATEGORICAL_COLUMNS:
            vocab = self._vocabs[name]
            counts = np.bincount(self._columns[name],
                                 minlength=max(len(vocab), 1))
            return {vocab[code]: int(count)
                    for code, count in enumerate(counts[:len(vocab)])
                    if count > 0}
        array = self.values(name)
        uniques, counts = np.unique(array, return_counts=True)
        return {value: int(count)
                for value, count in zip(uniques.tolist(), counts.tolist())}

    # -- selection ---------------------------------------------------------------------

    def _subset(self, selector: np.ndarray,
                metadata: Optional[Dict[str, object]] = None) -> "TraceDataset":
        columns = {name: column[selector]
                   for name, column in self._columns.items()}
        return TraceDataset._from_columns(columns, self._vocabs, metadata)

    def where(self, mask: np.ndarray) -> "TraceDataset":
        """Vectorised row selection by boolean mask (keeps metadata)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise WorkloadError(
                f"mask length {mask.shape} does not match {len(self)} rows")
        return self._subset(mask, metadata=dict(self.metadata))

    def take(self, indices: Sequence[int]) -> "TraceDataset":
        """Row selection by integer indices, in the given order."""
        return self._subset(np.asarray(list(indices), dtype=np.int64),
                            metadata=dict(self.metadata))

    def filter(self, predicate: Callable[[JobRecord], bool]) -> "TraceDataset":
        """Row-predicate selection (compatibility path; prefer :meth:`where`)."""
        size = len(self)
        if size == 0:
            return self._subset(np.zeros(0, dtype=bool),
                                metadata=dict(self.metadata))
        mask = np.fromiter((bool(predicate(r)) for r in self), dtype=bool,
                           count=size)
        return self._subset(mask, metadata=dict(self.metadata))

    def completed(self) -> "TraceDataset":
        """Jobs that reached a terminal state and actually ran (have run time)."""
        return self.where(self._columns["run_seconds"] > 0)

    def successful(self) -> "TraceDataset":
        return self.where(self.mask_equal("status", JobStatus.DONE.value))

    def for_machine(self, machine: str) -> "TraceDataset":
        return self.where(self.mask_equal("machine", machine))

    def machines(self) -> List[str]:
        return self._present_categories("machine")

    def providers(self) -> List[str]:
        return self._present_categories("provider")

    def _present_categories(self, name: str) -> List[str]:
        vocab = self._vocabs[name]
        present = np.unique(self._columns[name])
        return [vocab[int(code)] for code in present]

    def group_by(self, name: str) -> Dict[object, "TraceDataset"]:
        """Split into per-value subsets of a categorical or integer column.

        Keys are sorted; each subset preserves row order.  Subsets share the
        parent's categorical vocabularies, so codes remain comparable.

        One stable sort reorders every column once; the per-group datasets
        are then contiguous slices (views), so the cost is independent of
        the number of groups rather than one full-column scan per group.
        """
        size = len(self)
        if size == 0:
            return {}
        if name in _CATEGORICAL_COLUMNS:
            keys = self._columns[name]
            vocab = self._vocabs[name]

            def decode(key: object) -> object:
                return vocab[key]
        else:
            keys = self.values(name)
            if keys.dtype.kind == "f" and np.isnan(keys).any():
                raise WorkloadError(
                    f"cannot group by {name!r}: column has missing values")

            def decode(key: object) -> object:
                return key
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [size]])
        sorted_columns = {column_name: column[order]
                          for column_name, column in self._columns.items()}
        groups: Dict[object, "TraceDataset"] = {}
        for start, end in zip(starts.tolist(), ends.tolist()):
            key = decode(sorted_keys[start].item())
            columns = {column_name: column[start:end]
                       for column_name, column in sorted_columns.items()}
            groups[key] = TraceDataset._from_columns(columns, self._vocabs)
        return groups

    def group_by_machine(self) -> Dict[str, "TraceDataset"]:
        return self.group_by("machine")

    def group_by_month(self) -> Dict[int, "TraceDataset"]:
        return self.group_by("month_index")

    # -- aggregate summaries -------------------------------------------------------------

    def total_circuits(self) -> int:
        return int(self._columns["batch_size"].sum())

    def total_trials(self) -> int:
        return int(self.values("total_trials").sum())

    def status_counts(self) -> Dict[str, int]:
        return self.value_counts("status")

    def summary(self) -> Dict[str, object]:
        return {
            "jobs": len(self),
            "circuits": self.total_circuits(),
            "trials": self.total_trials(),
            "machines": len(self.machines()),
            "statuses": self.status_counts(),
        }

    # -- persistence ----------------------------------------------------------------------

    def _row_dicts(self) -> List[Dict[str, object]]:
        lists = [self.column(name) for name in _FIELD_NAMES]
        return [dict(zip(_FIELD_NAMES, row)) for row in zip(*lists)]

    def to_json(self, path: Union[str, Path]) -> None:
        payload = {
            "metadata": self.metadata,
            "records": self._row_dicts(),
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "TraceDataset":
        payload = json.loads(Path(path).read_text())
        records = [JobRecord(**row) for row in payload.get("records", [])]
        return cls(records, metadata=payload.get("metadata", {}))

    def to_csv(self, path: Union[str, Path]) -> None:
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=_FIELD_NAMES)
            writer.writeheader()
            for row in self._row_dicts():
                writer.writerow(row)

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "TraceDataset":
        records: List[JobRecord] = []
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                records.append(JobRecord(**_coerce_row(row)))
        return cls(records)

    def to_npz(self, path: Union[str, Path]) -> None:
        """Write the columns as a versioned, deterministic compressed .npz.

        The member order, timestamps and compression are fixed, so the same
        trace always produces the same bytes — a requirement of the on-disk
        trace cache's byte-stability guarantee.
        """
        arrays: Dict[str, np.ndarray] = {}
        for name, column in self._columns.items():
            arrays[f"col__{name}"] = column
        for name, vocab in self._vocabs.items():
            arrays[f"vocab__{name}"] = _string_array(vocab)
        header = json.dumps({
            "schema": NPZ_SCHEMA_VERSION,
            "rows": len(self),
            "metadata": self.metadata,
        })
        arrays["__meta__"] = _string_array([header])
        with zipfile.ZipFile(path, "w",
                             compression=zipfile.ZIP_DEFLATED) as archive:
            for name in sorted(arrays):
                buffer = io.BytesIO()
                np.lib.format.write_array(
                    buffer, np.ascontiguousarray(arrays[name]),
                    allow_pickle=False)
                info = zipfile.ZipInfo(name + ".npy",
                                       date_time=(1980, 1, 1, 0, 0, 0))
                info.compress_type = zipfile.ZIP_DEFLATED
                archive.writestr(info, buffer.getvalue())

    @classmethod
    def from_npz(cls, path: Union[str, Path],
                 lazy: bool = False) -> "TraceDataset":
        """Load a trace written by :meth:`to_npz`.

        With ``lazy=True`` only the header and the categorical vocabularies
        are decompressed up front; each column is decompressed on first
        access, so comparisons that touch a handful of columns never pay for
        the whole trace.

        Raises :class:`~repro.core.exceptions.TraceSchemaError` (a
        ``ValueError`` subclass) when the column-layout schema does not
        match, naming the expected and found versions and the path, and
        ``KeyError`` on missing members.
        """
        path = Path(path)
        if lazy:
            return cls._from_npz_lazy(path)
        with np.load(path, allow_pickle=False) as data:
            header = _parse_npz_header(str(data["__meta__"][0]), path)
            columns: Dict[str, np.ndarray] = {}
            vocabs: Dict[str, Tuple[str, ...]] = {}
            for name in (_INT_COLUMNS + _FLOAT_COLUMNS
                         + _OPTIONAL_FLOAT_COLUMNS + _BOOL_COLUMNS
                         + _STRING_COLUMNS):
                columns[name] = data[f"col__{name}"]
            for name in _CATEGORICAL_COLUMNS:
                columns[name] = data[f"col__{name}"]
                vocabs[name] = tuple(data[f"vocab__{name}"].tolist())
            metadata = header.get("metadata", {})
        dataset = cls._from_columns(columns, vocabs, metadata)
        if isinstance(header.get("rows"), int):
            dataset._row_count = int(header["rows"])
        return dataset

    @classmethod
    def _from_npz_lazy(cls, path: Path) -> "TraceDataset":
        names = (_INT_COLUMNS + _FLOAT_COLUMNS + _OPTIONAL_FLOAT_COLUMNS
                 + _BOOL_COLUMNS + _CATEGORICAL_COLUMNS + _STRING_COLUMNS)
        vocabs: Dict[str, Tuple[str, ...]] = {}
        with zipfile.ZipFile(path) as archive:
            header = _parse_npz_header(
                str(_read_member_array(archive, "__meta__")[0]), path)
            for name in _CATEGORICAL_COLUMNS:
                vocabs[name] = tuple(
                    _read_member_array(archive, f"vocab__{name}").tolist())
            members = set(archive.namelist())
        missing = [name for name in names if f"col__{name}.npy" not in members]
        if missing:
            raise KeyError(
                f"trace npz {path} is missing columns {missing}")
        dataset = cls._from_columns(_LazyNpzColumns(path, names), vocabs,
                                    header.get("metadata", {}))
        if isinstance(header.get("rows"), int):
            dataset._row_count = int(header["rows"])
        return dataset

    @classmethod
    def load(cls, path: Union[str, Path],
             lazy: bool = False) -> "TraceDataset":
        """Load a trace from .npz, .csv or .json (by file suffix).

        ``lazy`` requests per-column on-demand loading and only applies to
        the ``.npz`` format (text formats are parsed whole regardless).
        """
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".npz":
            return cls.from_npz(path, lazy=lazy)
        if suffix == ".csv":
            return cls.from_csv(path)
        return cls.from_json(path)

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as .npz, .csv or .json (by file suffix)."""
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".npz":
            self.to_npz(path)
        elif suffix == ".csv":
            self.to_csv(path)
        else:
            self.to_json(path)


def _coerce_row(row: Dict[str, str]) -> Dict[str, object]:
    """Convert CSV string values back to the JobRecord field types."""
    coerced: Dict[str, object] = {}
    for key, value in row.items():
        if key in _INT_COLUMNS:
            coerced[key] = int(float(value))
        elif key in _FLOAT_COLUMNS:
            coerced[key] = float(value)
        elif key in _OPTIONAL_FLOAT_COLUMNS:
            coerced[key] = None if value in ("", "None") else float(value)
        elif key in _BOOL_COLUMNS:
            coerced[key] = value in ("True", "true", "1")
        else:
            coerced[key] = value
    return coerced
