"""Trace records and the columnar trace dataset.

A :class:`JobRecord` is one row of the study dataset: everything the
analysis layer needs about one job (identity, machine, shape, timestamps,
status, structural circuit metrics, calibration-crossover flag).  The
:class:`TraceDataset` is a lightweight columnar container (pandas is not
available offline) with filtering, column extraction and JSON/CSV
round-trip.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Union

import numpy as np

from repro.core.exceptions import WorkloadError
from repro.core.types import JobStatus


@dataclass(frozen=True)
class JobRecord:
    """One job of the study trace (the analysis layer's unit of data)."""

    job_id: str
    provider: str
    access: str                 # "public" | "privileged" (of the machine)
    machine: str
    machine_qubits: int
    month_index: int            # 0 = first month of the study window
    batch_size: int
    shots: int
    circuit_family: str
    circuit_width: int
    circuit_depth: int
    circuit_gates: int
    circuit_cx: int
    circuit_cx_depth: int
    memory_slots: int
    submit_time: float          # seconds from the study epoch
    start_time: Optional[float]
    end_time: Optional[float]
    status: str                 # JobStatus value
    queue_seconds: Optional[float]
    run_seconds: Optional[float]
    compile_seconds: float
    pending_ahead: int
    crossed_calibration: bool
    user_policy: str = "unknown"

    # -- derived quantities ----------------------------------------------------------

    @property
    def total_trials(self) -> int:
        """Machine trials contributed by this job (batch x shots)."""
        return self.batch_size * self.shots

    @property
    def utilization(self) -> float:
        """Fraction of the machine's qubits used by the job's circuits (Fig. 8)."""
        if self.machine_qubits <= 0:
            return 0.0
        return min(1.0, self.circuit_width / self.machine_qubits)

    @property
    def queue_minutes(self) -> Optional[float]:
        return None if self.queue_seconds is None else self.queue_seconds / 60.0

    @property
    def run_minutes(self) -> Optional[float]:
        return None if self.run_seconds is None else self.run_seconds / 60.0

    @property
    def queue_to_run_ratio(self) -> Optional[float]:
        if not self.run_seconds or self.queue_seconds is None:
            return None
        if self.run_seconds <= 0:
            return None
        return self.queue_seconds / self.run_seconds

    @property
    def per_circuit_queue_seconds(self) -> Optional[float]:
        """Effective queue time per circuit in the batch (Fig. 11's metric)."""
        if self.queue_seconds is None or self.batch_size == 0:
            return None
        return self.queue_seconds / self.batch_size

    @property
    def per_circuit_run_seconds(self) -> Optional[float]:
        if self.run_seconds is None or self.batch_size == 0:
            return None
        return self.run_seconds / self.batch_size

    @property
    def is_done(self) -> bool:
        return self.status == JobStatus.DONE.value

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


_FIELD_NAMES = [f.name for f in fields(JobRecord)]


class TraceDataset:
    """An ordered collection of :class:`JobRecord` rows."""

    def __init__(self, records: Optional[Iterable[JobRecord]] = None,
                 metadata: Optional[Dict[str, object]] = None):
        self._records: List[JobRecord] = list(records or [])
        self.metadata: Dict[str, object] = dict(metadata or {})

    # -- container protocol ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[JobRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> JobRecord:
        return self._records[index]

    @property
    def records(self) -> List[JobRecord]:
        return list(self._records)

    def append(self, record: JobRecord) -> None:
        self._records.append(record)

    def extend(self, records: Iterable[JobRecord]) -> None:
        self._records.extend(records)

    # -- selection ---------------------------------------------------------------------

    def filter(self, predicate: Callable[[JobRecord], bool]) -> "TraceDataset":
        return TraceDataset(
            (r for r in self._records if predicate(r)), metadata=dict(self.metadata)
        )

    def completed(self) -> "TraceDataset":
        """Jobs that reached a terminal state and actually ran (have run time)."""
        return self.filter(lambda r: r.run_seconds is not None and r.run_seconds > 0)

    def successful(self) -> "TraceDataset":
        return self.filter(lambda r: r.is_done)

    def for_machine(self, machine: str) -> "TraceDataset":
        return self.filter(lambda r: r.machine == machine)

    def machines(self) -> List[str]:
        return sorted({r.machine for r in self._records})

    def providers(self) -> List[str]:
        return sorted({r.provider for r in self._records})

    # -- column access -----------------------------------------------------------------

    def column(self, name: str) -> List[object]:
        """Extract a column by field or property name."""
        if not self._records:
            return []
        probe = self._records[0]
        if not hasattr(probe, name):
            raise WorkloadError(f"unknown column {name!r}")
        return [getattr(r, name) for r in self._records]

    def numeric_column(self, name: str, drop_none: bool = True) -> np.ndarray:
        values = self.column(name)
        if drop_none:
            values = [v for v in values if v is not None]
        return np.asarray(values, dtype=float)

    def group_by_machine(self) -> Dict[str, "TraceDataset"]:
        groups: Dict[str, List[JobRecord]] = {}
        for record in self._records:
            groups.setdefault(record.machine, []).append(record)
        return {name: TraceDataset(rows) for name, rows in sorted(groups.items())}

    def group_by_month(self) -> Dict[int, "TraceDataset"]:
        groups: Dict[int, List[JobRecord]] = {}
        for record in self._records:
            groups.setdefault(record.month_index, []).append(record)
        return {month: TraceDataset(rows) for month, rows in sorted(groups.items())}

    # -- aggregate summaries -------------------------------------------------------------

    def total_circuits(self) -> int:
        return sum(r.batch_size for r in self._records)

    def total_trials(self) -> int:
        return sum(r.total_trials for r in self._records)

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self._records:
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    def summary(self) -> Dict[str, object]:
        return {
            "jobs": len(self),
            "circuits": self.total_circuits(),
            "trials": self.total_trials(),
            "machines": len(self.machines()),
            "statuses": self.status_counts(),
        }

    # -- persistence ----------------------------------------------------------------------

    def to_json(self, path: Union[str, Path]) -> None:
        payload = {
            "metadata": self.metadata,
            "records": [r.as_dict() for r in self._records],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "TraceDataset":
        payload = json.loads(Path(path).read_text())
        records = [JobRecord(**row) for row in payload.get("records", [])]
        return cls(records, metadata=payload.get("metadata", {}))

    def to_csv(self, path: Union[str, Path]) -> None:
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=_FIELD_NAMES)
            writer.writeheader()
            for record in self._records:
                writer.writerow(record.as_dict())

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "TraceDataset":
        records: List[JobRecord] = []
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                records.append(JobRecord(**_coerce_row(row)))
        return cls(records)


def _coerce_row(row: Dict[str, str]) -> Dict[str, object]:
    """Convert CSV string values back to the JobRecord field types."""
    integer_fields = {
        "machine_qubits", "month_index", "batch_size", "shots", "circuit_width",
        "circuit_depth", "circuit_gates", "circuit_cx", "circuit_cx_depth",
        "memory_slots", "pending_ahead",
    }
    float_fields = {"submit_time", "compile_seconds"}
    optional_float_fields = {"start_time", "end_time", "queue_seconds", "run_seconds"}
    boolean_fields = {"crossed_calibration"}
    coerced: Dict[str, object] = {}
    for key, value in row.items():
        if key in integer_fields:
            coerced[key] = int(float(value))
        elif key in float_fields:
            coerced[key] = float(value)
        elif key in optional_float_fields:
            coerced[key] = None if value in ("", "None") else float(value)
        elif key in boolean_fields:
            coerced[key] = value in ("True", "true", "1")
        else:
            coerced[key] = value
    return coerced
