"""Study-scale machine ranking over transpile equivalence classes.

The rank-mode policy scenarios (``PolicySwap(mode="rank")``) make every
user pick machines the way a live :class:`~repro.scheduling.policies.
MachineSelector` would: transpile the circuit for each eligible machine,
estimate success probability, trade it off against the expected wait.
Doing that per circuit is ~600k transpiles; doing it per *equivalence
class* (:func:`~repro.workloads.circuit_metrics.structural_fingerprint`)
is a few hundred — every draw of one (family, width) template shares a
structure, so one pinned transpile per (class, machine, level) serves the
whole study.

:class:`ClassRankTable` is the result of that amortisation: a plain-data
map from (family, width, machine) to its
:class:`~repro.transpiler.cache.TranspileSummary`, plus the selection rule
itself.  The table is built by the runner (cold classes sharded across the
worker pool, warm ones served from the on-disk
:class:`~repro.transpiler.cache.TranspileCache`) and shipped to synthesis
workers inside the task payload; anything a worker finds missing it
computes inline from the same pure function, so the selection is
byte-identical for any worker or shard count, cached or not.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.devices.backend import Backend
from repro.scheduling.policies import (
    SelectionObjective,
    objective_weight,
    rank_candidates,
)
from repro.transpiler.cache import (
    DEFAULT_RANK_SEED,
    TranspileSummary,
    summarise_transpile,
)
from repro.workloads.circuit_metrics import (
    class_fingerprint,
    representative_circuit,
)

__all__ = [
    "ClassRankTable",
    "TranspilePair",
    "compute_class_summary",
    "compute_class_summaries",
]

#: One (equivalence class, machine) transpile unit of work.
TranspilePair = Tuple[str, int, str]  # (family, width, machine)


def compute_class_summary(family: str, width: int, backend: Backend,
                          level: int,
                          seed: int = DEFAULT_RANK_SEED) -> TranspileSummary:
    """Transpile the (family, width) class representative on ``backend``.

    A pure function of its arguments: the representative circuit is built
    from a pinned RNG stream and the transpile/ESP are pinned to epoch
    zero, so every process computes the same summary.
    """
    circuit = representative_circuit(family, width)
    return summarise_transpile(
        circuit, backend, level, seed=seed, family=family,
        class_fp=class_fingerprint(family, width))


def compute_class_summaries(pairs: Iterable[TranspilePair],
                            fleet: Dict[str, Backend], level: int,
                            seed: int = DEFAULT_RANK_SEED
                            ) -> List[TranspileSummary]:
    """Summaries for a batch of (family, width, machine) pairs, in order."""
    return [compute_class_summary(family, width, fleet[machine], level,
                                  seed=seed)
            for family, width, machine in pairs]


class ClassRankTable:
    """The batch-ranked MachineSelector of one rank-mode study.

    Holds the class summaries and the objective, and answers the only
    question synthesis asks: *given this (family, width) and these eligible
    machines with these pending estimates, which machine does a ranking
    user pick?*  Scoring runs through
    :func:`repro.scheduling.policies.rank_candidates` — the same algebra as
    the interactive selector — with the per-machine expected pending count
    standing in for the wait estimate (the normalisation makes the score
    scale-free, so the unit does not matter).

    Entries missing from the table are computed inline and memoised; the
    computation is a pure function, so a sparse table selects exactly like
    a complete one.
    """

    def __init__(self, objective: str = SelectionObjective.BALANCED.value,
                 level: int = 3, seed: int = DEFAULT_RANK_SEED,
                 fidelity_weight: float = 0.6,
                 summaries: Sequence[TranspileSummary] = ()):
        self.objective = SelectionObjective(objective)
        self.level = int(level)
        self.seed = int(seed)
        self.fidelity_weight = float(fidelity_weight)
        self.weight = objective_weight(self.objective, self.fidelity_weight)
        self._entries: Dict[TranspilePair, TranspileSummary] = {}
        self.inline_computes = 0
        self.add(summaries)

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, summaries: Iterable[TranspileSummary]) -> None:
        for summary in summaries:
            self._entries[(summary.family, summary.width,
                           summary.machine)] = summary

    def summary_for(self, family: str, width: int,
                    backend: Backend) -> TranspileSummary:
        """The class summary for one machine (computed inline on a miss)."""
        pair = (family, width, backend.name)
        summary = self._entries.get(pair)
        if summary is None:
            summary = compute_class_summary(family, width, backend,
                                            self.level, seed=self.seed)
            self._entries[pair] = summary
            self.inline_computes += 1
        return summary

    def select(self, family: str, width: int, eligible: Sequence[Backend],
               pending_estimate: Optional[Dict[str, float]] = None
               ) -> Backend:
        """The machine a ranking user picks for one job."""
        by_name = {backend.name: backend for backend in eligible}
        choices = rank_candidates(
            ((s.machine, s.estimated_success, s.cx_total, s.cx_depth)
             for s in (self.summary_for(family, width, backend)
                       for backend in eligible)),
            expected_wait_minutes=pending_estimate,
            fidelity_weight=self.weight,
        )
        return by_name[choices[0].machine]
