"""Workload models and the synthetic two-year trace generator.

The paper's dataset is two years of one research group's jobs on the IBM
Quantum cloud.  This package synthesises an equivalent dataset:

* :mod:`repro.workloads.distributions` — the samplers for batch size, shots,
  circuit width, circuit family and provider mix, calibrated so the marginal
  statistics match what the paper reports.
* :mod:`repro.workloads.circuit_metrics` — fast structural metrics for the
  benchmark circuit families (with a routing-overhead model per machine), so
  600k circuits don't each need a full transpile.
* :mod:`repro.workloads.compile_model` — compile-time estimates calibrated
  against the real transpiler in :mod:`repro.transpiler`.
* :mod:`repro.workloads.users` — user behaviour (machine-selection policy).
* :mod:`repro.workloads.trace` — the NumPy-columnar :class:`TraceDataset`
  (typed per-field arrays, lazy :class:`JobRecord` row views) with
  npz/JSON/CSV round-trip.
* :mod:`repro.workloads.generator` — drives the cloud simulator to produce
  the full study trace.
* :mod:`repro.workloads.rowpath` — the row-at-a-time reference data plane
  kept for the golden-equivalence test and the data-plane benchmark.
"""

from repro.workloads.distributions import (
    WorkloadDistributions,
    BatchSizeSampler,
    ShotsSampler,
    WidthSampler,
    FamilySampler,
)
from repro.workloads.circuit_metrics import (
    CircuitMetrics,
    logical_metrics,
    compiled_metrics,
    routing_overhead_factor,
)
from repro.workloads.compile_model import CompileTimeModel
from repro.workloads.users import UserProfile, MachineSelectionPolicy, default_user_population
from repro.workloads.trace import JobRecord, TraceDataset
from repro.workloads.generator import TraceGenerator, TraceGeneratorConfig, generate_study_trace

__all__ = [
    "WorkloadDistributions",
    "BatchSizeSampler",
    "ShotsSampler",
    "WidthSampler",
    "FamilySampler",
    "CircuitMetrics",
    "logical_metrics",
    "compiled_metrics",
    "routing_overhead_factor",
    "CompileTimeModel",
    "UserProfile",
    "MachineSelectionPolicy",
    "default_user_population",
    "JobRecord",
    "TraceDataset",
    "TraceGenerator",
    "TraceGeneratorConfig",
    "generate_study_trace",
]
