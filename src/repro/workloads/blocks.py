"""Chunked column blocks, disk spill, and the resident-bytes governor.

The out-of-core data plane stores a trace as an ordered sequence of
:class:`ColumnBlock` objects — fixed-size row ranges whose columns live in
one ``{name: ndarray}`` dict each.  A :class:`BlockStore` owns the sequence
and a :class:`ResidencyGovernor` enforces a configurable resident-bytes
budget across every store that shares it: past the budget, least-recently
used blocks are *spilled* to versioned ``.npz`` block files (or simply
dropped when they already have a backing file, e.g. blocks loaded from a
cache manifest) and transparently re-read on the next access.

The module is deliberately independent of :mod:`repro.workloads.trace`
(which builds on it) — it knows nothing about job records, vocabularies or
derived columns, only about named arrays of equal length.

The process-wide memory budget defaults to unlimited; set it with
:func:`set_memory_budget`, the ``REPRO_MEMORY_BUDGET`` environment variable
(bytes, with optional ``K``/``M``/``G`` suffix) or the CLI's
``--memory-budget`` flag.  ``None`` disables spilling entirely — datasets
then stay fully resident exactly like the pre-block data plane.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import threading
import zipfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.exceptions import TraceSchemaError, WorkloadError
from repro.telemetry import get_registry, get_tracer

__all__ = [
    "BLOCK_SCHEMA_VERSION",
    "BlockStore",
    "ColumnBlock",
    "DEFAULT_BLOCK_ROWS",
    "ResidencyGovernor",
    "get_memory_budget",
    "parse_byte_size",
    "read_block_column",
    "read_block_file",
    "set_memory_budget",
    "write_block_file",
    "write_npz_member",
]

#: Version of the per-block ``.npz`` file layout (spill files and cache
#: manifest blocks); bump on incompatible changes.
BLOCK_SCHEMA_VERSION = 1

# Pre-register the residency families so ``/metrics`` exposes them (at
# zero) even in processes that never build an out-of-core dataset; live
# governors contribute per-instance counters under the same names.
for _residency_name, _residency_help in (
    ("repro_residency_spills_total",
     "Blocks spilled (written to a new block file)."),
    ("repro_residency_loads_total",
     "Blocks re-read from their backing block file."),
    ("repro_residency_evictions_total",
     "Blocks released from memory (spilled or dropped)."),
):
    get_registry().counter(_residency_name, help=_residency_help)
del _residency_name, _residency_help
get_registry().gauge(
    "repro_residency_resident_bytes",
    help="Bytes held by resident blocks across live governors.")

#: Default rows per block when chunking a trace.  Small enough that one
#: block of the full column set stays in the tens of megabytes at the
#: paper's record width, large enough that per-block overheads vanish.
DEFAULT_BLOCK_ROWS = 65536

_ENV_BUDGET = "REPRO_MEMORY_BUDGET"

_SIZE_SUFFIXES = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}


def parse_byte_size(text: Union[str, int, None]) -> Optional[int]:
    """Parse a byte budget: plain integer or ``K``/``M``/``G`` suffixed.

    ``None``, ``""`` and the literal strings ``none``/``unlimited`` mean no
    budget.  Raises :class:`~repro.core.exceptions.WorkloadError` on
    malformed input.
    """
    if text is None:
        return None
    if isinstance(text, int):
        if text < 0:
            raise WorkloadError(f"memory budget must be >= 0, got {text}")
        return text
    cleaned = str(text).strip().lower()
    if cleaned in ("", "none", "unlimited"):
        return None
    multiplier = 1
    if cleaned[-1] in _SIZE_SUFFIXES:
        multiplier = _SIZE_SUFFIXES[cleaned[-1]]
        cleaned = cleaned[:-1]
    try:
        value = int(float(cleaned) * multiplier)
    except ValueError:
        raise WorkloadError(
            f"cannot parse memory budget {text!r}; expected bytes or a "
            f"K/M/G-suffixed size like '256M'") from None
    if value < 0:
        raise WorkloadError(f"memory budget must be >= 0, got {text!r}")
    return value


_memory_budget: Optional[int] = parse_byte_size(os.environ.get(_ENV_BUDGET))
_budget_lock = threading.Lock()


def set_memory_budget(budget: Union[str, int, None]) -> Optional[int]:
    """Set the process-wide resident-bytes budget (None = unlimited).

    Affects datasets *built after* the call: construction paths consult the
    budget to decide whether to chunk into governed blocks.  Returns the
    parsed byte value.
    """
    global _memory_budget
    parsed = parse_byte_size(budget)
    with _budget_lock:
        _memory_budget = parsed
    return parsed


def get_memory_budget() -> Optional[int]:
    """The process-wide resident-bytes budget (None = unlimited)."""
    with _budget_lock:
        return _memory_budget


# -- deterministic npz helpers ---------------------------------------------------------

def write_npz_member(archive: zipfile.ZipFile, member: str,
                     array: np.ndarray) -> None:
    """Write one ``.npy`` member with fixed timestamp and compression.

    Shared by the trace's single-file ``.npz`` dump, spill block files and
    cache-manifest block files, so every on-disk artefact of one trace is
    written byte-deterministically.
    """
    buffer = io.BytesIO()
    np.lib.format.write_array(buffer, np.ascontiguousarray(array),
                              allow_pickle=False)
    info = zipfile.ZipInfo(member + ".npy", date_time=(1980, 1, 1, 0, 0, 0))
    info.compress_type = zipfile.ZIP_DEFLATED
    archive.writestr(info, buffer.getvalue())


def read_npz_member(archive: zipfile.ZipFile, member: str) -> np.ndarray:
    with archive.open(member + ".npy") as handle:
        return np.lib.format.read_array(io.BytesIO(handle.read()),
                                        allow_pickle=False)


def write_block_file(path: Union[str, Path],
                     arrays: Dict[str, np.ndarray], rows: int) -> None:
    """Write one block as a versioned deterministic ``.npz`` file."""
    header = json.dumps({"schema": BLOCK_SCHEMA_VERSION, "rows": rows})
    with zipfile.ZipFile(path, "w",
                         compression=zipfile.ZIP_DEFLATED) as archive:
        write_npz_member(archive, "__block__",
                         np.asarray([header], dtype=str))
        for name in sorted(arrays):
            write_npz_member(archive, f"col__{name}", arrays[name])


def _check_block_header(archive: zipfile.ZipFile, path: Path) -> int:
    header = json.loads(str(read_npz_member(archive, "__block__")[0]))
    found = header.get("schema")
    if found != BLOCK_SCHEMA_VERSION:
        raise TraceSchemaError(
            f"block file {path} was written with block schema {found!r} but "
            f"this version reads schema {BLOCK_SCHEMA_VERSION}; regenerate "
            f"the trace (or delete the file) to proceed")
    return int(header.get("rows", 0))


def read_block_file(path: Union[str, Path],
                    names: Optional[Sequence[str]] = None
                    ) -> Dict[str, np.ndarray]:
    """Read (a subset of) one block file's columns."""
    path = Path(path)
    with zipfile.ZipFile(path) as archive:
        _check_block_header(archive, path)
        if names is None:
            names = [member[len("col__"):-len(".npy")]
                     for member in archive.namelist()
                     if member.startswith("col__")]
        return {name: read_npz_member(archive, f"col__{name}")
                for name in names}


def read_block_column(path: Union[str, Path], name: str) -> np.ndarray:
    """Read a single column of one block file (one member decompressed)."""
    path = Path(path)
    with zipfile.ZipFile(path) as archive:
        return read_npz_member(archive, f"col__{name}")


# -- residency -------------------------------------------------------------------------

class ResidencyGovernor:
    """LRU accountant of resident block bytes across one or more stores.

    A governor is shared between a dataset and every subset/group derived
    from it, so the *combined* resident footprint of a whole analysis is
    what the budget bounds.  ``budget=None`` disables enforcement (blocks
    are tracked but never released).
    """

    def __init__(self, budget: Optional[int] = None,
                 spill_dir: Optional[Union[str, Path]] = None):
        if budget is not None and budget < 0:
            raise WorkloadError(f"budget must be >= 0, got {budget}")
        self.budget = budget
        # Per-instance counters aggregated under shared registry names —
        # the ``spills`` / ``loads`` / ``evictions`` attributes (and their
        # external ``+=`` writers) keep per-governor semantics while
        # ``repro_residency_*_total`` sums every live governor.
        registry = get_registry()
        self._spills = registry.instance_counter(
            "repro_residency_spills_total",
            help="Blocks spilled (written to a new block file).")
        self._loads = registry.instance_counter(
            "repro_residency_loads_total",
            help="Blocks re-read from their backing block file.")
        self._evictions = registry.instance_counter(
            "repro_residency_evictions_total",
            help="Blocks released from memory (spilled or dropped).")
        registry.callback_gauge(
            "repro_residency_resident_bytes", self,
            lambda governor: governor.resident_bytes,
            help="Bytes held by resident blocks across live governors.")
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        #: insertion-ordered resident set; dict preserves LRU order
        self._resident: Dict["ColumnBlock", None] = {}
        self._lock = threading.RLock()
        self._spill_seq = 0

    @property
    def spills(self) -> int:
        return self._spills.value

    @spills.setter
    def spills(self, value: int) -> None:
        self._spills.set_local(value)

    @property
    def loads(self) -> int:
        return self._loads.value

    @loads.setter
    def loads(self, value: int) -> None:
        self._loads.set_local(value)

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @evictions.setter
    def evictions(self, value: int) -> None:
        self._evictions.set_local(value)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return sum(block.nbytes for block in self._resident)

    def spill_path(self) -> Path:
        """A fresh path for one spill file (directory created lazily)."""
        with self._lock:
            if self._spill_dir is None:
                self._tmp = tempfile.TemporaryDirectory(
                    prefix="repro-blocks-")
                self._spill_dir = Path(self._tmp.name)
            self._spill_dir.mkdir(parents=True, exist_ok=True)
            self._spill_seq += 1
            return self._spill_dir / f"spill-{self._spill_seq:06d}.npz"

    def admit(self, block: "ColumnBlock") -> None:
        """Track a block that just became resident (most recently used)."""
        with self._lock:
            self._resident.pop(block, None)
            self._resident[block] = None

    def touch(self, block: "ColumnBlock") -> None:
        """Bump a resident block's recency."""
        with self._lock:
            if block in self._resident:
                self._resident.pop(block)
                self._resident[block] = None

    def discard(self, block: "ColumnBlock") -> None:
        with self._lock:
            self._resident.pop(block, None)

    def enforce(self, keep: Optional["ColumnBlock"] = None) -> None:
        """Release least-recently-used blocks until within budget.

        ``keep`` (the block the caller is actively reading) is never
        released, so a budget smaller than one block still makes progress.
        """
        if self.budget is None:
            return
        with self._lock:
            total = sum(block.nbytes for block in self._resident)
            if total <= self.budget:
                return
            for block in list(self._resident):
                if total <= self.budget:
                    break
                if block is keep:
                    continue
                total -= block.nbytes
                block._release()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "budget_bytes": self.budget,
                "resident_bytes": self.resident_bytes,
                "resident_blocks": len(self._resident),
                "spills": self.spills,
                "loads": self.loads,
                "evictions": self.evictions,
            }


class ColumnBlock:
    """One row range of a chunked trace: named equal-length arrays.

    A block is either *resident* (``_arrays`` holds the column dict) or
    *spilled* (``path`` points at a versioned block file).  Blocks loaded
    from a cache manifest start spilled and keep their manifest file as the
    backing store, so releasing them never writes anything.
    """

    def __init__(self, governor: ResidencyGovernor,
                 arrays: Optional[Dict[str, np.ndarray]] = None,
                 path: Optional[Union[str, Path]] = None,
                 rows: Optional[int] = None,
                 names: Optional[Sequence[str]] = None,
                 nbytes: Optional[int] = None):
        if arrays is None and path is None:
            raise WorkloadError("a block needs arrays or a backing file")
        self.governor = governor
        self._arrays = dict(arrays) if arrays is not None else None
        self.path = Path(path) if path is not None else None
        if self._arrays is not None:
            first = next(iter(self._arrays.values()), None)
            self.rows = int(rows if rows is not None
                            else (0 if first is None else first.shape[0]))
            self.names = tuple(names if names is not None
                               else sorted(self._arrays))
            self.nbytes = int(nbytes if nbytes is not None else sum(
                array.nbytes for array in self._arrays.values()))
            governor.admit(self)
            governor.enforce(keep=self)
        else:
            if rows is None or names is None:
                raise WorkloadError(
                    "a file-backed block needs explicit rows and names")
            self.rows = int(rows)
            self.names = tuple(names)
            self.nbytes = int(nbytes if nbytes is not None else 0)

    @property
    def resident(self) -> bool:
        return self._arrays is not None

    def arrays(self) -> Dict[str, np.ndarray]:
        """The block's full column dict, loading from disk if spilled."""
        governor = self.governor
        arrays = self._arrays
        if arrays is None:
            with get_tracer().span("blocks.load", rows=self.rows,
                                   nbytes=self.nbytes):
                loaded = read_block_file(self.path, self.names)
            self._arrays = loaded
            if self.nbytes == 0:
                self.nbytes = sum(a.nbytes for a in loaded.values())
            governor.loads += 1
            governor.admit(self)
            governor.enforce(keep=self)
            return loaded
        governor.touch(self)
        return arrays

    def column(self, name: str) -> np.ndarray:
        """One column of the block.

        A spilled block decompresses only the requested member — a
        single-column scan over a spilled trace never touches the other
        columns and does not change the block's residency.
        """
        if name not in self.names:
            raise KeyError(name)
        arrays = self._arrays
        if arrays is not None:
            self.governor.touch(self)
            return arrays[name]
        return read_block_column(self.path, name)

    def _release(self) -> None:
        """Drop the resident arrays, spilling first when not yet on disk.

        Called by the governor under its lock; callers holding array
        references keep them valid (the block simply reloads later).
        """
        if self._arrays is None:
            return
        if self.path is None:
            self.path = self.governor.spill_path()
            with get_tracer().span("blocks.spill", rows=self.rows,
                                   nbytes=self.nbytes):
                write_block_file(self.path, self._arrays, self.rows)
            self.governor.spills += 1
        self._arrays = None
        self.governor.evictions += 1
        self.governor.discard(self)


class BlockStore:
    """An ordered sequence of column blocks forming one logical table."""

    def __init__(self, governor: Optional[ResidencyGovernor] = None):
        self.governor = governor if governor is not None else \
            ResidencyGovernor(get_memory_budget())
        self.blocks: List[ColumnBlock] = []
        self.rows = 0
        self.names: Tuple[str, ...] = ()

    def append_block(self, block: ColumnBlock) -> ColumnBlock:
        if block.governor is not self.governor:
            raise WorkloadError(
                "a block must share its store's residency governor")
        if self.blocks and tuple(block.names) != self.names:
            raise WorkloadError(
                f"block columns {sorted(block.names)} do not match the "
                f"store's {sorted(self.names)}")
        if not self.blocks:
            self.names = tuple(block.names)
        self.blocks.append(block)
        self.rows += block.rows
        return block

    def append_arrays(self, arrays: Dict[str, np.ndarray],
                      rows: Optional[int] = None) -> ColumnBlock:
        return self.append_block(ColumnBlock(
            self.governor, arrays=arrays, rows=rows,
            names=tuple(sorted(arrays))))

    def iter_ranges(self) -> Iterator[Tuple[int, int, ColumnBlock]]:
        """Yield ``(start_row, stop_row, block)`` in trace order."""
        start = 0
        for block in self.blocks:
            yield start, start + block.rows, block
            start += block.rows

    def column(self, name: str) -> np.ndarray:
        """The full column, concatenated across blocks (one transient
        array; spilled blocks stream their member without loading the
        rest of their columns)."""
        if name not in self.names:
            raise KeyError(name)
        if len(self.blocks) == 1:
            return self.blocks[0].column(name)
        return np.concatenate([block.column(name)
                               for block in self.blocks])

    @property
    def total_nbytes(self) -> int:
        return sum(block.nbytes for block in self.blocks)

    def stats(self) -> Dict[str, object]:
        resident = sum(1 for block in self.blocks if block.resident)
        return {
            "blocks": len(self.blocks),
            "rows": self.rows,
            "total_bytes": self.total_nbytes,
            "resident_blocks": resident,
            "spilled_blocks": len(self.blocks) - resident,
            **self.governor.stats(),
        }
