"""Samplers for the workload's marginal distributions.

Calibration targets (from the paper):

* batch sizes span 1-900 with most jobs well below the 900 limit (Fig. 11),
  and the mean batch size is around 100 so ~6000 jobs yield ~600k circuits;
* shots are the typical IBM values (1024/2048/4096/8192, capped at 8192);
* circuit widths are NISQ-scale (the vast majority under 10 qubits), which
  combined with the machine fleet gives the utilisation shape of Fig. 8;
* circuit families are the benchmark families of the circuit library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.core.exceptions import WorkloadError
from repro.core.rng import RandomSource


@dataclass(frozen=True)
class BatchSizeSampler:
    """Mixture model for the number of circuits batched into one job."""

    max_batch: int = 900
    #: (probability, low, high) for each mixture component
    components: Tuple[Tuple[float, int, int], ...] = (
        (0.52, 1, 16),      # small exploratory jobs
        (0.30, 16, 200),    # medium parameter sweeps
        (0.18, 200, 900),   # heavily batched production jobs
    )

    def __post_init__(self):
        total = sum(p for p, _, _ in self.components)
        if abs(total - 1.0) > 1e-6:
            raise WorkloadError("batch-size mixture probabilities must sum to 1")

    def sample(self, rng: RandomSource) -> int:
        draw = rng.random()
        cumulative = 0.0
        for probability, low, high in self.components:
            cumulative += probability
            if draw <= cumulative:
                value = int(round(rng.uniform(low, high)))
                return max(1, min(self.max_batch, value))
        return 1


@dataclass(frozen=True)
class ShotsSampler:
    """Categorical sampler over the common shots settings."""

    values: Tuple[int, ...] = (100, 500, 1000, 1024, 2048, 4096, 8192)
    weights: Tuple[float, ...] = (0.02, 0.04, 0.07, 0.20, 0.16, 0.15, 0.36)
    max_shots: int = 8192

    def __post_init__(self):
        if len(self.values) != len(self.weights):
            raise WorkloadError("shots values and weights must align")
        if abs(sum(self.weights) - 1.0) > 1e-6:
            raise WorkloadError("shots weights must sum to 1")

    def sample(self, rng: RandomSource) -> int:
        value = rng.choice(list(self.values), p=list(self.weights))
        return min(int(value), self.max_shots)


@dataclass(frozen=True)
class WidthSampler:
    """Circuit width (qubit count) distribution.

    NISQ workloads are small: ~70 % of circuits use 2-5 qubits, a tail goes
    up to the mid-20s (and occasionally larger on the biggest machines).
    """

    components: Tuple[Tuple[float, int, int], ...] = (
        (0.42, 2, 4),
        (0.33, 4, 6),
        (0.15, 6, 10),
        (0.07, 10, 16),
        (0.03, 16, 27),
    )

    def __post_init__(self):
        total = sum(p for p, _, _ in self.components)
        if abs(total - 1.0) > 1e-6:
            raise WorkloadError("width mixture probabilities must sum to 1")

    def sample(self, rng: RandomSource) -> int:
        draw = rng.random()
        cumulative = 0.0
        for probability, low, high in self.components:
            cumulative += probability
            if draw <= cumulative:
                return max(1, int(round(rng.uniform(low, high))))
        return 2


@dataclass(frozen=True)
class FamilySampler:
    """Benchmark circuit family mix."""

    families: Tuple[str, ...] = ("qft", "ghz", "bv", "qaoa", "vqe", "random")
    weights: Tuple[float, ...] = (0.18, 0.14, 0.12, 0.22, 0.22, 0.12)

    def __post_init__(self):
        if len(self.families) != len(self.weights):
            raise WorkloadError("family names and weights must align")
        if abs(sum(self.weights) - 1.0) > 1e-6:
            raise WorkloadError("family weights must sum to 1")

    def sample(self, rng: RandomSource) -> str:
        return str(rng.choice(list(self.families), p=list(self.weights)))


@dataclass(frozen=True)
class WorkloadDistributions:
    """Bundle of all samplers used by the trace generator."""

    batch_size: BatchSizeSampler = field(default_factory=BatchSizeSampler)
    shots: ShotsSampler = field(default_factory=ShotsSampler)
    width: WidthSampler = field(default_factory=WidthSampler)
    family: FamilySampler = field(default_factory=FamilySampler)
    #: probability a job is submitted through the privileged provider
    privileged_fraction: float = 0.55

    def __post_init__(self):
        if not 0 <= self.privileged_fraction <= 1:
            raise WorkloadError("privileged_fraction must be in [0, 1]")

    def sample_provider(self, rng: RandomSource) -> str:
        if rng.random() < self.privileged_fraction:
            return "academic-hub"
        return "open"
