"""Compile-time model.

Fig. 5 of the paper times individual transpiler passes; Section III-D's
takeaway is that compile time is seconds for today's circuits but scales by
100-1000x toward 1000-qubit circuits, dominated by layout and routing.

The trace generator needs a compile-time estimate for every job without
actually transpiling 600k circuits, so this model provides a closed-form
estimate whose coefficients were fitted against the real transpiler in
:mod:`repro.transpiler` (see ``tests/test_compile_model.py`` which checks
the model stays within an order of magnitude of measured times).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.exceptions import WorkloadError
from repro.core.rng import RandomSource
from repro.workloads.circuit_metrics import CircuitMetrics


@dataclass(frozen=True)
class CompileTimeModel:
    """Analytic per-circuit compile-time estimate (seconds)."""

    #: cost per gate for the linear passes (translation, peephole)
    per_gate_seconds: float = 6.0e-6
    #: routing/layout cost coefficient (scales with width^2 * depth-ish term)
    routing_coefficient: float = 2.5e-7
    #: fixed pass-manager overhead per circuit
    fixed_seconds: float = 1.5e-3
    #: lognormal jitter applied when a random source is supplied
    jitter_sigma: float = 0.25

    def circuit_seconds(self, metrics: CircuitMetrics, machine_qubits: int,
                        rng: Optional[RandomSource] = None) -> float:
        """Compile time of one circuit targeting a machine of given size."""
        if machine_qubits < 1:
            raise WorkloadError("machine_qubits must be positive")
        linear = self.per_gate_seconds * metrics.num_gates
        # Layout/routing explore the device graph: cost grows with both the
        # circuit's two-qubit structure and the machine size.
        routing = self.routing_coefficient * metrics.cx_count * machine_qubits \
            * (1.0 + metrics.width / 16.0)
        total = self.fixed_seconds + linear + routing
        if rng is not None and self.jitter_sigma > 0:
            total *= rng.lognormal(0.0, self.jitter_sigma)
        return total

    def job_seconds(self, metrics: CircuitMetrics, batch_size: int,
                    machine_qubits: int,
                    rng: Optional[RandomSource] = None) -> float:
        """Compile time of a whole job (its circuits compiled one by one)."""
        if batch_size < 1:
            raise WorkloadError("batch_size must be at least 1")
        per_circuit = self.circuit_seconds(metrics, machine_qubits, rng=rng)
        return per_circuit * batch_size
