"""Row-at-a-time reference implementations of the data plane.

Faithful copies of the pre-columnar object-per-row code paths: one
:class:`~repro.cloud.job.CircuitSpec` per circuit during synthesis, a
per-circuit Python loop in the execution-time model, generator-expression
aggregation when recording a trace row, and per-record loops for every
trace-driven figure computation.

They serve two purposes and are not used by the production pipeline:

* the golden-equivalence test (``tests/test_dataplane_golden.py``) proves
  the vectorised data plane is *value-identical* to this reference for the
  same seed, and
* ``benchmarks/bench_dataplane.py`` measures the columnar speedup against
  it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.stats import (
    DistributionSummary,
    linear_fit,
    pearson_correlation,
)
from repro.cloud.job import CircuitSpec, Job
from repro.core.exceptions import AnalysisError
from repro.devices.backend import Backend
from repro.prediction.features import FEATURE_NAMES, feature_vector
from repro.workloads.generator import JobSynthesizer
from repro.workloads.trace import JobRecord

# -- synthesis ------------------------------------------------------------------------


class RowPathSynthesizer(JobSynthesizer):
    """A :class:`JobSynthesizer` with the pre-columnar per-circuit loop.

    Shares the whole synthesis flow (user pick, machine selection, batch
    sampling) with the vectorised synthesiser and overrides only the
    circuit-materialisation hook: one spec object per circuit, including
    the historical quirk of deriving an unused jitter child stream for
    every circuit index >= 16 (derivation is a pure hash, so the random
    streams — and therefore the synthesised values — are identical).
    """

    def _build_circuits(self, rng, family: str, width: int, batch_size: int,
                        base_metrics) -> List[CircuitSpec]:
        circuits: List[CircuitSpec] = []
        for circuit_index in range(batch_size):
            jitter_rng = rng.child("circuit", circuit_index % 16)
            metrics = base_metrics if circuit_index >= 16 else \
                base_metrics.jittered(jitter_rng, relative=0.08)
            circuits.append(CircuitSpec(
                name=f"{family}_{width}_{circuit_index}",
                width=metrics.width,
                depth=metrics.depth,
                num_gates=metrics.num_gates,
                cx_count=metrics.cx_count,
                cx_depth=metrics.cx_depth,
                family=family,
            ))
        return circuits


def record_for_rowpath(job: Job, fleet: Dict[str, Backend]) -> JobRecord:
    """The pre-columnar trace recorder: generator-expression aggregation."""
    backend = fleet[job.backend_name]
    first = job.circuits[0]
    crossed = False
    if job.start_time is not None:
        crossed = backend.calibration_model.crosses_calibration(
            job.submit_time, job.start_time
        )
    mean_depth = int(round(sum(c.depth for c in job.circuits) / job.batch_size))
    mean_gates = int(round(sum(c.num_gates for c in job.circuits)
                           / job.batch_size))
    mean_cx = int(round(sum(c.cx_count for c in job.circuits) / job.batch_size))
    mean_cx_depth = int(round(
        sum(c.cx_depth for c in job.circuits) / job.batch_size
    ))
    return JobRecord(
        job_id=job.job_id,
        provider=job.provider,
        access=backend.access.value,
        machine=job.backend_name,
        machine_qubits=backend.num_qubits,
        month_index=int(job.metadata.get("month_index", 0)),
        batch_size=job.batch_size,
        shots=job.shots,
        circuit_family=first.family,
        circuit_width=first.width,
        circuit_depth=mean_depth,
        circuit_gates=mean_gates,
        circuit_cx=mean_cx,
        circuit_cx_depth=mean_cx_depth,
        memory_slots=first.width,
        submit_time=job.submit_time,
        start_time=job.start_time,
        end_time=job.end_time,
        status=job.status.value,
        queue_seconds=job.queue_seconds,
        run_seconds=job.run_seconds,
        compile_seconds=job.compile_seconds,
        pending_ahead=job.pending_ahead,
        crossed_calibration=crossed,
        user_policy=str(job.metadata.get("user_policy", "unknown")),
    )


# -- analysis -------------------------------------------------------------------------


def summarize_rowpath(values) -> DistributionSummary:
    """The pre-columnar ``summarize``: list filtering plus four separate
    percentile computations (the current one batches them into a single
    partition; the values are identical)."""
    array = np.asarray([v for v in values if v is not None], dtype=float)
    if array.size == 0:
        raise AnalysisError("cannot summarise an empty sample")
    return DistributionSummary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std()),
        minimum=float(array.min()),
        p25=float(np.percentile(array, 25)),
        median=float(np.percentile(array, 50)),
        p75=float(np.percentile(array, 75)),
        p90=float(np.percentile(array, 90)),
        maximum=float(array.max()),
    )


def _batch_bins(max_batch: int = 900, bin_width: int = 100) -> List[Tuple[int, int]]:
    edges = list(range(0, max_batch, bin_width)) + [max_batch]
    return [(edges[i] + 1, edges[i + 1]) for i in range(len(edges) - 1)]


def _group_by_machine(records: Sequence[JobRecord]
                      ) -> Dict[str, List[JobRecord]]:
    groups: Dict[str, List[JobRecord]] = {}
    for record in records:
        groups.setdefault(record.machine, []).append(record)
    return dict(sorted(groups.items()))


def figure_suite_rowpath(records: Sequence[JobRecord],
                         bin_width: int = 100) -> Dict[str, object]:
    """Every trace-driven figure computation as pre-columnar record loops.

    Mirrors :func:`repro.analysis.figures.trace_figure_suite` value for
    value (except that it walks materialised :class:`JobRecord` rows the
    way the analysis layer used to).
    """
    records = list(records)
    if not records:
        raise AnalysisError("trace is empty")
    suite: Dict[str, object] = {}

    # Fig. 2a — cumulative trials by month.
    by_month: Dict[int, List[JobRecord]] = {}
    for record in records:
        by_month.setdefault(record.month_index, []).append(record)
    months = sorted(by_month)
    fig2a = []
    running = 0
    for month in range(months[0], months[-1] + 1):
        subset = by_month.get(month, [])
        trials = sum(r.total_trials for r in subset)
        running += trials
        fig2a.append((month, len(subset), sum(r.batch_size for r in subset),
                      trials, running))
    suite["fig2a"] = fig2a

    # Fig. 2b — status breakdown.
    status_counts: Dict[str, int] = {}
    for record in records:
        status_counts[record.status] = status_counts.get(record.status, 0) + 1
    total = sum(status_counts.values())
    breakdown = {status: 0.0 for status in ("DONE", "ERROR", "CANCELLED")}
    for status, count in status_counts.items():
        breakdown[status] = count / total
    suite["fig2b"] = breakdown

    # Fig. 3 — sorted per-circuit queue minutes + headline report.
    minutes_values: List[float] = []
    for record in records:
        if record.queue_minutes is None:
            continue
        minutes_values.extend([record.queue_minutes] * record.batch_size)
    minutes = np.sort(np.asarray(minutes_values, dtype=float))
    suite["fig3_sorted_minutes"] = minutes
    suite["fig3_report"] = {
        "fraction_under_one_minute": float((minutes < 1.0).mean()),
        "median_minutes": float(np.percentile(minutes, 50)),
        "fraction_over_two_hours": 1.0 - float((minutes < 120.0).mean()),
        "fraction_over_one_day": 1.0 - float((minutes < 1440.0).mean()),
        **{f"queue_{k}": v for k, v in summarize_rowpath(minutes).as_dict().items()},
    }

    # Fig. 4 — sorted queue:run ratios.
    ratios = [r.queue_to_run_ratio for r in records
              if r.queue_to_run_ratio is not None]
    suite["fig4_ratios"] = np.sort(np.asarray(ratios, dtype=float))

    # Fig. 8 — utilisation per machine.
    suite["fig8"] = {
        machine: summarize_rowpath([r.utilization for r in subset]).as_dict()
        for machine, subset in _group_by_machine(records).items()
        if subset
    }

    # Fig. 10 — queue minutes per machine.
    fig10 = {}
    for machine, subset in _group_by_machine(records).items():
        values = [r.queue_minutes for r in subset if r.queue_minutes is not None]
        if values:
            fig10[machine] = summarize_rowpath(values).as_dict()
    suite["fig10"] = fig10

    # Fig. 11 — queue time by batch size (per job and per circuit).
    fig11_per_job = {}
    fig11_per_circuit = {}
    for low, high in _batch_bins(bin_width=bin_width):
        per_job = [r.queue_minutes for r in records
                   if r.queue_minutes is not None
                   and low <= r.batch_size <= high]
        if per_job:
            fig11_per_job[(low, high)] = summarize_rowpath(per_job).as_dict()
        per_circuit = [r.per_circuit_queue_seconds for r in records
                       if r.per_circuit_queue_seconds is not None
                       and low <= r.batch_size <= high]
        if per_circuit:
            fig11_per_circuit[(low, high)] = float(np.median(per_circuit))
    suite["fig11_per_job"] = fig11_per_job
    suite["fig11_per_circuit"] = fig11_per_circuit

    # Fig. 12a — calibration-crossover fraction.
    started = [r for r in records if r.start_time is not None]
    crossed = sum(1 for r in started if r.crossed_calibration)
    suite["fig12a"] = crossed / len(started) if started else 0.0

    # Fig. 13 — run time per machine (per job and per circuit).
    fig13 = {}
    fig13_per_circuit = {}
    for machine, subset in _group_by_machine(records).items():
        per_job = [r.run_minutes for r in subset if r.run_minutes is not None]
        if per_job:
            fig13[machine] = summarize_rowpath(per_job).as_dict()
        per_circuit = [r.per_circuit_run_seconds / 60.0 for r in subset
                       if r.per_circuit_run_seconds is not None]
        if per_circuit:
            fig13_per_circuit[machine] = summarize_rowpath(per_circuit).as_dict()
    suite["fig13"] = fig13
    suite["fig13_per_circuit"] = fig13_per_circuit

    # Fig. 14 — run minutes binned by batch size + linear trend.
    completed = [r for r in records if r.run_minutes is not None]
    fig14_bins = {}
    for low, high in _batch_bins(bin_width=bin_width):
        values = [r.run_minutes for r in completed
                  if low <= r.batch_size <= high]
        if values:
            fig14_bins[(low, high)] = summarize_rowpath(values).as_dict()
    suite["fig14_bins"] = fig14_bins
    batches = [float(r.batch_size) for r in completed]
    run_minutes = [r.run_minutes for r in completed]
    slope, intercept = linear_fit(batches, run_minutes)
    suite["fig14_trend"] = (slope, intercept,
                            pearson_correlation(batches, run_minutes))

    # Fig. 15 — the prediction feature matrix.
    rows: List[List[float]] = []
    targets: List[float] = []
    for record in records:
        if record.run_minutes is None or record.run_minutes <= 0:
            continue
        vector = feature_vector(record)
        rows.append([vector[name] for name in FEATURE_NAMES])
        targets.append(record.run_minutes)
    suite["fig15_features"] = (np.asarray(rows, dtype=float),
                               np.asarray(targets, dtype=float))

    # Access-class profiles (public vs privileged).
    total_circuits = sum(r.batch_size for r in records)
    profiles = {}
    for access in ("public", "privileged"):
        subset = [r for r in records if r.access == access]
        if not subset:
            continue
        queue_minutes = [r.queue_minutes for r in subset
                         if r.queue_minutes is not None]
        run_mins = [r.run_minutes for r in subset if r.run_minutes is not None]
        access_ratios = [r.queue_to_run_ratio for r in subset
                         if r.queue_to_run_ratio is not None]
        started = [r for r in subset if r.start_time is not None]
        crossed = sum(1 for r in started if r.crossed_calibration)
        if not queue_minutes or not run_mins or not access_ratios:
            profiles = None
            break
        queue_summary = summarize_rowpath(queue_minutes)
        profiles[access] = {
            "access": access,
            "jobs": len(subset),
            "job_share": len(subset) / len(records),
            "circuit_share": sum(r.batch_size for r in subset)
            / max(total_circuits, 1),
            "median_queue_minutes": queue_summary.median,
            "p90_queue_minutes": queue_summary.p90,
            "median_run_minutes": summarize_rowpath(run_mins).median,
            "median_queue_to_run_ratio": float(np.median(access_ratios)),
            "crossover_fraction": crossed / len(started) if started else 0.0,
        }
    if profiles:
        suite["access_profiles"] = profiles
    return suite
