"""Executing scenario suites through the sharded study runner.

:class:`ScenarioEngine` expands each scenario against the baseline config
(sweep templates first expand into their concrete grid variants),
fingerprints the expanded config (the *scenario fingerprint* — also the
trace-cache key), deduplicates scenarios that expand to the same study, and
schedules every distinct study onto **one shared worker pool** through
:func:`~repro.runner.executor.run_suite`: synthesis shards and machine-group
simulations of different scenarios interleave on the same workers instead of
each scenario paying its own pool start-up and serialising behind the
previous one.  Per-scenario worker state is keyed by config fingerprint, so
the interleaving cannot change a single byte — a suite run is byte-identical
to running each scenario through its own sequential runner (tested).

Any scenario whose expanded config was already generated — by a previous
suite, by a plain ``run-study``, or by an identical sibling scenario — is
served from the trace cache instead of being re-simulated.  Pass
``suite_scheduling=False`` to fall back to the per-scenario sequential
engine (one transient pool per scenario), which is what the suite
benchmark compares against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.exceptions import ScenarioError
from repro.devices.backend import Backend
from repro.runner.cache import TraceCache, config_fingerprint
from repro.runner.executor import (
    EventCallback,
    ProgressCallback,
    StudyResult,
    StudyRunner,
    run_suite,
)
from repro.runner.pool import SharedWorkerPool
from repro.scenarios.scenario import Scenario
from repro.scenarios.sweep import expand_sweeps
from repro.workloads.generator import TraceGeneratorConfig
from repro.workloads.trace import TraceDataset


@dataclass
class ScenarioRun:
    """One executed scenario: its expansion and the study it produced."""

    scenario: Scenario
    config: TraceGeneratorConfig
    fingerprint: str
    result: StudyResult
    #: name of the sibling scenario this one shared a fingerprint with
    #: (None when the scenario ran — or hit the cache — on its own)
    deduplicated_from: Optional[str] = None

    @property
    def name(self) -> str:
        return self.scenario.name

    @property
    def trace(self) -> TraceDataset:
        return self.result.trace

    @property
    def dataset(self) -> TraceDataset:
        """Alias of ``trace`` matching the :class:`StudyResult` surface."""
        return self.result.dataset

    @property
    def cache_hit(self) -> bool:
        return self.result.cache_hit or self.deduplicated_from is not None

    def build_fleet(self) -> Dict[str, Backend]:
        """The scenario's fleet (outages/drift/backlog knobs applied)."""
        return self.config.build_fleet()

    def summary(self) -> Dict[str, object]:
        return {
            "scenario": self.name,
            "fingerprint": self.fingerprint,
            "jobs": len(self.trace),
            "cache_hit": self.cache_hit,
            **({"deduplicated_from": self.deduplicated_from}
               if self.deduplicated_from else {}),
            **({"replicate_of": self.scenario.replicate_of}
               if self.scenario.replicate_of else {}),
            "seconds": round(self.result.total_seconds, 3),
        }


@dataclass
class ScenarioSuiteResult:
    """All scenario runs of one suite, in execution order."""

    runs: List[ScenarioRun] = field(default_factory=list)
    base_config: Optional[TraceGeneratorConfig] = None
    total_seconds: float = 0.0

    def __iter__(self):
        return iter(self.runs)

    def __len__(self) -> int:
        return len(self.runs)

    def names(self) -> List[str]:
        return [run.name for run in self.runs]

    def run_for(self, name: str) -> ScenarioRun:
        for run in self.runs:
            if run.name == name:
                return run
        raise ScenarioError(
            f"no scenario {name!r} in this suite; ran: {self.names()}")

    @property
    def results(self) -> Dict[str, StudyResult]:
        """Per-scenario :class:`StudyResult` handles, keyed by name — the
        same return surface :func:`~repro.runner.executor.run_study` has,
        so suite and single-study callers consume one shape."""
        return {run.name: run.result for run in self.runs}

    def result_for(self, name: str) -> StudyResult:
        """The :class:`StudyResult` handle of one scenario."""
        return self.run_for(name).result

    def fingerprints(self) -> Dict[str, str]:
        """Scenario name → config fingerprint (trace-cache key)."""
        return {run.name: run.fingerprint for run in self.runs}

    def summary(self) -> Dict[str, object]:
        return {
            "scenarios": [run.summary() for run in self.runs],
            "total_seconds": round(self.total_seconds, 3),
            "cache_hits": sum(1 for run in self.runs if run.cache_hit),
        }


class ScenarioEngine:
    """Expands and executes declarative scenarios over the cloud simulation.

    ``lazy_cache`` defaults to True (comparisons read a handful of columns,
    so cache hits decompress lazily); the plain study runner defaults it to
    False.  Pass a :class:`~repro.runner.pool.SharedWorkerPool` as ``pool``
    to keep one set of workers alive across several ``run()`` calls —
    without one, each suite run creates a transient pool (terminated, not
    joined, if a worker task fails).
    """

    def __init__(
        self,
        base_config: Optional[TraceGeneratorConfig] = None,
        workers: Optional[int] = None,
        num_shards: Optional[int] = None,
        cache: Optional[Union[TraceCache, str, Path]] = None,
        progress: Optional[ProgressCallback] = None,
        lazy_cache: bool = True,
        pool: Optional[SharedWorkerPool] = None,
        suite_scheduling: bool = True,
        on_event: Optional[EventCallback] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        engine: str = "batched",
        transpile_workers: Optional[int] = None,
    ):
        self.base_config = base_config or TraceGeneratorConfig()
        #: simulation core every expanded study runs on ("batched"/"event");
        #: byte-identical traces either way, so not part of cache keys
        self.engine = engine
        #: transpile-shard count for rank-mode scenarios (None = pool width);
        #: a runtime knob only — traces are identical for any value
        self.transpile_workers = transpile_workers
        self.workers = workers
        self.num_shards = num_shards
        if cache is not None and not isinstance(cache, TraceCache):
            cache = TraceCache(cache)
        self.cache = cache
        self.lazy_cache = lazy_cache
        self.pool = pool
        self.suite_scheduling = suite_scheduling
        self._progress = progress or (lambda message: None)
        #: structured progress events (shards done/total + ETA) forwarded
        #: to run_suite; the gateway streams these over NDJSON and the CLI
        #: prints them under --progress
        self._on_event = on_event
        #: polled between studies by run_suite; True cancels the suite run
        self._should_stop = should_stop

    def expand(self, scenario: Scenario) -> TraceGeneratorConfig:
        """The concrete study config a scenario runs as."""
        return scenario.apply_to(self.base_config)

    def fingerprint(self, scenario: Scenario) -> str:
        """The scenario's trace-cache key (its content fingerprint)."""
        return config_fingerprint(self.expand(scenario))

    def _expansions(self, scenarios: Sequence[Scenario]
                    ) -> List[Tuple[Scenario, TraceGeneratorConfig, str]]:
        """Sweep-expand, validate names, and fingerprint every scenario."""
        if not scenarios:
            raise ScenarioError("no scenarios to run")
        scenarios = expand_sweeps(scenarios)
        names = [scenario.name for scenario in scenarios]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ScenarioError(
                f"duplicate scenario names {sorted(duplicates)}")
        return [(scenario, config, config_fingerprint(config))
                for scenario in scenarios
                for config in (self.expand(scenario),)]

    def run(self, scenarios: Sequence[Scenario],
            use_cache: bool = True) -> ScenarioSuiteResult:
        """Execute every scenario; identical expansions run once.

        Sweep templates are expanded into their grid variants first, so the
        returned suite holds one run per concrete variant.
        """
        started = time.perf_counter()
        expansions = self._expansions(scenarios)
        suite = ScenarioSuiteResult(base_config=self.base_config)
        if self.suite_scheduling:
            self._run_shared(expansions, suite, use_cache)
        else:
            self._run_sequential(expansions, suite, use_cache)
        suite.total_seconds = time.perf_counter() - started
        return suite

    # -- the one-pool suite scheduler --------------------------------------------------

    def _run_shared(self, expansions, suite: ScenarioSuiteResult,
                    use_cache: bool) -> None:
        distinct: Dict[str, TraceGeneratorConfig] = {}
        first_names: Dict[str, str] = {}
        for scenario, config, key in expansions:
            if key not in distinct:
                distinct[key] = config
                first_names[key] = scenario.name
            else:
                self._progress(
                    f"scenario {scenario.name!r} expands to the same study "
                    f"as {first_names[key]!r}; sharing its trace")
        self._progress(
            f"scheduling {len(distinct)} distinct studies "
            f"({len(expansions)} scenarios) on one shared pool")

        pool = self.pool
        owned = pool is None
        if owned:
            pool = SharedWorkerPool(self.workers)
        try:
            results = run_suite(
                list(distinct.items()), pool,
                num_shards=self.num_shards,
                cache=self.cache,
                use_cache=use_cache,
                lazy_cache=self.lazy_cache,
                progress=self._progress,
                on_event=self._on_event,
                should_stop=self._should_stop,
                engine=self.engine,
                transpile_workers=self.transpile_workers,
            )
        except BaseException:
            if owned:
                pool.terminate()
            raise
        else:
            if owned:
                pool.close()

        for scenario, config, key in expansions:
            deduplicated_from = None
            if first_names[key] != scenario.name:
                deduplicated_from = first_names[key]
            suite.runs.append(ScenarioRun(
                scenario=scenario, config=config, fingerprint=key,
                result=results[key], deduplicated_from=deduplicated_from))

    # -- the per-scenario sequential engine --------------------------------------------

    def _run_sequential(self, expansions, suite: ScenarioSuiteResult,
                        use_cache: bool) -> None:
        executed: Dict[str, Tuple[str, StudyResult]] = {}
        for scenario, config, key in expansions:
            previous = executed.get(key)
            if previous is not None:
                first_name, result = previous
                self._progress(
                    f"scenario {scenario.name!r} expands to the same study "
                    f"as {first_name!r}; sharing its trace")
                suite.runs.append(ScenarioRun(
                    scenario=scenario, config=config, fingerprint=key,
                    result=result, deduplicated_from=first_name))
                continue
            self._progress(
                f"running scenario {scenario.name!r} ({scenario.describe()})")
            runner = StudyRunner(
                config,
                workers=self.workers,
                num_shards=self.num_shards,
                cache=self.cache,
                progress=self._progress,
                lazy_cache=self.lazy_cache,
                # Honour an engine-supplied shared pool even in sequential
                # mode (scenarios still run one after another, but on the
                # caller's workers instead of a transient pool each).
                pool=self.pool,
                on_event=self._on_event,
                engine=self.engine,
                transpile_workers=self.transpile_workers,
            )
            result = runner.run(use_cache=use_cache)
            self._progress(
                f"scenario {scenario.name!r}: {len(result.trace)} jobs in "
                f"{result.total_seconds:.1f}s"
                + (" (cache hit)" if result.cache_hit else ""))
            executed[key] = (scenario.name, result)
            suite.runs.append(ScenarioRun(
                scenario=scenario, config=config, fingerprint=key,
                result=result))


def run_scenarios(
    scenarios: Sequence[Scenario],
    base_config: Optional[TraceGeneratorConfig] = None,
    *,
    workers: Optional[int] = None,
    num_shards: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    progress: Optional[ProgressCallback] = None,
    use_cache: bool = True,
    lazy_cache: bool = True,
    pool: Optional[SharedWorkerPool] = None,
    suite_scheduling: bool = True,
    on_event: Optional[EventCallback] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    engine: str = "batched",
    transpile_workers: Optional[int] = None,
) -> ScenarioSuiteResult:
    """One-call entry point: run a scenario suite through the shared pool.

    ``lazy_cache`` defaults to True here (matching :class:`ScenarioEngine`:
    comparisons touch few columns, so cache hits load lazily) and is
    threaded through to the engine — unlike
    :func:`~repro.runner.executor.run_study`, whose default is False
    because a plain study usually consumes the whole trace.
    """
    scenario_engine = ScenarioEngine(
        base_config,
        workers=workers,
        num_shards=num_shards,
        cache=cache_dir,
        progress=progress,
        lazy_cache=lazy_cache,
        pool=pool,
        suite_scheduling=suite_scheduling,
        on_event=on_event,
        should_stop=should_stop,
        engine=engine,
        transpile_workers=transpile_workers,
    )
    return scenario_engine.run(scenarios, use_cache=use_cache)
