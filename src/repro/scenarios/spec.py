"""Loading scenario suites from TOML/JSON spec files.

A spec file declares an optional ``[study]`` table overriding the baseline
config knobs, plus a list of scenarios, each with a list of perturbations
(``kind`` selects the perturbation type; the remaining keys are its fields).

TOML::

    [study]
    total_jobs = 1200
    months = 12
    seed = 7

    [[scenarios]]
    name = "surge"
    description = "50% more demand in the last third"

    [[scenarios.perturbations]]
    kind = "demand_surge"
    scale = 1.5
    start_month = 8

Any perturbation field can declare a **sweep axis** instead of a single
value — an inline table ``{sweep = [..]}`` (TOML) / ``{"sweep": [..]}``
(JSON)::

    [[scenarios.perturbations]]
    kind = "backlog_shift"
    scale = { sweep = [1.0, 2.0, 4.0, 8.0] }

The scenario then stands for its whole grid: the engine (or
:func:`repro.scenarios.sweep.expand_sweeps`) expands the cartesian product
of every axis into named variants (``name@scale=2`` ...) before anything
runs.  A scenario may also set ``seed`` (a deterministic re-roll) and
``replicate_of`` (grouping hand-written re-rolls for mean ± CI aggregation
in the comparison; ``--replicates`` generates both automatically).

JSON carries the same structure as an object with ``study`` and
``scenarios`` keys.  TOML parsing uses the standard-library ``tomllib``
(Python 3.11+) with a ``tomli`` fallback; on interpreters with neither, TOML
specs raise a clear error and JSON specs keep working.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.exceptions import ScenarioError
from repro.scenarios.perturbations import perturbation_from_dict
from repro.scenarios.scenario import Scenario
from repro.workloads.generator import TraceGeneratorConfig

#: ``[study]`` keys that map straight onto TraceGeneratorConfig fields.
_STUDY_FIELDS = ("total_jobs", "months", "growth_ratio", "seed",
                 "include_simulator")


@dataclass
class ScenarioSuiteSpec:
    """A parsed spec file: baseline overrides plus the scenario list."""

    scenarios: List[Scenario] = field(default_factory=list)
    study_overrides: Dict[str, object] = field(default_factory=dict)
    source: Optional[Path] = None

    def base_config(self, default: Optional[TraceGeneratorConfig] = None
                    ) -> TraceGeneratorConfig:
        """The baseline config, applying the spec's ``[study]`` overrides."""
        config = default if default is not None else TraceGeneratorConfig()
        if not self.study_overrides:
            return config
        return replace(config, **self.study_overrides)

    def catalog(self) -> Dict[str, Scenario]:
        return {scenario.name: scenario for scenario in self.scenarios}


def _load_toml(path: Path) -> Dict[str, object]:
    try:
        import tomllib  # Python 3.11+
    except ImportError:  # pragma: no cover - depends on interpreter
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            raise ScenarioError(
                f"cannot read TOML spec {path}: this interpreter has "
                f"neither tomllib (Python 3.11+) nor tomli; rewrite the "
                f"spec as JSON instead") from None
    with open(path, "rb") as handle:
        try:
            return tomllib.load(handle)
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(f"invalid TOML in {path}: {exc}") from exc


def _parse_scenario(payload: Dict[str, object], path: Path) -> Scenario:
    if not isinstance(payload, dict):
        raise ScenarioError(f"scenario entries in {path} must be tables")
    name = payload.get("name")
    if not name or not isinstance(name, str):
        raise ScenarioError(f"every scenario in {path} needs a 'name'")
    known = {f.name for f in fields(Scenario)}
    unknown = set(payload) - known
    if unknown:
        raise ScenarioError(
            f"scenario {name!r} in {path} has unknown keys "
            f"{sorted(unknown)}")
    perturbations = payload.get("perturbations", [])
    if not isinstance(perturbations, list):
        raise ScenarioError(
            f"scenario {name!r} in {path}: 'perturbations' must be a list")
    seed = payload.get("seed")
    replicate_of = payload.get("replicate_of")
    return Scenario(
        name=name,
        description=str(payload.get("description", "")),
        perturbations=tuple(perturbation_from_dict(entry)
                            for entry in perturbations),
        seed=None if seed is None else int(seed),  # type: ignore[arg-type]
        replicate_of=None if replicate_of is None else str(replicate_of),
    )


def parse_suite(payload: Dict[str, object],
                source: Optional[Path] = None) -> ScenarioSuiteSpec:
    """Build a suite spec from an already-parsed TOML/JSON document."""
    path = source or Path("<spec>")
    if not isinstance(payload, dict):
        raise ScenarioError(f"spec {path} must be a table/object at top level")
    unknown = set(payload) - {"study", "scenarios"}
    if unknown:
        raise ScenarioError(
            f"spec {path} has unknown top-level keys {sorted(unknown)}")
    study = payload.get("study", {})
    if not isinstance(study, dict):
        raise ScenarioError(f"[study] in {path} must be a table")
    bad = set(study) - set(_STUDY_FIELDS)
    if bad:
        raise ScenarioError(
            f"[study] in {path} has unknown keys {sorted(bad)}; "
            f"supported: {list(_STUDY_FIELDS)}")
    entries = payload.get("scenarios", [])
    if not isinstance(entries, list) or not entries:
        raise ScenarioError(f"spec {path} declares no scenarios")
    scenarios = [_parse_scenario(entry, path) for entry in entries]
    names = [scenario.name for scenario in scenarios]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise ScenarioError(
            f"spec {path} has duplicate scenario names {sorted(duplicates)}")
    return ScenarioSuiteSpec(scenarios=scenarios,
                             study_overrides=dict(study), source=source)


def read_spec_payload(path: Union[str, Path]) -> Dict[str, object]:
    """The raw (unvalidated) document of a ``.toml``/``.json`` spec file.

    This is the JSON-serialisable payload the study-service gateway
    accepts as a submission's ``suite`` value — the client reads a spec
    file with this and ships it over the wire, where
    :func:`parse_suite` validates it exactly like the batch CLI would.
    """
    path = Path(path)
    if not path.is_file():
        raise ScenarioError(f"scenario spec {path} does not exist")
    suffix = path.suffix.lower()
    if suffix == ".toml":
        return _load_toml(path)
    if suffix == ".json":
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid JSON in {path}: {exc}") from exc
    raise ScenarioError(
        f"unsupported spec format {suffix!r} for {path}; "
        f"use .toml or .json")


def load_suite(path: Union[str, Path]) -> ScenarioSuiteSpec:
    """Load a scenario suite spec from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    return parse_suite(read_spec_payload(path), source=path)
