"""Declarative what-if scenarios over the cloud simulation.

The paper's recommendations — fidelity/queue trade-offs, calibration-aware
scheduling, machine selection — are counterfactual claims: they can only be
evaluated by re-running the fleet under perturbed conditions.  This package
turns the sharded study runner into a comparative-experimentation platform:

* :mod:`repro.scenarios.perturbations` — composable deviations from the
  baseline (demand surges, outages, fleet changes, calibration drift,
  backlog regime shifts, failure rates, policy swaps).
* :mod:`repro.scenarios.scenario` — named, seedable scenarios and the
  built-in catalog (:func:`builtin_scenarios`).
* :mod:`repro.scenarios.spec` — TOML/JSON scenario-suite spec files.
* :mod:`repro.scenarios.engine` — expansion + execution through the sharded
  runner with fingerprint-keyed cache reuse and deduplication.

Comparative analysis of the resulting traces lives in
:mod:`repro.analysis.compare`; ``python -m repro run-scenarios`` /
``compare-scenarios`` is the command-line entry point.
"""

from repro.scenarios.engine import (
    ScenarioEngine,
    ScenarioRun,
    ScenarioSuiteResult,
    run_scenarios,
)
from repro.scenarios.perturbations import (
    BacklogShift,
    CalibrationDrift,
    DemandSurge,
    FailureRates,
    FleetChange,
    MachineOutage,
    Perturbation,
    PolicySwap,
    perturbation_from_dict,
)
from repro.scenarios.scenario import (
    Scenario,
    builtin_scenarios,
    resolve_scenarios,
)
from repro.scenarios.spec import ScenarioSuiteSpec, load_suite, parse_suite

__all__ = [
    "BacklogShift",
    "CalibrationDrift",
    "DemandSurge",
    "FailureRates",
    "FleetChange",
    "MachineOutage",
    "Perturbation",
    "PolicySwap",
    "Scenario",
    "ScenarioEngine",
    "ScenarioRun",
    "ScenarioSuiteResult",
    "ScenarioSuiteSpec",
    "builtin_scenarios",
    "load_suite",
    "parse_suite",
    "perturbation_from_dict",
    "resolve_scenarios",
    "run_scenarios",
]
