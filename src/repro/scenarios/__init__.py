"""Declarative what-if scenarios over the cloud simulation.

The paper's recommendations — fidelity/queue trade-offs, calibration-aware
scheduling, machine selection — are counterfactual claims: they can only be
evaluated by re-running the fleet under perturbed conditions.  This package
turns the sharded study runner into a comparative-experimentation platform:

* :mod:`repro.scenarios.perturbations` — composable deviations from the
  baseline (demand surges, outages, fleet changes, calibration drift,
  backlog regime shifts, failure rates, policy swaps).
* :mod:`repro.scenarios.scenario` — named, seedable scenarios, the built-in
  catalog (:func:`builtin_scenarios`) and seed replicates
  (:func:`replicate_scenarios`, aggregated into mean ± CI downstream).
* :mod:`repro.scenarios.sweep` — parameter grids over perturbation fields,
  expanded into named scenario variants (:func:`expand_sweeps`).
* :mod:`repro.scenarios.spec` — TOML/JSON scenario-suite spec files
  (including ``{sweep = [...]}`` axis declarations).
* :mod:`repro.scenarios.engine` — expansion + execution of the whole suite
  on one shared worker pool with fingerprint-keyed cache reuse and
  deduplication.

Comparative analysis of the resulting traces lives in
:mod:`repro.analysis.compare`; ``python -m repro run-scenarios`` /
``compare-scenarios`` is the command-line entry point.
"""

from repro.scenarios.engine import (
    ScenarioEngine,
    ScenarioRun,
    ScenarioSuiteResult,
    run_scenarios,
)
from repro.scenarios.perturbations import (
    BacklogShift,
    CalibrationDrift,
    DemandSurge,
    FailureRates,
    FleetChange,
    MachineOutage,
    Perturbation,
    PolicySwap,
    SweepValues,
    perturbation_from_dict,
)
from repro.scenarios.scenario import (
    Scenario,
    builtin_scenarios,
    replicate_scenarios,
    replicate_seed,
    resolve_scenarios,
)
from repro.scenarios.spec import (
    ScenarioSuiteSpec,
    load_suite,
    parse_suite,
    read_spec_payload,
)
from repro.scenarios.sweep import (
    expand_sweep,
    expand_sweeps,
    parse_sweep_flag,
    sweep_axes,
    sweep_from_flags,
)

__all__ = [
    "BacklogShift",
    "CalibrationDrift",
    "DemandSurge",
    "FailureRates",
    "FleetChange",
    "MachineOutage",
    "Perturbation",
    "PolicySwap",
    "Scenario",
    "ScenarioEngine",
    "ScenarioRun",
    "ScenarioSuiteResult",
    "ScenarioSuiteSpec",
    "SweepValues",
    "builtin_scenarios",
    "expand_sweep",
    "expand_sweeps",
    "load_suite",
    "parse_suite",
    "parse_sweep_flag",
    "perturbation_from_dict",
    "read_spec_payload",
    "replicate_scenarios",
    "replicate_seed",
    "resolve_scenarios",
    "run_scenarios",
    "sweep_axes",
    "sweep_from_flags",
]
