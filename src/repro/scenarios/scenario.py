"""Named scenarios and the built-in scenario catalog.

A :class:`Scenario` is a named, seedable, ordered composition of
perturbations.  Expanding it against a baseline
:class:`~repro.workloads.generator.TraceGeneratorConfig` produces the
concrete config the sharded runner executes; the expansion is pure, so the
same scenario against the same baseline always lands on the same trace-cache
fingerprint.

:func:`builtin_scenarios` is the catalog of what-if studies the paper's
recommendations call for: demand surges and lulls, machine outages and fleet
expansion, calibration-drift regimes, backlog crunches, failure waves and
machine-selection policy swaps.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.exceptions import ScenarioError
from repro.core.rng import derive_seed
from repro.scenarios.perturbations import (
    BacklogShift,
    CalibrationDrift,
    DemandSurge,
    FailureRates,
    FleetChange,
    MachineOutage,
    Perturbation,
    PolicySwap,
)
from repro.workloads.generator import TraceGeneratorConfig


@dataclass(frozen=True)
class Scenario:
    """A named what-if study: perturbations on top of the baseline config."""

    name: str
    description: str = ""
    perturbations: Tuple[Perturbation, ...] = ()
    #: optional root-seed override (a seedable re-roll of the same scenario)
    seed: Optional[int] = None
    #: base-scenario name this one is a seed re-roll of; replicates of one
    #: scenario aggregate (mean ± CI) in the comparison instead of standing
    #: as independent rows
    replicate_of: Optional[str] = None

    def __post_init__(self):
        if not self.name:
            raise ScenarioError("a scenario needs a non-empty name")

    @property
    def is_baseline(self) -> bool:
        return not self.perturbations and self.seed is None

    @property
    def has_sweep(self) -> bool:
        """True when any perturbation field is a declared sweep axis."""
        return any(p.sweep_fields() for p in self.perturbations)

    def apply_to(self, config: TraceGeneratorConfig) -> TraceGeneratorConfig:
        """Expand the scenario into a concrete study config."""
        if self.has_sweep:
            raise ScenarioError(
                f"scenario {self.name!r} declares sweep axes; expand it "
                f"with repro.scenarios.expand_sweeps before running")
        expanded = config
        if self.seed is not None:
            expanded = replace(expanded, seed=int(self.seed))
        for perturbation in self.perturbations:
            expanded = perturbation.apply(expanded)
        return expanded

    def describe(self) -> str:
        if not self.perturbations:
            return self.description or "the unperturbed baseline study"
        details = "; ".join(p.describe() for p in self.perturbations)
        if self.description:
            return f"{self.description} ({details})"
        return details


def builtin_scenarios() -> Dict[str, Scenario]:
    """The built-in what-if catalog, keyed by scenario name.

    Month numbers reference the 28-month study window (month 0 = January
    2019); reduced-scale runs clip windows that fall outside the configured
    number of months.
    """
    scenarios = [
        Scenario(
            "baseline",
            description="the unperturbed study (reference for every delta)",
        ),
        Scenario(
            "demand-surge",
            description="a sustained 60% arrival surge over the second half",
            perturbations=(DemandSurge(scale=1.6, start_month=14),),
        ),
        Scenario(
            "demand-lull",
            description="demand drops to 70% fleet-wide",
            perturbations=(DemandSurge(scale=0.7),),
        ),
        Scenario(
            "machine-outage",
            description="ibmqx2 (the busiest early 5-qubit machine) goes "
                        "down for five months",
            perturbations=(MachineOutage("ibmqx2", first_month=2,
                                         last_month=6),),
        ),
        Scenario(
            "fleet-expansion",
            description="the late large machines come online a year early",
            perturbations=(FleetChange(bring_online=(
                ("ibmq_manhattan", 8), ("ibmq_toronto", 6),
                ("ibmq_santiago", 6))),),
        ),
        Scenario(
            "calibration-drift",
            description="calibration degrades 3x faster between "
                        "recalibrations",
            perturbations=(CalibrationDrift(scale=3.0),),
        ),
        Scenario(
            "backlog-crunch",
            description="the rest of the world queues 2.5x the work",
            perturbations=(BacklogShift(scale=2.5),),
        ),
        Scenario(
            "failure-wave",
            description="error and cancellation rates triple",
            perturbations=(FailureRates(error_probability=0.105,
                                        cancel_probability=0.054),),
        ),
        Scenario(
            "policy-swap",
            description="every user adopts the balanced fidelity/queue "
                        "selection objective (recommendation V-E.3)",
            perturbations=(PolicySwap(policy="balanced"),),
        ),
        Scenario(
            "queue-chasers",
            description="every user chases the shortest expected queue",
            perturbations=(PolicySwap(policy="queue"),),
        ),
        Scenario(
            "policy-rank",
            description="every user ranks machines by level-3 transpiled "
                        "success probability traded against queue "
                        "(recommendations IV-D.1 + V-E.3)",
            perturbations=(PolicySwap(policy="balanced", mode="rank"),),
        ),
        Scenario(
            "fidelity-rank",
            description="every user chases the best transpiled fidelity, "
                        "queues be damned",
            perturbations=(PolicySwap(policy="fidelity", mode="rank"),),
        ),
    ]
    return {scenario.name: scenario for scenario in scenarios}


def replicate_seed(base_seed: int, replicate_index: int) -> int:
    """The deterministic root seed of one scenario seed re-roll."""
    return derive_seed(base_seed, "scenario-replicate", replicate_index)


def replicate_scenarios(scenarios: Iterable[Scenario], replicates: int,
                        base_seed: int = 7) -> List[Scenario]:
    """Expand each scenario into ``replicates`` seed re-rolls.

    The first replicate is the scenario itself (its own seed untouched, so
    its fingerprint — and any cached trace — is exactly the single-run
    one); re-roll ``k`` overrides the root seed with a deterministic
    derivation from the scenario's effective seed and ``k``, and is named
    ``name#rk`` with :attr:`Scenario.replicate_of` pointing back at the
    base so the comparison aggregates the group into mean ± CI.  Distinct
    seeds mean distinct config fingerprints: replicates are genuinely
    re-simulated, never deduplicated against each other.
    """
    if replicates < 1:
        raise ScenarioError("replicates must be at least 1")
    if replicates == 1:
        return list(scenarios)
    expanded: List[Scenario] = []
    for scenario in scenarios:
        effective = scenario.seed if scenario.seed is not None else base_seed
        expanded.append(scenario)
        expanded.extend(
            replace(
                scenario,
                name=f"{scenario.name}#r{index}",
                seed=replicate_seed(int(effective), index),
                replicate_of=scenario.name,
            )
            for index in range(1, replicates)
        )
    return expanded


def resolve_scenarios(names: Optional[Tuple[str, ...]] = None,
                      catalog: Optional[Dict[str, Scenario]] = None,
                      ) -> Tuple[Scenario, ...]:
    """Select scenarios by name (all of the catalog when ``names`` is None)."""
    catalog = catalog if catalog is not None else builtin_scenarios()
    if names is None:
        return tuple(catalog.values())
    selected = []
    for name in names:
        try:
            selected.append(catalog[name])
        except KeyError:
            raise ScenarioError(
                f"unknown scenario {name!r}; available: "
                f"{sorted(catalog)}") from None
    return tuple(selected)
