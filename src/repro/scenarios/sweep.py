"""Scenario sweeps: grids over perturbation parameters.

A sweep declares one or more *axes* — perturbation fields carrying
:class:`~repro.scenarios.perturbations.SweepValues` instead of a single
value — and expands into the cartesian product of named scenario variants.
``backlog_scale in {1, 2, 4, 8}`` therefore becomes four concrete
scenarios, each executed (and cached) like any other, and the suite
scheduler interleaves them all on one shared worker pool.

Three ways to declare an axis:

* **Python** — ``BacklogShift(scale=SweepValues(1, 2, 4, 8))`` inside a
  scenario's perturbations, then :func:`expand_sweeps`.
* **Spec files** — ``scale = {sweep = [1, 2, 4, 8]}`` (TOML) or
  ``"scale": {"sweep": [1, 2, 4, 8]}`` (JSON) on any perturbation field.
* **CLI** — repeated ``--sweep kind.field=v1,v2,...`` flags; each flag is
  one axis and multiple flags form the grid (:func:`sweep_from_flags`).

Variant names are ``base@field=value`` (multi-axis variants join their
``field=value`` labels with commas), so sweep output stays greppable in
comparison tables and cache directories alike.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Iterable, List, Sequence, Tuple

from repro.core.exceptions import ScenarioError
from repro.scenarios.perturbations import (
    PERTURBATION_KINDS,
    SweepValues,
)
from repro.scenarios.scenario import Scenario

#: One sweep axis: (perturbation index, field name, display label, values).
SweepAxis = Tuple[int, str, str, Tuple[object, ...]]


def sweep_axes(scenario: Scenario) -> List[SweepAxis]:
    """The declared sweep axes of a scenario, in perturbation order."""
    axes: List[SweepAxis] = []
    field_counts: dict = {}
    for perturbation in scenario.perturbations:
        for name in perturbation.sweep_fields():
            field_counts[name] = field_counts.get(name, 0) + 1
    for index, perturbation in enumerate(scenario.perturbations):
        for name in perturbation.sweep_fields():
            # Disambiguate the label with the perturbation kind when two
            # axes sweep the same field name.
            label = name if field_counts[name] == 1 \
                else f"{perturbation.kind}.{name}"
            values = getattr(perturbation, name).values
            axes.append((index, name, label, values))
    return axes


def _format_sweep_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def expand_sweep(scenario: Scenario) -> List[Scenario]:
    """Expand one scenario's sweep axes into its concrete variants.

    A scenario without sweep axes expands to itself.  Variants keep the
    base description (each one's :meth:`~Scenario.describe` already names
    its concrete parameter values through the perturbations).
    """
    axes = sweep_axes(scenario)
    if not axes:
        return [scenario]
    variants: List[Scenario] = []
    for combo in itertools.product(*(values for *_, values in axes)):
        perturbations = list(scenario.perturbations)
        labels = []
        for (index, field_name, label, _), value in zip(axes, combo):
            perturbations[index] = replace(
                perturbations[index], **{field_name: value})
            labels.append(f"{label}={_format_sweep_value(value)}")
        suffix = ",".join(labels)
        # A replicate of a sweep template must group under the matching
        # *variant* of its base scenario, not the unexpanded template —
        # otherwise re-rolls of different grid points would aggregate into
        # one meaningless replicate group.
        replicate_of = None if scenario.replicate_of is None \
            else f"{scenario.replicate_of}@{suffix}"
        variants.append(replace(
            scenario,
            name=f"{scenario.name}@{suffix}",
            perturbations=tuple(perturbations),
            replicate_of=replicate_of,
        ))
    return variants


def expand_sweeps(scenarios: Iterable[Scenario]) -> List[Scenario]:
    """Expand every sweep in a scenario list, preserving order."""
    expanded: List[Scenario] = []
    for scenario in scenarios:
        expanded.extend(expand_sweep(scenario))
    return expanded


def _parse_scalar(text: str) -> object:
    for parser in (int, float):
        try:
            return parser(text)
        except ValueError:
            continue
    return text


def parse_sweep_flag(flag: str) -> Tuple[str, str, Tuple[object, ...]]:
    """Parse one ``kind.field=v1,v2,...`` CLI axis declaration."""
    head, separator, tail = flag.partition("=")
    kind, dot, field_name = head.partition(".")
    values = tuple(_parse_scalar(part.strip())
                   for part in tail.split(",") if part.strip())
    if not separator or not dot or not kind or not field_name or not values:
        raise ScenarioError(
            f"invalid sweep {flag!r}; expected kind.field=v1,v2,... "
            f"(e.g. backlog_shift.scale=1,2,4,8)")
    if kind not in PERTURBATION_KINDS:
        raise ScenarioError(
            f"unknown perturbation kind {kind!r} in sweep {flag!r}; known "
            f"kinds: {sorted(PERTURBATION_KINDS)}")
    return kind, field_name, values


def sweep_from_flags(flags: Sequence[str], name: str = "sweep",
                     description: str = "") -> Scenario:
    """Build one sweep-template scenario from CLI ``--sweep`` flags.

    Each flag contributes one perturbation with one swept field; the
    expansion of the returned scenario is the cartesian grid across every
    flag.  Field names are validated by the perturbation's own
    ``from_dict`` (unknown fields raise the usual spec error).
    """
    if not flags:
        raise ScenarioError("no sweep axes given")
    perturbations = []
    for flag in flags:
        kind, field_name, values = parse_sweep_flag(flag)
        perturbations.append(PERTURBATION_KINDS[kind](
            {"kind": kind, field_name: SweepValues(*values)}))
    return Scenario(
        name=name,
        description=description or "parameter grid from --sweep flags",
        perturbations=tuple(perturbations),
    )
