"""Composable what-if perturbations.

Each perturbation is a small declarative object describing one deviation
from the baseline study — a demand surge, a machine outage, a calibration
regime, a policy swap.  Applying a perturbation folds it into the
:class:`~repro.workloads.generator.ScenarioKnobs` of a
:class:`~repro.workloads.generator.TraceGeneratorConfig`; perturbations
compose because each one only touches its own knobs.

Perturbations can be built in Python or parsed from spec dictionaries
(:func:`perturbation_from_dict`, used by the TOML/JSON spec loader).

Any scalar perturbation field can carry :class:`SweepValues` — a declared
grid axis instead of a single value.  In spec files the same axis is written
as ``{sweep = [..]}`` (TOML inline table) / ``{"sweep": [..]}`` (JSON);
:mod:`repro.scenarios.sweep` expands the cartesian product into named
scenario variants before anything executes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Callable, Dict, Optional, Tuple

from repro.core.exceptions import ScenarioError
from repro.devices.catalog import MACHINE_NAMES, MACHINE_SPECS
from repro.scheduling.policies import SelectionObjective
from repro.workloads.generator import ScenarioKnobs, TraceGeneratorConfig
from repro.workloads.users import MachineSelectionPolicy

#: Mapping from scheduling-layer objectives to the trace-level user policy
#: that implements the same trade-off in the synthesis loop.
OBJECTIVE_POLICIES: Dict[str, str] = {
    SelectionObjective.FIDELITY.value: MachineSelectionPolicy.BEST_FIDELITY.value,
    SelectionObjective.QUEUE.value: MachineSelectionPolicy.LEAST_QUEUE.value,
    SelectionObjective.BALANCED.value: MachineSelectionPolicy.BALANCED.value,
}


def _knobs_of(config: TraceGeneratorConfig) -> ScenarioKnobs:
    return config.scenario if config.scenario is not None else ScenarioKnobs()


def _with_knobs(config: TraceGeneratorConfig,
                knobs: ScenarioKnobs) -> TraceGeneratorConfig:
    return replace(config, scenario=None if knobs.is_neutral() else knobs)


def _check_machine(name: str) -> str:
    if name not in MACHINE_SPECS:
        raise ScenarioError(
            f"unknown machine {name!r}; known machines: {MACHINE_NAMES}")
    return name


@dataclass(frozen=True)
class SweepValues:
    """A sweep axis: the grid of values one perturbation field runs through.

    A perturbation holding a ``SweepValues`` field is a *template* — it
    cannot be applied directly (expansion replaces the axis with each
    concrete value first, see :func:`repro.scenarios.sweep.expand_sweeps`).
    """

    values: Tuple[object, ...]

    def __init__(self, *values: object):
        if len(values) == 1 and isinstance(values[0], (list, tuple)):
            values = tuple(values[0])
        if not values:
            raise ScenarioError("a sweep needs at least one value")
        object.__setattr__(self, "values", tuple(values))

    def __repr__(self) -> str:
        return f"SweepValues{self.values!r}"


def _unsweep(payload: Dict[str, object]) -> Dict[str, object]:
    """Convert spec-file ``{"sweep": [...]}`` field values to SweepValues."""
    converted = dict(payload)
    for field_name, value in payload.items():
        if (isinstance(value, dict) and set(value) == {"sweep"}
                and field_name != "kind"):
            values = value["sweep"]
            if not isinstance(values, (list, tuple)) or not values:
                raise ScenarioError(
                    f"sweep for field {field_name!r} must be a non-empty "
                    f"list of values")
            converted[field_name] = SweepValues(*values)
    return converted


@dataclass(frozen=True)
class Perturbation:
    """Base class: one composable deviation from the baseline study."""

    #: spec-file identifier of the perturbation (overridden per subclass)
    kind = "perturbation"

    def apply(self, config: TraceGeneratorConfig) -> TraceGeneratorConfig:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def sweep_fields(self) -> Tuple[str, ...]:
        """Names of the fields declared as sweep axes (empty = concrete)."""
        return tuple(f.name for f in fields(self)
                     if isinstance(getattr(self, f.name), SweepValues))

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Perturbation":
        payload = _unsweep(payload)
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known - {"kind"}
        if unknown:
            raise ScenarioError(
                f"unknown {cls.kind!r} fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}")
        try:
            return cls(**{k: v for k, v in payload.items() if k != "kind"})
        except TypeError as exc:
            raise ScenarioError(f"invalid {cls.kind!r} spec: {exc}") from exc


@dataclass(frozen=True)
class DemandSurge(Perturbation):
    """Scale the arrival rate — uniformly or over a month window.

    ``scale > 1`` is a surge, ``scale < 1`` a lull.  With ``ramp=True`` the
    multiplier grows linearly from 1.0 at the window start to ``scale`` at
    the window end (a demand wave building up instead of a step).
    """

    kind = "demand_surge"

    scale: float = 1.0
    start_month: Optional[int] = None
    end_month: Optional[int] = None
    ramp: bool = False

    def apply(self, config: TraceGeneratorConfig) -> TraceGeneratorConfig:
        if self.scale <= 0:
            raise ScenarioError("demand scale must be positive")
        if (self.start_month is not None and self.end_month is not None
                and self.start_month > self.end_month):
            raise ScenarioError(
                f"demand window [{self.start_month}, {self.end_month}] "
                f"is empty")
        months = config.months
        knobs = _knobs_of(config)
        overlay = list(knobs.monthly_demand[:months])
        overlay += [1.0] * (months - len(overlay))
        # Clamp the window into the study so reduced-scale runs of the
        # built-in catalog stay meaningful (the surge hits the tail).
        first = 0 if self.start_month is None \
            else min(max(0, int(self.start_month)), months - 1)
        last = months - 1 if self.end_month is None \
            else min(months - 1, max(int(self.end_month), first))
        for month in range(first, last + 1):
            factor = self.scale
            if self.ramp and last > first:
                # Linear build-up reaching the full scale at the window end;
                # a window clamped to one month applies the full scale.
                factor = 1.0 + (self.scale - 1.0) * (month - first) \
                    / (last - first)
            overlay[month] *= factor
        return _with_knobs(config, replace(
            knobs, monthly_demand=tuple(overlay)))

    def describe(self) -> str:
        window = ""
        if self.start_month is not None or self.end_month is not None:
            window = f" in months [{self.start_month or 0}, " \
                     f"{'end' if self.end_month is None else self.end_month}]"
        shape = "ramped" if self.ramp else "uniform"
        return f"{shape} {self.scale:g}x arrival-rate scaling{window}"


@dataclass(frozen=True)
class MachineOutage(Perturbation):
    """Take one machine out of service for an inclusive month window."""

    kind = "machine_outage"

    machine: str = ""
    first_month: int = 0
    last_month: int = 0

    def apply(self, config: TraceGeneratorConfig) -> TraceGeneratorConfig:
        _check_machine(self.machine)
        if self.first_month > self.last_month:
            raise ScenarioError(
                f"outage window [{self.first_month}, {self.last_month}] "
                f"for {self.machine!r} is empty")
        # Clamp into the study window (as DemandSurge does) so reduced-scale
        # runs of full-scale scenario definitions still exercise the outage.
        first = min(max(0, int(self.first_month)), config.months - 1)
        last = min(int(self.last_month), config.months - 1)
        knobs = _knobs_of(config)
        outages = knobs.machine_outages + ((self.machine, first, last),)
        return _with_knobs(config, replace(knobs, machine_outages=outages))

    def describe(self) -> str:
        return (f"{self.machine} out of service months "
                f"{self.first_month}-{self.last_month}")


@dataclass(frozen=True)
class FleetChange(Perturbation):
    """Remove machines for the whole study and/or move their online month."""

    kind = "fleet_change"

    remove: Tuple[str, ...] = ()
    bring_online: Tuple[Tuple[str, int], ...] = ()

    def apply(self, config: TraceGeneratorConfig) -> TraceGeneratorConfig:
        for name in self.remove:
            _check_machine(name)
        for name, _ in self.bring_online:
            _check_machine(name)
        knobs = _knobs_of(config)
        return _with_knobs(config, replace(
            knobs,
            machines_removed=knobs.machines_removed
            + tuple(self.remove),
            machine_online_overrides=knobs.machine_online_overrides
            + tuple((name, int(month)) for name, month in self.bring_online),
        ))

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FleetChange":
        payload = dict(payload)
        if "remove" in payload:
            payload["remove"] = tuple(payload["remove"])
        if "bring_online" in payload:
            payload["bring_online"] = tuple(
                (str(name), int(month))
                for name, month in payload["bring_online"])
        return super().from_dict(payload)  # type: ignore[return-value]

    def describe(self) -> str:
        parts = []
        if self.remove:
            parts.append(f"remove {', '.join(self.remove)}")
        if self.bring_online:
            parts.append(", ".join(f"{name} online from month {month}"
                                   for name, month in self.bring_online))
        return "; ".join(parts) or "no fleet change"


@dataclass(frozen=True)
class CalibrationDrift(Perturbation):
    """Scale how fast calibration degrades between recalibrations."""

    kind = "calibration_drift"

    scale: float = 1.0

    def apply(self, config: TraceGeneratorConfig) -> TraceGeneratorConfig:
        if self.scale < 0:
            raise ScenarioError("calibration drift scale must be >= 0")
        knobs = _knobs_of(config)
        return _with_knobs(config, replace(
            knobs,
            calibration_drift_scale=knobs.calibration_drift_scale * self.scale,
        ))

    def describe(self) -> str:
        return f"{self.scale:g}x calibration drift rates"


@dataclass(frozen=True)
class BacklogShift(Perturbation):
    """Shift the external-demand regime (everyone else's jobs)."""

    kind = "backlog_shift"

    scale: float = 1.0
    machines: Tuple[str, ...] = ()

    def apply(self, config: TraceGeneratorConfig) -> TraceGeneratorConfig:
        if self.scale <= 0:
            raise ScenarioError("backlog scale must be positive")
        knobs = _knobs_of(config)
        if not self.machines:
            return _with_knobs(config, replace(
                knobs, backlog_scale=knobs.backlog_scale * self.scale))
        per_machine = dict(knobs.machine_backlog_scales)
        for name in self.machines:
            _check_machine(name)
            per_machine[name] = per_machine.get(name, 1.0) * self.scale
        return _with_knobs(config, replace(
            knobs,
            machine_backlog_scales=tuple(sorted(per_machine.items())),
        ))

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "BacklogShift":
        payload = dict(payload)
        if "machines" in payload:
            payload["machines"] = tuple(payload["machines"])
        return super().from_dict(payload)  # type: ignore[return-value]

    def describe(self) -> str:
        scope = "fleet-wide" if not self.machines \
            else f"on {', '.join(self.machines)}"
        return f"{self.scale:g}x external backlog {scope}"


@dataclass(frozen=True)
class FailureRates(Perturbation):
    """Override the terminal-status failure probabilities."""

    kind = "failure_rates"

    error_probability: Optional[float] = None
    cancel_probability: Optional[float] = None

    def apply(self, config: TraceGeneratorConfig) -> TraceGeneratorConfig:
        for probability in (self.error_probability, self.cancel_probability):
            if probability is not None and not 0 <= probability < 1:
                raise ScenarioError("failure probabilities must be in [0, 1)")
        knobs = _knobs_of(config)
        return _with_knobs(config, replace(
            knobs,
            error_probability=(knobs.error_probability
                               if self.error_probability is None
                               else self.error_probability),
            cancel_probability=(knobs.cancel_probability
                                if self.cancel_probability is None
                                else self.cancel_probability),
        ))

    def describe(self) -> str:
        parts = []
        if self.error_probability is not None:
            parts.append(f"error rate {self.error_probability:g}")
        if self.cancel_probability is not None:
            parts.append(f"cancel rate {self.cancel_probability:g}")
        return ", ".join(parts) or "default failure rates"


@dataclass(frozen=True)
class PolicySwap(Perturbation):
    """Force one machine-selection behaviour onto every user.

    Two fidelity models are available through ``mode``:

    * ``"trace"`` (the default, and the historical behaviour) swaps in a
      trace-level :class:`~repro.workloads.users.MachineSelectionPolicy`
      — machines are compared by logical circuit metrics.  ``policy``
      accepts either a :class:`~repro.scheduling.policies.
      SelectionObjective` value (``fidelity`` / ``queue`` / ``balanced`` —
      the paper's recommendation V-E.3 trade-off) or a user-policy value
      directly.
    * ``"rank"`` makes every user rank machines the way a live
      :class:`~repro.scheduling.policies.MachineSelector` would: each
      equivalence class is transpiled per machine at preset ``level`` and
      scored by estimated success probability against expected queue
      (recommendation IV-D.1's compiled CX metrics).  ``policy`` must then
      be a ``SelectionObjective`` value.
    """

    kind = "policy_swap"

    policy: str = SelectionObjective.BALANCED.value
    mode: str = "trace"
    level: int = 3

    def resolved_policy(self) -> str:
        policy = OBJECTIVE_POLICIES.get(self.policy, self.policy)
        valid = {p.value for p in MachineSelectionPolicy}
        if policy not in valid:
            raise ScenarioError(
                f"unknown selection policy {self.policy!r}; choose a "
                f"SelectionObjective value {sorted(OBJECTIVE_POLICIES)} or "
                f"a user policy {sorted(valid)}")
        return policy

    def resolved_objective(self) -> str:
        try:
            return SelectionObjective(self.policy).value
        except ValueError:
            raise ScenarioError(
                f"rank-mode policy_swap needs a SelectionObjective value "
                f"{sorted(OBJECTIVE_POLICIES)}, got {self.policy!r}") \
                from None

    def apply(self, config: TraceGeneratorConfig) -> TraceGeneratorConfig:
        knobs = _knobs_of(config)
        if self.mode == "trace":
            return _with_knobs(config, replace(
                knobs, forced_policy=self.resolved_policy()))
        if self.mode == "rank":
            if not 0 <= int(self.level) <= 3:
                raise ScenarioError(
                    f"transpile preset level must be 0-3, got {self.level}")
            return _with_knobs(config, replace(
                knobs,
                ranking_objective=self.resolved_objective(),
                ranking_level=int(self.level)))
        raise ScenarioError(
            f"unknown policy_swap mode {self.mode!r}; "
            f"expected 'trace' or 'rank'")

    def describe(self) -> str:
        if self.mode == "rank":
            return (f"all users rank machines by transpiled "
                    f"{self.resolved_objective()!r} at level {self.level}")
        return f"all users select machines by {self.resolved_policy()!r}"


#: Registry used by the spec loader: kind -> constructor.
PERTURBATION_KINDS: Dict[str, Callable[[Dict[str, object]], Perturbation]] = {
    cls.kind: cls.from_dict
    for cls in (DemandSurge, MachineOutage, FleetChange, CalibrationDrift,
                BacklogShift, FailureRates, PolicySwap)
}


def perturbation_from_dict(payload: Dict[str, object]) -> Perturbation:
    """Build a perturbation from a spec dictionary (``kind`` selects it)."""
    kind = payload.get("kind")
    try:
        builder = PERTURBATION_KINDS[str(kind)]
    except KeyError:
        raise ScenarioError(
            f"unknown perturbation kind {kind!r}; known kinds: "
            f"{sorted(PERTURBATION_KINDS)}") from None
    return builder(payload)
