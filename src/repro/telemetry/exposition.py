"""Prometheus text exposition: render a registry, parse an exposition.

The renderer produces text-format 0.0.4 output (``# HELP`` / ``# TYPE``
comment lines followed by ``name{labels} value`` samples); the parser is
the strict inverse used by the test suite and the gateway bench smoke to
*validate* what ``GET /metrics`` serves — a scrape that fails to parse is
a bug, not a formatting nit.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Tuple

__all__ = ["format_labels", "parse_prometheus_text", "render_prometheus"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r"\s+(?P<value>[^\s]+)$")
_LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$')


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def format_labels(pairs: Tuple[Tuple[str, str], ...]) -> str:
    """``{a="x",b="y"}`` for a sorted label tuple ('' when unlabelled)."""
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape(value)}"' for key, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int) or (isinstance(value, float)
                                  and value.is_integer()
                                  and abs(value) < 1e15):
        return str(int(value))
    return repr(float(value))


def _merge_label_key(label_key: str, extra: str) -> str:
    """Splice one more ``k="v"`` pair into a rendered label string."""
    if not label_key:
        return "{" + extra + "}"
    return label_key[:-1] + "," + extra + "}"


def render_prometheus(registry) -> str:
    """The registry's families as Prometheus text exposition 0.0.4."""
    lines = []
    for name, family in registry.snapshot().items():
        kind = family["type"]
        help_text = family["help"] or name.replace("_", " ")
        lines.append(f"# HELP {name} {_escape(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for label_key, value in family["samples"].items():
            if kind == "histogram":
                cumulative = 0
                for bucket, count in zip(value["buckets"],
                                         value["counts"]):
                    cumulative += count
                    le = _merge_label_key(label_key,
                                          f'le="{_format_value(bucket)}"')
                    lines.append(f"{name}_bucket{le} {cumulative}")
                inf = _merge_label_key(label_key, 'le="+Inf"')
                lines.append(f"{name}_bucket{inf} {value['count']}")
                lines.append(
                    f"{name}_sum{label_key} {_format_value(value['sum'])}")
                lines.append(f"{name}_count{label_key} {value['count']}")
            else:
                lines.append(f"{name}{label_key} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, float]]:
    """Parse an exposition into ``{sample name: {label string: value}}``.

    Raises :class:`ValueError` on any malformed line — unknown comment
    shapes, invalid metric names, unbalanced or malformed label sets, or
    non-numeric values.  Histogram series appear under their expanded
    sample names (``*_bucket`` / ``*_sum`` / ``*_count``).
    """
    samples: Dict[str, Dict[str, float]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(
                    f"line {lineno}: malformed comment {raw!r}")
            if not _NAME_RE.match(parts[2]):
                raise ValueError(
                    f"line {lineno}: invalid metric name {parts[2]!r}")
            if parts[1] == "TYPE" and (
                    len(parts) < 4 or parts[3].split()[0] not in
                    ("counter", "gauge", "histogram", "summary",
                     "untyped")):
                raise ValueError(
                    f"line {lineno}: invalid TYPE line {raw!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        labels = match.group("labels") or ""
        if labels:
            inner = labels[1:-1]
            if inner:
                for pair in _split_label_pairs(inner, lineno):
                    if not _LABEL_RE.match(pair):
                        raise ValueError(
                            f"line {lineno}: malformed label {pair!r}")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: non-numeric value "
                f"{match.group('value')!r}") from exc
        if math.isnan(value):
            raise ValueError(f"line {lineno}: NaN sample value")
        samples.setdefault(match.group("name"), {})[labels] = value
    return samples


def _split_label_pairs(inner: str, lineno: int):
    """Split ``k="v",k2="v2"`` on commas outside quoted values."""
    pairs = []
    current = []
    in_quotes = False
    escaped = False
    for char in inner:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
            continue
        current.append(char)
    if in_quotes:
        raise ValueError(f"line {lineno}: unbalanced quotes in labels")
    if current:
        pairs.append("".join(current))
    return pairs
