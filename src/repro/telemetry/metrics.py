"""The process-wide metrics registry: counters, gauges, histograms.

Every layer of the reproduction keeps *some* cumulative accounting — the
trace cache counts hits, the residency governor counts spills, the worker
pool counts tasks, the job registry counts per-tenant dispatches.  Before
this module each of those was a private ``int`` attribute; now they are
instruments registered on one :class:`MetricsRegistry`, so the gateway's
``GET /metrics`` endpoint (Prometheus text exposition) and the ``repro
metrics`` CLI see a single truth across the whole process.

Design constraints, in order:

* **Deterministic outputs stay deterministic.**  Instruments never feed
  values back into traces, fingerprints or cache keys — they are pure
  observation.  Nothing here reads wall-clock time.
* **Legacy attribute APIs keep working.**  ``TraceCache.hits`` and friends
  are now properties over per-*instance* instruments that aggregate under
  one shared metric name: each instance still counts from zero (existing
  tests and callers see identical values, including external ``+= 1``
  writers), while the registry-level value is the sum over every live
  instance — which only grows, keeping the exposition monotonic.
* **Cheap.**  An increment is one lock acquisition and an integer add;
  histograms short-circuit to a shared no-op when the registry is
  disabled.  The true zero-cost-when-off path is the span tracer
  (:mod:`repro.telemetry.tracing`), which allocates nothing when
  disabled.
"""

from __future__ import annotations

import bisect
import threading
import weakref
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]

#: Default histogram buckets (seconds): request/phase latencies from
#: sub-millisecond cache hits up to minute-scale suite runs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelPairs = Tuple[Tuple[str, str], ...]


def _label_pairs(labels: Dict[str, object]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (one instance, one label set)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelPairs,
                 lock: threading.Lock):
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = lock

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def set_local(self, value: float) -> None:
        """Force this instance's local count (attribute-aliasing support).

        Legacy callers assign counter attributes directly (including
        external ``store.cache.evictions += 1`` writers); the property
        setters route those writes here.  The family-level sum moves by
        the same delta.
        """
        with self._lock:
            self._value = value


class Gauge:
    """A value that can go up and down (queue depths, active jobs)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelPairs,
                 lock: threading.Lock):
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = lock

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value


class _CallbackGauge:
    """A gauge computed on read from a weakly-referenced owner.

    Used for derived values (resident block bytes) that already exist as
    properties on live objects; the registry never keeps those objects
    alive, and a dead owner's sample silently drops out of the sum.
    """

    __slots__ = ("name", "labels", "_owner", "_read")

    def __init__(self, name: str, labels: LabelPairs, owner: object,
                 read: Callable[[object], float]):
        self.name = name
        self.labels = labels
        self._owner = weakref.ref(owner)
        self._read = read

    @property
    def value(self) -> Optional[float]:
        owner = self._owner()
        if owner is None:
            return None
        try:
            return self._read(owner)
        except Exception:
            return None


class Histogram:
    """Fixed-bucket cumulative histogram of observed values (seconds)."""

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count",
                 "_lock")

    def __init__(self, name: str, labels: LabelPairs, lock: threading.Lock,
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1


class _NullHistogram:
    """Shared do-nothing stand-in returned by a disabled registry."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_HISTOGRAM = _NullHistogram()


class _Family:
    """Every instrument registered under one metric name."""

    __slots__ = ("kind", "help", "instruments")

    def __init__(self, kind: str, help_text: str):
        self.kind = kind
        self.help = help_text
        self.instruments: Dict[LabelPairs, List[object]] = {}


class MetricsRegistry:
    """The process-wide instrument store behind ``/metrics``.

    ``counter`` / ``gauge`` / ``histogram`` return the *shared* instrument
    for a ``(name, labels)`` pair — every caller sees one cumulative
    value.  ``instance_counter`` instead registers a *fresh* counter that
    aggregates into the family sum: this is the aliasing hook that lets
    ``TraceCache``-style objects keep their per-instance attribute
    semantics while contributing to one process-wide metric.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- registration ------------------------------------------------------------------

    def _family(self, name: str, kind: str, help_text: str) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(kind, help_text)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"not {kind}")
        if help_text and not family.help:
            family.help = help_text
        return family

    def counter(self, name: str, help: str = "",  # noqa: A002
                **labels: object) -> Counter:
        pairs = _label_pairs(labels)
        with self._lock:
            family = self._family(name, "counter", help)
            existing = family.instruments.get(pairs)
            if existing:
                return existing[0]
            instrument = Counter(name, pairs, self._lock)
            family.instruments[pairs] = [instrument]
            return instrument

    def instance_counter(self, name: str, help: str = "",  # noqa: A002
                         **labels: object) -> Counter:
        """A fresh counter aggregated into ``name``'s family sum."""
        pairs = _label_pairs(labels)
        with self._lock:
            family = self._family(name, "counter", help)
            instrument = Counter(name, pairs, self._lock)
            family.instruments.setdefault(pairs, []).append(instrument)
            return instrument

    def gauge(self, name: str, help: str = "",  # noqa: A002
              **labels: object) -> Gauge:
        pairs = _label_pairs(labels)
        with self._lock:
            family = self._family(name, "gauge", help)
            existing = family.instruments.get(pairs)
            if existing:
                return existing[0]
            instrument = Gauge(name, pairs, self._lock)
            family.instruments[pairs] = [instrument]
            return instrument

    def callback_gauge(self, name: str, owner: object,
                       read: Callable[[object], float],
                       help: str = "",  # noqa: A002
                       **labels: object) -> None:
        """Register a read-on-scrape gauge bound weakly to ``owner``."""
        pairs = _label_pairs(labels)
        with self._lock:
            family = self._family(name, "gauge", help)
            family.instruments.setdefault(pairs, []).append(
                _CallbackGauge(name, pairs, owner, read))

    def histogram(self, name: str, help: str = "",  # noqa: A002
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: object):
        if not self.enabled:
            return _NULL_HISTOGRAM
        pairs = _label_pairs(labels)
        with self._lock:
            family = self._family(name, "histogram", help)
            existing = family.instruments.get(pairs)
            if existing:
                return existing[0]
            instrument = Histogram(name, pairs, self._lock, buckets)
            family.instruments[pairs] = [instrument]
            return instrument

    # -- reading -----------------------------------------------------------------------

    def value(self, name: str, **labels: object) -> float:
        """The summed current value of one ``(name, labels)`` sample."""
        pairs = _label_pairs(labels)
        with self._lock:
            family = self._families.get(name)
            instruments = list(family.instruments.get(pairs, ())) \
                if family is not None else []
        # Values are read *outside* the registry lock: callback gauges may
        # take their owner's lock, and owners increment counters while
        # holding it — reading under the registry lock would invert that
        # order and deadlock a concurrent scrape.
        total = 0
        for instrument in instruments:
            value = instrument.value
            if value is not None:
                total += value
        return total

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Every family's summed samples, JSON-ready.

        Counter/gauge families map label strings to one number; histogram
        families map them to ``{buckets, counts, sum, count}``.
        """
        from repro.telemetry.exposition import format_labels

        with self._lock:
            families = [
                (name, family.kind, family.help,
                 [(pairs, list(instruments))
                  for pairs, instruments in sorted(
                      family.instruments.items())])
                for name, family in sorted(self._families.items())
            ]
        out: Dict[str, Dict[str, object]] = {}
        for name, kind, help_text, groups in families:
            samples: Dict[str, object] = {}
            for pairs, instruments in groups:
                key = format_labels(pairs)
                if kind == "histogram":
                    samples[key] = self._sum_histograms(instruments)
                else:
                    total = 0
                    live = False
                    for instrument in instruments:
                        value = instrument.value
                        if value is not None:
                            total += value
                            live = True
                    if live:
                        samples[key] = total
            if samples:
                out[name] = {"type": kind, "help": help_text,
                             "samples": samples}
        return out

    @staticmethod
    def _sum_histograms(instruments: Iterable[object]) -> Dict[str, object]:
        buckets: Tuple[float, ...] = ()
        counts: List[int] = []
        total_sum = 0.0
        total_count = 0
        for histogram in instruments:
            if not buckets:
                buckets = histogram.buckets
                counts = [0] * (len(buckets) + 1)
            for index, count in enumerate(histogram.counts):
                counts[index] += count
            total_sum += histogram.sum
            total_count += histogram.count
        return {"buckets": list(buckets), "counts": counts,
                "sum": total_sum, "count": total_count}


#: The process-wide registry every layer instruments against.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY
