"""Unified telemetry: the metrics registry, span tracer and exposition.

One import surface for every instrumented layer::

    from repro.telemetry import get_registry, get_tracer

    get_registry().counter("repro_pool_tasks_total", kind="synthesis").inc()
    with get_tracer().span("synthesis.shard", job_shard=3):
        ...

See :mod:`repro.telemetry.metrics` for the registry semantics (shared
instruments, per-instance aliasing counters), :mod:`repro.telemetry.
tracing` for the span model and Chrome trace export, and
:mod:`repro.telemetry.exposition` for the Prometheus text surface.
"""

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.telemetry.exposition import (
    parse_prometheus_text,
    render_prometheus,
)
from repro.telemetry.tracing import (
    NULL_SPAN,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "get_registry",
    "get_tracer",
    "parse_prometheus_text",
    "render_prometheus",
    "set_tracer",
]
