"""Span-based tracing with Chrome trace-event export.

:func:`get_tracer` returns the process tracer.  It is **disabled by
default** and, while disabled, ``span()`` hands back one shared null-span
singleton — no object allocation, no clock read, no lock — so hot loops
can be instrumented unconditionally.  ``--trace-out FILE`` on the CLI
enables it and dumps the finished spans as Chrome trace-event JSON
(loadable in Perfetto / ``chrome://tracing``).

Spans nest through a per-thread stack (``parent_id`` links), and
timestamps are ``time.perf_counter()`` — on Linux a system-wide monotonic
clock shared across forked worker processes, so spans recorded inside a
pool worker line up with the parent timeline once merged.  Worker-side
spans travel back through the existing task result payloads as plain
dicts (:meth:`Tracer.export_spans`) and are re-registered with
:meth:`Tracer.ingest`, which re-keys span ids into the parent's id space
while preserving parent/child links.

Nothing here feeds values into traces, fingerprints or cache keys:
tracing on vs off produces byte-identical study output.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["Span", "Tracer", "get_tracer", "set_tracer"]


class _NullSpan:
    """The shared no-op span a disabled tracer returns from ``span()``."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Span:
    """One live span: a named, timed, attributed interval.

    Context-manager protocol: entering records the start and pushes onto
    the thread's span stack (establishing parentage); exiting pops,
    computes the duration and hands the finished span to the tracer.
    """

    __slots__ = ("name", "args", "span_id", "parent_id", "start",
                 "duration", "pid", "tid", "_tracer")

    def __init__(self, tracer: "Tracer", name: str,
                 args: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.args = args
        self.span_id = next(tracer._ids)
        self.parent_id: Optional[int] = None
        self.start = 0.0
        self.duration = 0.0
        self.pid = 0
        self.tid = 0

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # unbalanced exit (exception skipped frames): best effort
            try:
                stack.remove(self)
            except ValueError:
                pass
        self._tracer._record(self)
        return False

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "id": self.span_id,
            "parent_id": self.parent_id,
            "args": dict(self.args),
        }


class Tracer:
    """Collects finished spans; disabled by default (null-span fast path)."""

    def __init__(self, enabled: bool = False):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._finished: List[Dict[str, object]] = []
        self._local = threading.local()
        self._epoch = time.perf_counter()

    # -- recording ---------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def span(self, name: str, **args: object):
        """A context manager timing one named interval.

        Disabled tracers return the shared :data:`NULL_SPAN` singleton —
        identity-stable, allocation-free.
        """
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, args)

    def instant(self, name: str, **args: object) -> None:
        """Record a zero-duration marker span at the current position."""
        if not self.enabled:
            return
        span = Span(self, name, args)
        stack = self._stack()
        if stack:
            span.parent_id = stack[-1].span_id
        span.pid = os.getpid()
        span.tid = threading.get_ident()
        span.start = time.perf_counter()
        span.duration = 0.0
        self._record(span)

    def timed(self, name: str, **args: object) -> "_Timed":
        """Measure a block's wall-clock *always*; record a span when on.

        ``--profile-phases`` style timings ride on this: the ``seconds``
        attribute is filled whether or not tracing is enabled, so phase
        reports and span trees are two views over the same measurement.
        """
        return _Timed(self, name, args)

    def record_span(self, name: str, start: float, duration: float,
                    args: Optional[Dict[str, object]] = None,
                    pid: Optional[int] = None, tid: Optional[int] = None,
                    parent_id: Optional[int] = None) -> None:
        """Register an externally measured interval (e.g. queue wait)."""
        if not self.enabled:
            return
        with self._lock:
            self._finished.append({
                "name": name,
                "start": start,
                "duration": duration,
                "pid": pid if pid is not None else os.getpid(),
                "tid": tid if tid is not None else threading.get_ident(),
                "id": next(self._ids),
                "parent_id": parent_id,
                "args": dict(args or {}),
            })

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span.as_dict())

    # -- merge and export --------------------------------------------------------------

    def export_spans(self) -> List[Dict[str, object]]:
        """The finished spans as plain picklable dicts (worker → parent)."""
        with self._lock:
            return [dict(span) for span in self._finished]

    def ingest(self, spans: List[Dict[str, object]]) -> None:
        """Adopt spans exported by another tracer (a pool worker).

        Span ids are re-keyed into this tracer's id space so merged spans
        from many workers can never collide; parent links that point
        outside the ingested batch are cleared.
        """
        if not self.enabled or not spans:
            return
        with self._lock:
            remap: Dict[int, int] = {}
            for span in spans:
                remap[span["id"]] = next(self._ids)
            for span in spans:
                adopted = dict(span)
                adopted["id"] = remap[adopted["id"]]
                parent = adopted.get("parent_id")
                adopted["parent_id"] = remap.get(parent)
                self._finished.append(adopted)

    def spans(self) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._finished)

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()
        self._epoch = time.perf_counter()

    def chrome_trace(self) -> Dict[str, object]:
        """The Chrome trace-event JSON object (``ph: "X"`` complete events).

        Timestamps are microseconds relative to the tracer's epoch, so
        Perfetto renders the session starting near zero.
        """
        events = []
        for span in self.spans():
            events.append({
                "name": span["name"],
                "ph": "X",
                "ts": max(0.0, (span["start"] - self._epoch) * 1e6),
                "dur": span["duration"] * 1e6,
                "pid": span["pid"],
                "tid": span["tid"],
                "args": {
                    **span["args"],
                    "span_id": span["id"],
                    **({"parent_id": span["parent_id"]}
                       if span["parent_id"] is not None else {}),
                },
            })
        events.sort(key=lambda event: (event["pid"], event["tid"],
                                       event["ts"]))
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.chrome_trace(), indent=2))
        return path


class _Timed:
    """``Tracer.timed`` context: wall-clock always, a span when enabled."""

    __slots__ = ("seconds", "_tracer", "_name", "_args", "_span", "_start")

    def __init__(self, tracer: Tracer, name: str, args: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._args = args
        self._span = None
        self.seconds = 0.0

    def __enter__(self) -> "_Timed":
        if self._tracer.enabled:
            self._span = Span(self._tracer, self._name, self._args)
            self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._start
        if self._span is not None:
            self._span.__exit__(exc_type, exc, tb)
        return False


#: The process tracer; pool workers temporarily swap in their own.
_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process tracer; returns the previous one.

    Pool workers install a fresh enabled tracer around each task so that
    every span recorded anywhere in the task's call tree is captured and
    shipped back with the result, then restore the original.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous
