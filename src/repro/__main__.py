"""Command-line interface of the study reproduction.

``python -m repro`` (or the ``repro`` console script) drives the parallel
sharded study runner and the analysis layer:

* ``repro run-study`` — generate the merged study trace across workers and
  optionally save it to JSON/CSV.
* ``repro figures`` — reproduce every trace-driven figure of the paper from
  a trace file or a freshly generated trace.
* ``repro report`` — the full characterisation report: fleet dashboard plus
  all reproduced figures.
* ``repro bench`` — measure the runner's multi-worker speedup and write the
  ``BENCH_runner.json`` artifact consumed by CI.
* ``repro export`` — export a trace for external notebooks: Parquet or
  Feather/Arrow IPC through the optional ``pyarrow`` dependency, or the
  built-in csv/json/npz formats.
* ``repro run-scenarios`` — execute a suite of declarative what-if scenarios
  (built-in catalog or a TOML/JSON spec) as one interleaved work queue on a
  shared worker pool, with fingerprint-keyed cache reuse; ``--sweep``
  expands parameter grids and ``--replicates`` adds seed re-rolls.
* ``repro compare-scenarios`` — run a suite and emit the per-scenario delta
  table (queue percentiles, utilisation, fidelity, status mix) against the
  baseline — mean ± 95% CI when replicated — as markdown and/or JSON.
* ``repro serve`` — run the study-service gateway: a long-lived
  multi-tenant HTTP server that accepts study/suite/sweep submissions,
  multiplexes tenants onto one shared worker pool, streams NDJSON
  progress, and serves finished traces/comparisons by fingerprint.
* ``repro submit`` / ``repro jobs`` / ``repro fetch`` — the stdlib client
  side of the gateway: submit a suite, follow its event stream, inspect
  or cancel jobs, download results.
* ``repro metrics`` — the process-wide metrics registry in Prometheus
  text format: scraped from a running gateway's ``/metrics``, or the
  local process's with ``--local``.
* ``repro cache`` — inspect or LRU-prune the on-disk trace cache.

``--trace-out FILE`` on any generating subcommand enables the span
tracer and writes the run's spans as Chrome trace-event JSON
(Perfetto-loadable); ``--profile-phases`` prints the same ``study.*``
span durations as per-phase stderr lines.
"""

from __future__ import annotations

import argparse
import dataclasses
import gc
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis import reproduce_all
from repro.analysis.compare import compare_suite
from repro.core.env import env_int
from repro.core.exceptions import ReproError
from repro.runner import StudyResult, default_workers, run_study
from repro.scenarios import (
    ScenarioEngine,
    builtin_scenarios,
    expand_sweeps,
    load_suite,
    replicate_scenarios,
    resolve_scenarios,
    sweep_from_flags,
)
from repro.telemetry import get_registry, get_tracer, render_prometheus
from repro.workloads.blocks import set_memory_budget
from repro.workloads.generator import TraceGeneratorConfig
from repro.workloads.trace import TraceDataset


def _add_generation_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--memory-budget", default=os.environ.get("REPRO_MEMORY_BUDGET"),
        metavar="BYTES",
        help="resident-bytes budget for trace columns (suffixes K/M/G); "
             "datasets past it chunk into blocks that spill to disk "
             "(default: $REPRO_MEMORY_BUDGET, or fully resident)")
    parser.add_argument(
        "--jobs", type=int, default=env_int("REPRO_BENCH_JOBS", 6000),
        help="total jobs of the study trace (default: %(default)s)")
    parser.add_argument(
        "--months", type=int, default=env_int("REPRO_BENCH_MONTHS", 28),
        help="length of the study window in months (default: %(default)s)")
    parser.add_argument(
        "--seed", type=int, default=env_int("REPRO_BENCH_SEED", 7),
        help="root seed of the study (default: %(default)s)")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: one per core, capped at 16)")
    parser.add_argument(
        "--shards", type=int, default=None,
        help="synthesis shards (default: equal to --workers; the result "
             "never depends on this, only the load balance does)")
    parser.add_argument(
        "--transpile-workers", type=int, default=None,
        help="transpile shards for rank-mode policy scenarios (default: "
             "equal to --workers; like --shards, a load-balance knob the "
             "result never depends on)")
    parser.add_argument(
        "--cache-dir", default=os.environ.get("REPRO_CACHE_DIR"),
        help="directory of the on-disk trace cache (default: "
             "$REPRO_CACHE_DIR, or no caching)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore the trace cache even when --cache-dir is set")
    parser.add_argument(
        "--engine", choices=("batched", "event"), default="batched",
        help="simulation core: 'batched' replays machine groups through "
             "the vectorised fast-sim engine, 'event' drives the reference "
             "discrete-event loop; traces are byte-identical either way "
             "(default: %(default)s)")
    parser.add_argument(
        "--profile-phases", action="store_true",
        help="print the per-phase wall-clock breakdown (plan/transpile/"
             "synthesis/simulation/merge) of every study on stderr; the "
             "transpile row is zero unless the study ranks machines over "
             "transpiled classes; the same numbers "
             "are embedded in the result metadata as 'phase_seconds' and "
             "are the durations of the study.* spans (--trace-out)")
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="enable span tracing and write the run's spans as Chrome "
             "trace-event JSON to FILE (loadable in Perfetto or "
             "chrome://tracing)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")


def _progress(quiet: bool):
    if quiet:
        return None
    return lambda message: print(f"[repro] {message}", file=sys.stderr)


def _print_phase_report(label: str, timings: Dict[str, float]) -> None:
    """One stderr line per study: its per-phase wall-clock breakdown."""
    parts = " ".join(f"{name}={seconds:.3f}s"
                     for name, seconds in sorted(timings.items()))
    print(f"[repro] phases[{label}]: {parts}", file=sys.stderr)


def _generate(args: argparse.Namespace, quiet: bool = False) -> StudyResult:
    config = TraceGeneratorConfig(
        total_jobs=args.jobs, months=args.months, seed=args.seed)
    result = run_study(
        config=config,
        workers=args.workers,
        num_shards=args.shards,
        cache_dir=None if args.no_cache else args.cache_dir,
        progress=_progress(quiet),
        use_cache=not args.no_cache,
        engine=getattr(args, "engine", "batched"),
        transpile_workers=getattr(args, "transpile_workers", None),
    )
    if getattr(args, "profile_phases", False):
        _print_phase_report("study", result.timings)
    return result


def _save_trace(trace: TraceDataset, output: str) -> None:
    path = Path(output)
    trace.save(path)
    print(f"trace written to {path}")


# -- subcommands --------------------------------------------------------------------


def cmd_run_study(args: argparse.Namespace) -> int:
    result = _generate(args, quiet=args.quiet)
    print(json.dumps(result.summary(), indent=2))
    if args.output:
        _save_trace(result.trace, args.output)
    return 0


def _load_or_generate_trace(args: argparse.Namespace):
    """The (trace, fleet) pair for analysis subcommands."""
    if getattr(args, "trace", None):
        trace = TraceDataset.load(args.trace)
        seed = int(trace.metadata.get("seed", args.seed))
        fleet = TraceGeneratorConfig(seed=seed).build_fleet()
        return trace, fleet
    result = _generate(args, quiet=args.quiet)
    return result.trace, result.config.build_fleet()


def cmd_figures(args: argparse.Namespace) -> int:
    trace, fleet = _load_or_generate_trace(args)
    report = reproduce_all(trace, fleet=fleet)
    if args.output:
        Path(args.output).write_text(json.dumps(report.as_dict(), indent=2))
        print(f"figure data written to {args.output}")
    if not args.quiet or not args.output:
        print(report.render(max_rows=args.max_rows))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.cloud import CloudDashboard

    trace, fleet = _load_or_generate_trace(args)
    dashboard = CloudDashboard(fleet, seed=args.seed)
    print(dashboard.render(at_time=0.0))
    print()
    report = reproduce_all(trace, fleet=fleet)
    print(report.render(max_rows=args.max_rows))
    if args.output:
        payload = {
            "trace_summary": trace.summary(),
            "figures": report.as_dict(),
        }
        Path(args.output).write_text(json.dumps(payload, indent=2))
        print(f"\nfull report written to {args.output}")
    return 0


_EXPORT_FORMATS = ("parquet", "feather", "arrow", "csv", "json", "npz")

#: output-suffix → export format for ``repro export`` (no --format given)
_EXPORT_SUFFIXES = {
    ".parquet": "parquet",
    ".feather": "feather",
    ".arrow": "feather",
    ".csv": "csv",
    ".json": "json",
    ".npz": "npz",
}


def cmd_export(args: argparse.Namespace) -> int:
    trace, _ = _load_or_generate_trace(args)
    output = Path(args.output)
    fmt = args.format or _EXPORT_SUFFIXES.get(output.suffix.lower())
    if fmt is None:
        print(f"repro export: cannot infer a format from {output.name!r}; "
              f"pass --format ({', '.join(_EXPORT_FORMATS)})",
              file=sys.stderr)
        return 2
    if fmt == "parquet":
        trace.to_parquet(output)
    elif fmt in ("feather", "arrow"):
        trace.to_feather(output)
    elif fmt == "csv":
        trace.to_csv(output)
    elif fmt == "json":
        trace.to_json(output)
    else:
        trace.to_npz(output)
    print(f"trace exported to {output} ({fmt}, {len(trace)} jobs)")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    worker_counts: List[int] = sorted({
        max(1, int(w)) for w in args.worker_counts.split(",") if w.strip()
    })
    if not worker_counts:
        worker_counts = [1, default_workers()]
    config = TraceGeneratorConfig(
        total_jobs=args.jobs, months=args.months, seed=args.seed)
    runs: Dict[int, Dict[str, float]] = {}
    for workers in worker_counts:
        started = time.perf_counter()
        result = run_study(
            config=config, workers=workers, num_shards=args.shards,
            use_cache=False, progress=_progress(args.quiet))
        elapsed = time.perf_counter() - started
        runs[workers] = {
            "seconds": round(elapsed, 3),
            **{f"{name}_seconds": round(value, 3)
               for name, value in result.timings.items()},
        }
        print(f"workers={workers}: {elapsed:.2f}s "
              f"({len(result.trace)} jobs)")
    baseline = runs[worker_counts[0]]["seconds"]
    payload = {
        "benchmark": "runner_scaling",
        "jobs": args.jobs,
        "months": args.months,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "runs": {
            str(workers): {
                **metrics,
                "speedup": round(baseline / metrics["seconds"], 3)
                if metrics["seconds"] > 0 else None,
            }
            for workers, metrics in runs.items()
        },
    }
    best = max(runs, key=lambda w: baseline / runs[w]["seconds"])
    payload["best_speedup"] = round(baseline / runs[best]["seconds"], 3)
    payload["best_workers"] = best

    # Simulation-phase breakdown, measured directly on the two cores (the
    # suite's phase timings are *wait* times and collapse on an inline
    # single-worker pool): one fresh synthesis per engine — simulation
    # mutates jobs in place — then the simulation alone is timed.  The
    # terminal job states determine the trace bytes, so their equality is
    # the byte-equivalence smoke check; a divergence fails the bench run.
    from repro.cloud.fastsim import simulate_fleet
    from repro.cloud.service import QuantumCloudService
    from repro.workloads.generator import JobSynthesizer, plan_submissions

    def _synthesise_for_engine():
        fleet = config.build_fleet()
        synthesizer = JobSynthesizer(config, fleet)
        jobs = [synthesizer.synthesise(planned)
                for planned in plan_submissions(config)]
        return fleet, [job for job in jobs if job is not None]

    engines: Dict[str, Dict[str, object]] = {}
    outcomes: Dict[str, List[tuple]] = {}
    sim_raw: Dict[str, float] = {}
    for engine in ("event", "batched"):
        sim_seconds = float("inf")
        for _ in range(5):  # best-of-5: drop cold-start and GC noise
            fleet, engine_jobs = _synthesise_for_engine()
            gc.collect()  # the study above leaves collectable garbage
            started = time.perf_counter()
            if engine == "event":
                service = QuantumCloudService(
                    fleet, seed=config.seed,
                    failure_model=config.build_failure_model())
                for job in sorted(engine_jobs,
                                  key=lambda j: (j.submit_time, j.job_id)):
                    service.submit(job)
                service.drain()
            else:
                simulate_fleet(fleet, engine_jobs, seed=config.seed,
                               failure_model=config.build_failure_model())
            sim_seconds = min(sim_seconds,
                              time.perf_counter() - started)
        sim_raw[engine] = sim_seconds
        outcomes[engine] = sorted(
            (job.job_id, job.status.value, job.queue_enter_time,
             job.start_time, job.end_time, job.pending_ahead)
            for job in engine_jobs)
        statuses = [job.status.value for job in engine_jobs]
        # ~4 events per completed job (dispatch/start/finish/chained
        # dispatch), ~3 per cancellation (dispatch/cancel/chained).
        events = (4 * sum(1 for s in statuses if s in ("DONE", "ERROR"))
                  + 3 * sum(1 for s in statuses if s == "CANCELLED"))
        engines[engine] = {
            "simulation_seconds": round(sim_seconds, 6),
            "jobs": len(engine_jobs),
            "events": events,
            "events_per_second": round(events / sim_seconds, 1)
            if sim_seconds > 0 else None,
        }
        print(f"engine={engine}: simulation phase {sim_seconds:.3f}s "
              f"({events} events)")
    byte_identical = outcomes["event"] == outcomes["batched"]
    event_sim = sim_raw["event"]
    batched_sim = sim_raw["batched"]
    payload["simulation_engines"] = {
        **engines,
        "speedup": round(event_sim / batched_sim, 3)
        if batched_sim > 0 else None,
        "byte_identical": byte_identical,
    }

    # Telemetry overhead: the batched simulation re-timed with the span
    # tracer *enabled* must stay within 2% (plus a 5 ms floor for timer
    # noise at smoke scale) of the tracer-off best-of-5 above — the
    # acceptance bound on the instrumentation's cost.
    tracer = get_tracer()
    tracer_was_enabled = tracer.enabled  # honour an outer --trace-out
    enabled_sim = float("inf")
    tracer.enable()
    try:
        for _ in range(5):
            fleet, engine_jobs = _synthesise_for_engine()
            gc.collect()
            started = time.perf_counter()
            simulate_fleet(fleet, engine_jobs, seed=config.seed,
                           failure_model=config.build_failure_model())
            enabled_sim = min(enabled_sim, time.perf_counter() - started)
    finally:
        if not tracer_was_enabled:
            tracer.disable()
    telemetry_ok = enabled_sim <= batched_sim * 1.02 + 0.005
    payload["telemetry"] = {
        "batched_seconds_tracing_off": round(batched_sim, 6),
        "batched_seconds_tracing_on": round(enabled_sim, 6),
        "overhead_fraction": round(enabled_sim / batched_sim - 1.0, 4)
        if batched_sim > 0 else None,
        "within_bound": telemetry_ok,
    }
    print(f"telemetry: batched sim {batched_sim:.3f}s off / "
          f"{enabled_sim:.3f}s on "
          f"({payload['telemetry']['overhead_fraction']:+.1%} overhead)")

    # One fully traced study at the best worker count: its Chrome trace
    # becomes the TRACE_sample.json CI artifact, and the per-phase span
    # totals it accumulates on the registry land in the payload next to
    # the engine numbers.
    if not tracer_was_enabled:
        tracer.reset()
    tracer.enable()
    try:
        run_study(config=config, workers=best, num_shards=args.shards,
                  use_cache=False, progress=None)
    finally:
        if not tracer_was_enabled:
            tracer.disable()
    sample_path = Path(args.trace_sample)
    tracer.write_chrome_trace(sample_path)
    registry = get_registry()
    payload["phase_spans"] = {
        phase: round(registry.value("repro_runner_phase_seconds_total",
                                    phase=phase), 3)
        for phase in ("plan", "synthesis", "simulation", "merge")
    }
    print(f"sample span trace written to {sample_path} "
          f"({len(tracer.spans())} spans)")

    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2))
    print(f"benchmark results written to {output} "
          f"(best speedup {payload['best_speedup']}x at {best} workers, "
          f"batched engine "
          f"{payload['simulation_engines']['speedup']}x vs event)")
    if not byte_identical:
        print("repro bench: batched and event engine traces DIVERGED — "
              "the golden byte-equivalence contract is broken",
              file=sys.stderr)
        return 1
    if not telemetry_ok:
        print("repro bench: span tracing overhead exceeded the 2% bound "
              "on the batched simulation engine", file=sys.stderr)
        return 1
    return 0


# -- scenario subcommands -----------------------------------------------------------


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spec",
        help="scenario suite spec file (.toml or .json); default: the "
             "built-in catalog")
    parser.add_argument(
        "--scenarios",
        help="comma-separated scenario names to run (default: all)")
    parser.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list the available scenarios and exit")
    parser.add_argument(
        "--sweep", action="append", metavar="KIND.FIELD=V1,V2,...",
        help="add a parameter-grid scenario sweeping one perturbation "
             "field over comma-separated values (e.g. "
             "backlog_shift.scale=1,2,4,8); repeat the flag to form the "
             "cartesian grid across several axes")
    parser.add_argument(
        "--replicates", type=int, default=1,
        help="run every scenario as this many seed re-rolls and report "
             "each headline metric as mean ± 95%% CI over the replicates "
             "(default: %(default)s)")
    parser.add_argument(
        "--sequential", action="store_true",
        help="run scenarios one after another, each on its own worker "
             "pool (default: the whole suite interleaves on one shared "
             "pool)")
    parser.add_argument(
        "--progress", action="store_true", dest="shard_progress",
        help="print shard-level progress (completed/total plus a "
             "wall-clock ETA) while the suite runs")


def _resolve_suite(args: argparse.Namespace):
    """(base config, scenarios, catalog) for the scenario subcommands.

    A spec file's ``[study]`` table sets the baseline, but knobs given
    explicitly on the command line (or through the ``REPRO_BENCH_*``
    environment) win over it.
    """
    base = TraceGeneratorConfig(
        total_jobs=args.jobs, months=args.months, seed=args.seed)
    if args.spec:
        spec = load_suite(args.spec)
        catalog = spec.catalog()
        cli_set = {
            name for name, value, default in (
                ("total_jobs", args.jobs, 6000),
                ("months", args.months, 28),
                ("seed", args.seed, 7),
            ) if value != default
        }
        overrides = {key: value
                     for key, value in spec.study_overrides.items()
                     if key not in cli_set}
        if overrides:
            base = dataclasses.replace(base, **overrides)
    else:
        catalog = builtin_scenarios()
    names = None
    if args.scenarios:
        names = tuple(name.strip() for name in args.scenarios.split(",")
                      if name.strip())
    scenarios = list(resolve_scenarios(names, catalog))
    if getattr(args, "sweep", None):
        scenarios.append(sweep_from_flags(args.sweep))
    scenarios = expand_sweeps(scenarios)
    replicates = int(getattr(args, "replicates", 1))
    if replicates != 1:
        # Delegate validation too: replicate_scenarios rejects counts < 1.
        scenarios = replicate_scenarios(scenarios, replicates,
                                        base_seed=base.seed)
    return base, tuple(scenarios), catalog


def _scenario_cache_dir(args: argparse.Namespace) -> Optional[str]:
    """Scenario runs default to an on-disk cache (reuse is the point)."""
    if args.no_cache:
        return None
    return args.cache_dir or ".repro-cache"


def _list_scenarios(catalog) -> int:
    for name in sorted(catalog):
        print(f"{name}: {catalog[name].describe()}")
    return 0


def _event_printer(args: argparse.Namespace):
    """The on_event hook behind ``--progress``: shard counts plus ETA."""
    if not getattr(args, "shard_progress", False):
        return None

    def printer(event) -> None:
        if event.kind == "shard-done":
            eta = (f", eta {event.eta_seconds:.1f}s"
                   if event.eta_seconds is not None else "")
            print(f"[repro] {event.completed}/{event.total} shards "
                  f"({event.phase}{eta})", file=sys.stderr)
        elif event.kind == "study-done":
            print(f"[repro] study {event.key} done "
                  f"({event.detail.get('jobs')} jobs, "
                  f"{event.detail.get('seconds')}s)", file=sys.stderr)
        elif event.kind == "suite-done":
            print(f"[repro] suite done: {event.detail.get('studies')} "
                  f"studies, {event.detail.get('cache_hits')} cache hits "
                  f"in {event.elapsed_seconds:.1f}s", file=sys.stderr)

    return printer


def _run_suite(args: argparse.Namespace):
    base, scenarios, _ = _resolve_suite(args)
    scenario_engine = ScenarioEngine(
        base,
        workers=args.workers,
        num_shards=args.shards,
        cache=_scenario_cache_dir(args),
        progress=_progress(args.quiet),
        suite_scheduling=not args.sequential,
        on_event=_event_printer(args),
        engine=getattr(args, "engine", "batched"),
        transpile_workers=getattr(args, "transpile_workers", None),
    )
    suite = scenario_engine.run(scenarios, use_cache=not args.no_cache)
    if getattr(args, "profile_phases", False):
        for run in suite:
            _print_phase_report(run.name, run.result.timings)
    return suite


def cmd_run_scenarios(args: argparse.Namespace) -> int:
    if args.list_scenarios:
        return _list_scenarios(_resolve_suite(args)[2])
    suite = _run_suite(args)
    print(json.dumps(suite.summary(), indent=2))
    if args.output_dir:
        directory = Path(args.output_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for run in suite:
            path = directory / f"{run.name}.npz"
            run.trace.save(path)
            print(f"scenario {run.name} trace written to {path}")
    return 0


def cmd_compare_scenarios(args: argparse.Namespace) -> int:
    if args.list_scenarios:
        return _list_scenarios(_resolve_suite(args)[2])
    suite = _run_suite(args)
    analysis_started = time.perf_counter()
    report = compare_suite(suite)
    if args.profile_phases:
        _print_phase_report("analysis", {
            "compare": time.perf_counter() - analysis_started})
    markdown = report.render_markdown()
    replicate_counts = {report.baseline_replicates}
    replicate_counts.update(c.replicates for c in report.comparisons)
    replicated = max(replicate_counts) > 1
    if args.report:
        baseline = report.baseline_name
        lines = [
            "# Scenario comparison",
            "",
            f"Per-scenario deltas against the `{baseline}` scenario "
            f"({len(suite)} scenarios, "
            f"{suite.summary()['cache_hits']} served from cache)."
            + (f" Headline values are mean ±95% CI over "
               f"{max(replicate_counts)} seed replicates."
               if replicated else ""),
            "",
            markdown,
            "",
            "## Scenarios",
            "",
        ]
        lines.extend(f"- **{run.name}** — {run.scenario.describe()}"
                     for run in suite)
        Path(args.report).write_text("\n".join(lines) + "\n")
        print(f"markdown report written to {args.report}")
    if args.output:
        base = suite.base_config
        payload = {
            "benchmark": "scenario_comparison",
            "jobs": base.total_jobs,
            "months": base.months,
            "seed": base.seed,
            "replicates": max(replicate_counts),
            "suite": suite.summary(),
            "comparison": report.as_dict(),
        }
        Path(args.output).write_text(json.dumps(payload, indent=2))
        print(f"comparison data written to {args.output}")
    if not args.quiet or not (args.output or args.report):
        print(markdown)
    return 0


# -- service subcommands ------------------------------------------------------------


def _service_url(args: argparse.Namespace) -> str:
    return (args.url or os.environ.get("REPRO_SERVICE_URL")
            or "http://127.0.0.1:8765")


def _study_overrides(args: argparse.Namespace) -> Dict[str, int]:
    """Baseline knobs the user set explicitly (defaults stay server-side)."""
    return {
        name: value
        for name, value, default in (
            ("total_jobs", args.jobs, 6000),
            ("months", args.months, 28),
            ("seed", args.seed, 7),
        ) if value != default
    }


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import StudyService, serve

    config = TraceGeneratorConfig(
        total_jobs=args.jobs, months=args.months, seed=args.seed)
    service = StudyService(
        config,
        workers=args.workers,
        num_shards=args.shards,
        cache_dir=args.cache_dir or ".repro-cache",
        max_cache_bytes=args.max_cache_bytes,
        tenant_quota=args.tenant_quota,
        executors=args.executors,
    )
    print(f"[repro] study service listening on "
          f"http://{args.host}:{args.port} "
          f"({service.pool.workers} workers, {args.executors} executors, "
          f"cache {service.store.root})", file=sys.stderr)
    serve(service, args.host, args.port)
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.scenarios import read_spec_payload
    from repro.service import StudyServiceClient

    payload: Dict[str, object] = {}
    if args.spec:
        payload["suite"] = read_spec_payload(args.spec)
    if args.scenarios:
        payload["scenarios"] = [name.strip()
                                for name in args.scenarios.split(",")
                                if name.strip()]
    if args.sweep:
        payload["sweep"] = list(args.sweep)
    if args.replicates != 1:
        payload["replicates"] = args.replicates
    if args.no_compare:
        payload["compare"] = False
    if args.no_cache:
        payload["use_cache"] = False
    overrides = _study_overrides(args)
    if overrides:
        payload["study"] = overrides

    client = StudyServiceClient(_service_url(args), tenant=args.tenant)
    snapshot = client.submit(payload)
    job_id = snapshot["job"]
    print(f"[repro] submitted {job_id} as tenant {args.tenant!r}",
          file=sys.stderr)
    if args.detach:
        print(json.dumps(snapshot, indent=2))
        return 0
    for event in client.events(job_id):
        if not args.quiet:
            print(f"[repro] {json.dumps(event)}", file=sys.stderr)
    final = client.job(job_id)
    print(json.dumps(final, indent=2))
    return 0 if final.get("state") == "done" else 1


def cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service import StudyServiceClient

    client = StudyServiceClient(_service_url(args), tenant=args.tenant)
    if args.cancel:
        print(json.dumps(client.cancel(args.cancel), indent=2))
        return 0
    if args.job:
        print(json.dumps(client.job(args.job), indent=2))
        return 0
    jobs = client.jobs(args.tenant if args.mine else None)
    print(json.dumps({"jobs": jobs}, indent=2))
    return 0


def cmd_fetch(args: argparse.Namespace) -> int:
    from repro.service import StudyServiceClient

    client = StudyServiceClient(_service_url(args), tenant=args.tenant)
    if args.trace:
        output = Path(args.output or f"trace-{args.trace}.npz")
        # Stream chunks straight to the file: a multi-month trace body
        # must never be buffered whole in this process.
        written = client.fetch_trace_to(args.trace, output)
        print(f"trace {args.trace} written to {output} "
              f"({written} bytes)")
        return 0
    if args.comparison:
        payload = client.fetch_comparison(args.comparison)
        if args.output:
            Path(args.output).write_text(json.dumps(payload, indent=2))
            print(f"comparison written to {args.output}")
        else:
            print(json.dumps(payload, indent=2))
        return 0
    if args.job:
        print(json.dumps(client.result(args.job), indent=2))
        return 0
    print("repro fetch: pass --trace FINGERPRINT, --comparison KEY "
          "or --job ID", file=sys.stderr)
    return 2


def cmd_metrics(args: argparse.Namespace) -> int:
    if args.local:
        registry = get_registry()
        if args.json:
            print(json.dumps(registry.snapshot(), indent=2))
        else:
            print(render_prometheus(registry), end="")
        return 0
    from repro.service import StudyServiceClient

    client = StudyServiceClient(_service_url(args), tenant=args.tenant)
    text = client.metrics()
    if args.json:
        from repro.telemetry import parse_prometheus_text

        print(json.dumps(parse_prometheus_text(text), indent=2,
                         sort_keys=True))
    else:
        print(text, end="")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.runner import TraceCache
    from repro.transpiler.cache import TranspileCache

    root = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") \
        or ".repro-cache"
    cache = TraceCache(root)
    transpile_cache = TranspileCache(root)
    entries = cache.entries()
    transpile_entries = transpile_cache.entries()
    if args.prune:
        if args.max_bytes is None:
            print("repro cache: --prune requires --max-bytes",
                  file=sys.stderr)
            return 2
        # Traces dwarf transpile summaries, so the byte budget applies to
        # each namespace independently: pruning traces never starves the
        # (tiny, expensive-to-refill) transpile entries, and vice versa.
        evicted = cache.prune(args.max_bytes)
        transpile_evicted = transpile_cache.prune(args.max_bytes)
        print(json.dumps({
            "root": str(cache.root),
            "evicted": [entry.as_dict() for entry in evicted],
            "remaining_bytes": cache.total_bytes(),
            "transpile_evicted": [entry.as_dict()
                                  for entry in transpile_evicted],
            "transpile_remaining_bytes": transpile_cache.total_bytes(),
        }, indent=2))
        return 0
    payload: Dict[str, object] = {
        "root": str(cache.root),
        "entries": len(entries),
        "total_bytes": sum(entry.size_bytes for entry in entries),
        "transpile_entries": len(transpile_entries),
        "transpile_total_bytes": sum(entry.size_bytes
                                     for entry in transpile_entries),
    }
    if args.list_entries:
        payload["cache"] = [entry.as_dict() for entry in entries]
        payload["transpile_cache"] = [entry.as_dict()
                                      for entry in transpile_entries]
    print(json.dumps(payload, indent=2))
    return 0


# -- parser -------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the IISWC'21 quantum-cloud "
                    "characterisation study.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run-study", help="generate the merged study trace in parallel")
    _add_generation_arguments(run_parser)
    run_parser.add_argument(
        "--output",
        help="write the trace to this path (.npz, .json or .csv)")
    run_parser.set_defaults(handler=cmd_run_study)

    figures_parser = subparsers.add_parser(
        "figures", help="reproduce the paper's trace-driven figures")
    _add_generation_arguments(figures_parser)
    figures_parser.add_argument(
        "--trace",
        help="reuse a trace file (.npz/.json/.csv) instead of generating one")
    figures_parser.add_argument(
        "--output", help="write the figure data as JSON to this path")
    figures_parser.add_argument(
        "--max-rows", type=int, default=12,
        help="rows per rendered table (default: %(default)s)")
    figures_parser.set_defaults(handler=cmd_figures)

    report_parser = subparsers.add_parser(
        "report", help="fleet dashboard plus the full reproduced study")
    _add_generation_arguments(report_parser)
    report_parser.add_argument(
        "--trace",
        help="reuse a trace file (.npz/.json/.csv) instead of generating one")
    report_parser.add_argument(
        "--output", help="write the full report as JSON to this path")
    report_parser.add_argument(
        "--max-rows", type=int, default=12,
        help="rows per rendered table (default: %(default)s)")
    report_parser.set_defaults(handler=cmd_report)

    bench_parser = subparsers.add_parser(
        "bench", help="measure runner speedup and write BENCH_runner.json")
    _add_generation_arguments(bench_parser)
    bench_parser.add_argument(
        "--worker-counts", default=f"1,{default_workers()}",
        help="comma-separated worker counts to time (default: %(default)s)")
    bench_parser.add_argument(
        "--output", default="BENCH_runner.json",
        help="artifact path (default: %(default)s)")
    bench_parser.add_argument(
        "--trace-sample", default="TRACE_sample.json", metavar="FILE",
        help="write the traced sample study's Chrome trace-event JSON "
             "here (default: %(default)s)")
    bench_parser.set_defaults(handler=cmd_bench)

    export_parser = subparsers.add_parser(
        "export",
        help="export a trace for external notebooks "
             "(Parquet/Feather via optional pyarrow, or csv/json/npz)")
    _add_generation_arguments(export_parser)
    export_parser.add_argument(
        "--trace",
        help="export this trace file (.npz/.json/.csv) instead of "
             "generating one")
    export_parser.add_argument(
        "--output", required=True,
        help="destination path; the suffix picks the format unless "
             "--format is given")
    export_parser.add_argument(
        "--format", choices=_EXPORT_FORMATS, default=None,
        help="export format (default: inferred from the --output suffix)")
    export_parser.set_defaults(handler=cmd_export)

    run_scenarios_parser = subparsers.add_parser(
        "run-scenarios",
        help="execute declarative what-if scenarios through the runner")
    _add_generation_arguments(run_scenarios_parser)
    _add_scenario_arguments(run_scenarios_parser)
    run_scenarios_parser.add_argument(
        "--output-dir",
        help="write each scenario's trace as <name>.npz into this directory")
    run_scenarios_parser.set_defaults(handler=cmd_run_scenarios)

    compare_parser = subparsers.add_parser(
        "compare-scenarios",
        help="run scenarios and emit per-scenario deltas vs the baseline")
    _add_generation_arguments(compare_parser)
    _add_scenario_arguments(compare_parser)
    compare_parser.add_argument(
        "--output",
        help="write the comparison (plus run timings) as JSON to this path")
    compare_parser.add_argument(
        "--report", help="write a markdown scenario report to this path")
    compare_parser.set_defaults(handler=cmd_compare_scenarios)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the study-service gateway (multi-tenant HTTP server "
             "over one shared worker pool)")
    _add_generation_arguments(serve_parser)
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: %(default)s)")
    serve_parser.add_argument(
        "--port", type=int, default=env_int("REPRO_SERVICE_PORT", 8765),
        help="listen port (default: %(default)s)")
    serve_parser.add_argument(
        "--tenant-quota", type=int, default=8,
        help="max queued+running jobs per tenant (default: %(default)s)")
    serve_parser.add_argument(
        "--executors", type=int, default=2,
        help="concurrent jobs multiplexed onto the shared pool "
             "(default: %(default)s)")
    serve_parser.add_argument(
        "--max-cache-bytes", type=int, default=None,
        help="LRU-evict the result store down to this many bytes after "
             "each job (default: unbounded)")
    serve_parser.set_defaults(handler=cmd_serve)

    def _add_client_arguments(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--url", default=None,
            help="gateway base URL (default: $REPRO_SERVICE_URL or "
                 "http://127.0.0.1:8765)")
        parser.add_argument(
            "--tenant", default="default",
            help="tenant to act as (default: %(default)s)")

    submit_parser = subparsers.add_parser(
        "submit", help="submit a scenario suite to a running study service")
    _add_generation_arguments(submit_parser)
    _add_client_arguments(submit_parser)
    submit_parser.add_argument(
        "--spec", help="scenario suite spec file (.toml or .json) to "
                       "submit (default: the server's built-in catalog)")
    submit_parser.add_argument(
        "--scenarios",
        help="comma-separated scenario names to run (default: all)")
    submit_parser.add_argument(
        "--sweep", action="append", metavar="KIND.FIELD=V1,V2,...",
        help="sweep axis, as in run-scenarios (repeatable)")
    submit_parser.add_argument(
        "--replicates", type=int, default=1,
        help="seed re-rolls per scenario (default: %(default)s)")
    submit_parser.add_argument(
        "--no-compare", action="store_true",
        help="skip the baseline-delta comparison on the server")
    submit_parser.add_argument(
        "--detach", action="store_true",
        help="return after submission instead of streaming events")
    submit_parser.set_defaults(handler=cmd_submit)

    jobs_parser = subparsers.add_parser(
        "jobs", help="list, inspect or cancel study-service jobs")
    _add_client_arguments(jobs_parser)
    jobs_parser.add_argument("--job", help="show one job's status")
    jobs_parser.add_argument("--cancel", metavar="JOB",
                             help="cancel a queued or running job")
    jobs_parser.add_argument(
        "--mine", action="store_true",
        help="only list this tenant's jobs")
    jobs_parser.set_defaults(handler=cmd_jobs)

    fetch_parser = subparsers.add_parser(
        "fetch", help="download results from a study service")
    _add_client_arguments(fetch_parser)
    fetch_parser.add_argument(
        "--trace", metavar="FINGERPRINT",
        help="fetch a finished trace by config fingerprint (.npz bytes)")
    fetch_parser.add_argument(
        "--comparison", metavar="KEY",
        help="fetch a stored suite comparison by content key")
    fetch_parser.add_argument("--job", help="fetch a job's result summary")
    fetch_parser.add_argument(
        "--output", help="write the fetched payload to this path")
    fetch_parser.set_defaults(handler=cmd_fetch)

    metrics_parser = subparsers.add_parser(
        "metrics",
        help="dump the metrics registry in Prometheus text format "
             "(scraped from a gateway's /metrics, or --local)")
    _add_client_arguments(metrics_parser)
    metrics_parser.add_argument(
        "--local", action="store_true",
        help="dump this process's registry instead of scraping a gateway")
    metrics_parser.add_argument(
        "--json", action="store_true",
        help="emit parsed samples as JSON instead of the raw exposition")
    metrics_parser.set_defaults(handler=cmd_metrics)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or LRU-prune the on-disk trace and "
                      "transpile caches")
    cache_parser.add_argument(
        "--cache-dir", default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)")
    cache_parser.add_argument(
        "--list", action="store_true", dest="list_entries",
        help="list every entry (key, size, recency), LRU first")
    cache_parser.add_argument(
        "--prune", action="store_true",
        help="evict least-recently-used entries down to --max-bytes")
    cache_parser.add_argument(
        "--max-bytes", type=int, default=None,
        help="byte budget for --prune (0 clears the cache)")
    cache_parser.set_defaults(handler=cmd_cache)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    budget = getattr(args, "memory_budget", None)
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        get_tracer().enable()
    try:
        if budget is not None:
            set_memory_budget(budget)
        return int(args.handler(args))
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"repro: error: {exc.filename or exc} not found", file=sys.stderr)
        return 2
    finally:
        if trace_out:
            tracer = get_tracer()
            tracer.disable()
            path = tracer.write_chrome_trace(trace_out)
            print(f"[repro] span trace written to {path} "
                  f"({len(tracer.spans())} spans)", file=sys.stderr)


if __name__ == "__main__":
    raise SystemExit(main())
