"""Public vs privileged access comparison.

The paper repeatedly contrasts the two access classes: the studied jobs are
"a mix of public and privileged jobs" (Fig. 3), public machines carry far
more load (Fig. 9) and queue far longer (Fig. 10), while privileged access
usually waits an hour or less.  This module quantifies that split for a
trace so the comparison can be reported (and asserted) directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.stats import DistributionSummary, summarize
from repro.core.exceptions import AnalysisError
from repro.workloads.trace import TraceDataset


@dataclass(frozen=True)
class AccessClassProfile:
    """Aggregate behaviour of one access class (public or privileged)."""

    access: str
    jobs: int
    job_share: float
    circuit_share: float
    queue_minutes: DistributionSummary
    run_minutes: DistributionSummary
    median_queue_to_run_ratio: float
    crossover_fraction: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "access": self.access,
            "jobs": self.jobs,
            "job_share": self.job_share,
            "circuit_share": self.circuit_share,
            "median_queue_minutes": self.queue_minutes.median,
            "p90_queue_minutes": self.queue_minutes.p90,
            "median_run_minutes": self.run_minutes.median,
            "median_queue_to_run_ratio": self.median_queue_to_run_ratio,
            "crossover_fraction": self.crossover_fraction,
        }


def access_class_profiles(trace: TraceDataset) -> Dict[str, AccessClassProfile]:
    """Per-access-class aggregates over a trace (keys: "public", "privileged")."""
    if len(trace) == 0:
        raise AnalysisError("trace is empty")
    total_jobs = len(trace)
    total_circuits = trace.total_circuits()
    profiles: Dict[str, AccessClassProfile] = {}
    for access in ("public", "privileged"):
        subset = trace.where(trace.mask_equal("access", access))
        if len(subset) == 0:
            continue
        queue_minutes = subset.numeric_column("queue_minutes")
        run_minutes = subset.numeric_column("run_minutes")
        ratios = subset.numeric_column("queue_to_run_ratio")
        started = ~np.isnan(subset.values("start_time"))
        started_jobs = int(started.sum())
        crossed = int((subset.values("crossed_calibration") & started).sum())
        if not queue_minutes.size or not run_minutes.size or not ratios.size:
            raise AnalysisError(
                f"access class {access!r} has no completed jobs to summarise"
            )
        profiles[access] = AccessClassProfile(
            access=access,
            jobs=len(subset),
            job_share=len(subset) / total_jobs,
            circuit_share=subset.total_circuits() / max(total_circuits, 1),
            queue_minutes=summarize(queue_minutes),
            run_minutes=summarize(run_minutes),
            median_queue_to_run_ratio=float(np.median(ratios)),
            crossover_fraction=crossed / started_jobs if started_jobs else 0.0,
        )
    if not profiles:
        raise AnalysisError("trace contains no recognised access classes")
    return profiles


def public_to_privileged_queue_ratio(trace: TraceDataset) -> float:
    """How much longer public-machine jobs queue than privileged ones (medians)."""
    profiles = access_class_profiles(trace)
    if "public" not in profiles or "privileged" not in profiles:
        raise AnalysisError("trace does not contain both access classes")
    privileged_median = profiles["privileged"].queue_minutes.median
    if privileged_median <= 0:
        return float("inf")
    return profiles["public"].queue_minutes.median / privileged_median
