"""Calibration-crossover analysis (Fig. 12 of the paper).

* Fig. 12a — the fraction of jobs compiled in one calibration epoch but
  executed in a later one (~22 % in the paper).
* Fig. 12b — the same circuit compiled against two consecutive calibration
  snapshots produces different noise-aware layouts; the helper here
  quantifies how different.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.core.exceptions import AnalysisError
from repro.devices.backend import Backend
from repro.transpiler.presets import transpile
from repro.workloads.trace import TraceDataset


@dataclass(frozen=True)
class CrossoverStatistics:
    """Fig. 12a summary."""

    total_jobs: int
    crossed_jobs: int

    @property
    def crossover_fraction(self) -> float:
        if self.total_jobs == 0:
            return 0.0
        return self.crossed_jobs / self.total_jobs

    @property
    def intra_calibration_fraction(self) -> float:
        return 1.0 - self.crossover_fraction


def crossover_statistics(trace: TraceDataset) -> CrossoverStatistics:
    """Count calibration crossovers among jobs that actually started."""
    started = ~np.isnan(trace.values("start_time"))
    total = int(started.sum())
    if total == 0:
        raise AnalysisError("no started jobs in the trace")
    crossed = int((trace.values("crossed_calibration") & started).sum())
    return CrossoverStatistics(total_jobs=total, crossed_jobs=crossed)


@dataclass(frozen=True)
class LayoutDrift:
    """Fig. 12b summary: how compilation differs across calibration epochs."""

    machine: str
    epoch_a: int
    epoch_b: int
    layout_a: Dict[int, int]
    layout_b: Dict[int, int]
    cx_count_a: int
    cx_count_b: int

    @property
    def layouts_differ(self) -> bool:
        return self.layout_a != self.layout_b

    @property
    def moved_qubits(self) -> int:
        """Number of virtual qubits whose physical assignment changed."""
        moved = 0
        for virtual, physical in self.layout_a.items():
            if self.layout_b.get(virtual) != physical:
                moved += 1
        return moved


def layout_drift_between_epochs(
    circuit: QuantumCircuit,
    backend: Backend,
    epoch_a: int = 0,
    epoch_b: int = 1,
    optimization_level: int = 3,
    seed: int = 11,
) -> LayoutDrift:
    """Compile the same circuit against two calibration epochs (Fig. 12b)."""
    if epoch_a == epoch_b:
        raise AnalysisError("epochs must differ to measure drift")
    time_a = backend.calibration_model.epoch_start(epoch_a) + 3600.0
    time_b = backend.calibration_model.epoch_start(epoch_b) + 3600.0
    result_a = transpile(circuit, backend, optimization_level=optimization_level,
                         seed=seed, compile_time=time_a)
    result_b = transpile(circuit, backend, optimization_level=optimization_level,
                         seed=seed, compile_time=time_b)
    layout_a = result_a.layout.as_dict() if result_a.layout else {}
    layout_b = result_b.layout.as_dict() if result_b.layout else {}
    # Restrict to the circuit's own (non-ancilla) qubits.
    layout_a = {v: p for v, p in layout_a.items() if v < circuit.num_qubits}
    layout_b = {v: p for v, p in layout_b.items() if v < circuit.num_qubits}
    return LayoutDrift(
        machine=backend.name,
        epoch_a=epoch_a,
        epoch_b=epoch_b,
        layout_a=layout_a,
        layout_b=layout_b,
        cx_count_a=result_a.circuit.cx_count,
        cx_count_b=result_b.circuit.cx_count,
    )
