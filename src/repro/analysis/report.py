"""Plain-text rendering of figure data series.

The benchmark harness prints each reproduced figure as rows/series so the
output can be compared side-by-side with the paper.  These helpers keep the
formatting consistent across benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


@dataclass
class FigureSeries:
    """One named data series of a reproduced figure."""

    figure: str
    name: str
    x_label: str
    y_label: str
    x: List[object] = field(default_factory=list)
    y: List[Number] = field(default_factory=list)

    def add(self, x_value: object, y_value: Number) -> None:
        self.x.append(x_value)
        self.y.append(y_value)

    def as_rows(self) -> List[Dict[str, object]]:
        return [{self.x_label: xv, self.y_label: yv}
                for xv, yv in zip(self.x, self.y)]


def _format_value(value: object, precision: int = 3) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(title: str, rows: Sequence[Mapping[str, object]],
                 max_rows: Optional[int] = None) -> str:
    """Render a list of dict rows as an aligned text table."""
    lines = [f"== {title} =="]
    if not rows:
        lines.append("(no data)")
        return "\n".join(lines)
    shown = list(rows if max_rows is None else rows[:max_rows])
    columns = list(shown[0].keys())
    formatted = [
        {col: _format_value(row.get(col, "")) for col in columns} for row in shown
    ]
    widths = {
        col: max(len(col), max(len(row[col]) for row in formatted))
        for col in columns
    }
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[col] for col in columns))
    for row in formatted:
        lines.append("  ".join(row[col].ljust(widths[col]) for col in columns))
    if max_rows is not None and len(rows) > max_rows:
        lines.append(f"... ({len(rows) - max_rows} more rows)")
    return "\n".join(lines)


def render_series(series: FigureSeries, max_rows: Optional[int] = 30) -> str:
    """Render one figure series as a text table."""
    title = f"{series.figure}: {series.name}"
    return render_table(title, series.as_rows(), max_rows=max_rows)
