"""Overall system trends (Section III-A of the paper).

* Fig. 2a — cumulative machine trials per month over the study window.
* Fig. 2b — breakdown of job terminal statuses (DONE / ERROR / CANCELLED).

The monthly aggregation runs as integer scatter-adds over the trace's month
column rather than a per-record walk; only the three columns involved are
materialised (block-streamed under the chunked data plane), never the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.exceptions import AnalysisError
from repro.core.types import JobStatus
from repro.workloads.trace import TraceDataset


@dataclass(frozen=True)
class MonthlyTrials:
    """Machine trials submitted in one month plus the running total."""

    month_index: int
    jobs: int
    circuits: int
    trials: int
    cumulative_trials: int


def cumulative_trials_by_month(trace: TraceDataset) -> List[MonthlyTrials]:
    """Fig. 2a series: cumulative machine trials month by month."""
    if len(trace) == 0:
        raise AnalysisError("trace is empty")
    months = trace.values("month_index")
    batch = trace.values("batch_size")
    trials = trace.values("total_trials")
    first = int(months.min())
    span = int(months.max()) - first + 1
    offsets = months - first
    job_counts = np.zeros(span, dtype=np.int64)
    circuit_counts = np.zeros(span, dtype=np.int64)
    trial_counts = np.zeros(span, dtype=np.int64)
    np.add.at(job_counts, offsets, 1)
    np.add.at(circuit_counts, offsets, batch)
    np.add.at(trial_counts, offsets, trials)
    cumulative = np.cumsum(trial_counts)
    return [
        MonthlyTrials(
            month_index=first + offset,
            jobs=int(job_counts[offset]),
            circuits=int(circuit_counts[offset]),
            trials=int(trial_counts[offset]),
            cumulative_trials=int(cumulative[offset]),
        )
        for offset in range(span)
    ]


def status_breakdown(trace: TraceDataset) -> Dict[str, float]:
    """Fig. 2b series: fraction of jobs per terminal status."""
    if len(trace) == 0:
        raise AnalysisError("trace is empty")
    counts = trace.status_counts()
    total = sum(counts.values())
    breakdown = {status.value: 0.0 for status in
                 (JobStatus.DONE, JobStatus.ERROR, JobStatus.CANCELLED)}
    for status, count in counts.items():
        breakdown[status] = count / total
    return breakdown


def wasted_execution_fraction(trace: TraceDataset) -> float:
    """Fraction of jobs that did not execute cleanly (insight 1: ~5 %+)."""
    breakdown = status_breakdown(trace)
    return 1.0 - breakdown.get(JobStatus.DONE.value, 0.0)


def jobs_per_machine(trace: TraceDataset) -> Dict[str, int]:
    """Number of studied jobs per machine."""
    return trace.value_counts("machine")
