"""Overall system trends (Section III-A of the paper).

* Fig. 2a — cumulative machine trials per month over the study window.
* Fig. 2b — breakdown of job terminal statuses (DONE / ERROR / CANCELLED).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.exceptions import AnalysisError
from repro.core.types import JobStatus
from repro.workloads.trace import TraceDataset


@dataclass(frozen=True)
class MonthlyTrials:
    """Machine trials submitted in one month plus the running total."""

    month_index: int
    jobs: int
    circuits: int
    trials: int
    cumulative_trials: int


def cumulative_trials_by_month(trace: TraceDataset) -> List[MonthlyTrials]:
    """Fig. 2a series: cumulative machine trials month by month."""
    if len(trace) == 0:
        raise AnalysisError("trace is empty")
    by_month = trace.group_by_month()
    months = sorted(by_month)
    series: List[MonthlyTrials] = []
    running = 0
    for month in range(months[0], months[-1] + 1):
        subset = by_month.get(month, TraceDataset())
        trials = subset.total_trials()
        running += trials
        series.append(MonthlyTrials(
            month_index=month,
            jobs=len(subset),
            circuits=subset.total_circuits(),
            trials=trials,
            cumulative_trials=running,
        ))
    return series


def status_breakdown(trace: TraceDataset) -> Dict[str, float]:
    """Fig. 2b series: fraction of jobs per terminal status."""
    if len(trace) == 0:
        raise AnalysisError("trace is empty")
    counts = trace.status_counts()
    total = sum(counts.values())
    breakdown = {status.value: 0.0 for status in
                 (JobStatus.DONE, JobStatus.ERROR, JobStatus.CANCELLED)}
    for status, count in counts.items():
        breakdown[status] = count / total
    return breakdown


def wasted_execution_fraction(trace: TraceDataset) -> float:
    """Fraction of jobs that did not execute cleanly (insight 1: ~5 %+)."""
    breakdown = status_breakdown(trace)
    return 1.0 - breakdown.get(JobStatus.DONE.value, 0.0)


def jobs_per_machine(trace: TraceDataset) -> Dict[str, int]:
    """Number of studied jobs per machine."""
    counts: Dict[str, int] = {}
    for record in trace:
        counts[record.machine] = counts.get(record.machine, 0) + 1
    return dict(sorted(counts.items()))
