"""One-call reproduction of every trace-driven figure.

:func:`reproduce_all` runs the analyses behind Figures 2a, 2b, 3, 4, 8, 9,
10, 11, 12a, 13 and 14 on a trace (the figures that only need the trace and
the fleet — the compile-time and POS figures 5, 6, 7, 12b, 15, 16 need the
transpiler/prediction machinery and have their own entry points in the
benchmark harness).  The result is a :class:`ReproductionReport` that can be
rendered as text or exported as a JSON-serialisable dictionary, which is how
the examples and any downstream notebook consume the study in one shot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.calibration import crossover_statistics
from repro.analysis.execution import (
    batch_runtime_trend,
    run_time_by_batch_size,
    run_time_by_machine,
)
from repro.analysis.jobs import cumulative_trials_by_month, status_breakdown
from repro.analysis.machines import (
    bisection_bandwidth_table,
    pending_jobs_by_machine,
    utilization_by_machine,
)
from repro.analysis.queuing import (
    per_circuit_queue_by_batch_size,
    queue_time_by_batch_size,
    queue_time_by_machine,
    queue_time_percentile_report,
    queue_to_run_ratios,
    ratio_report,
    report_from_sorted_minutes,
    sorted_queue_times_minutes,
)
from repro.analysis.report import render_table
from repro.core.exceptions import AnalysisError
from repro.core.units import DAY_SECONDS
from repro.devices.backend import Backend
from repro.workloads.trace import TraceDataset


@dataclass
class ReproductionReport:
    """Container for every reproduced figure's data."""

    trace_summary: Dict[str, object] = field(default_factory=dict)
    fig2a_cumulative_trials: List[Dict[str, object]] = field(default_factory=list)
    fig2b_status: Dict[str, float] = field(default_factory=dict)
    fig3_queue_report: Dict[str, float] = field(default_factory=dict)
    fig4_ratio_report: Dict[str, float] = field(default_factory=dict)
    fig6_bisection: List[Dict[str, object]] = field(default_factory=list)
    fig8_utilization: Dict[str, Dict[str, float]] = field(default_factory=dict)
    fig9_pending_jobs: Dict[str, float] = field(default_factory=dict)
    fig10_queue_by_machine: Dict[str, Dict[str, float]] = field(default_factory=dict)
    fig11_per_circuit_queue: Dict[str, float] = field(default_factory=dict)
    fig12a_crossover: Dict[str, float] = field(default_factory=dict)
    fig13_run_by_machine: Dict[str, Dict[str, float]] = field(default_factory=dict)
    fig14_batch_trend: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable view of the whole report."""
        return {
            "trace_summary": self.trace_summary,
            "fig2a_cumulative_trials": self.fig2a_cumulative_trials,
            "fig2b_status": self.fig2b_status,
            "fig3_queue_report": self.fig3_queue_report,
            "fig4_ratio_report": self.fig4_ratio_report,
            "fig6_bisection": self.fig6_bisection,
            "fig8_utilization": self.fig8_utilization,
            "fig9_pending_jobs": self.fig9_pending_jobs,
            "fig10_queue_by_machine": self.fig10_queue_by_machine,
            "fig11_per_circuit_queue": self.fig11_per_circuit_queue,
            "fig12a_crossover": self.fig12a_crossover,
            "fig13_run_by_machine": self.fig13_run_by_machine,
            "fig14_batch_trend": self.fig14_batch_trend,
        }

    def render(self, max_rows: int = 12) -> str:
        """Render the report as a sequence of text tables."""
        sections = [
            render_table("trace summary", [self.trace_summary]),
            render_table("Fig. 2a — cumulative trials (last months)",
                         self.fig2a_cumulative_trials[-max_rows:]),
            render_table("Fig. 2b — status breakdown",
                         [{"status": k, "fraction": v}
                          for k, v in sorted(self.fig2b_status.items())]),
            render_table("Fig. 3 — queue-time report", [self.fig3_queue_report]),
            render_table("Fig. 4 — queue:run ratios", [self.fig4_ratio_report]),
            render_table("Fig. 6 — bisection bandwidth", self.fig6_bisection,
                         max_rows=max_rows),
            render_table("Fig. 9 — average pending jobs",
                         [{"machine": m, "pending": v}
                          for m, v in self.fig9_pending_jobs.items()],
                         max_rows=max_rows),
            render_table("Fig. 12a — calibration crossover",
                         [self.fig12a_crossover]),
            render_table("Fig. 14 — batch/runtime trend", [self.fig14_batch_trend]),
        ]
        return "\n\n".join(sections)


def reproduce_all(
    trace: TraceDataset,
    fleet: Optional[Dict[str, Backend]] = None,
    pending_window_start: Optional[float] = None,
) -> ReproductionReport:
    """Run every trace-driven analysis of the paper and bundle the results."""
    if len(trace) == 0:
        raise AnalysisError("cannot reproduce the study from an empty trace")

    report = ReproductionReport()
    report.trace_summary = trace.summary()

    report.fig2a_cumulative_trials = [
        {
            "month": row.month_index,
            "jobs": row.jobs,
            "trials": row.trials,
            "cumulative_trials": row.cumulative_trials,
        }
        for row in cumulative_trials_by_month(trace)
    ]
    report.fig2b_status = status_breakdown(trace)
    report.fig3_queue_report = queue_time_percentile_report(trace).as_dict()

    ratios = ratio_report(trace)
    report.fig4_ratio_report = {
        "fraction_at_or_below_one": ratios.fraction_at_or_below_one,
        "median_ratio": ratios.median_ratio,
        "fraction_at_or_above_hundred": ratios.fraction_at_or_above_hundred,
    }

    report.fig8_utilization = {
        machine: summary.as_dict()
        for machine, summary in utilization_by_machine(trace).items()
    }
    report.fig10_queue_by_machine = {
        machine: summary.as_dict()
        for machine, summary in queue_time_by_machine(trace).items()
    }
    report.fig11_per_circuit_queue = {
        f"{low}-{high}": value
        for (low, high), value in per_circuit_queue_by_batch_size(trace).items()
    }

    crossover = crossover_statistics(trace)
    report.fig12a_crossover = {
        "crossover_fraction": crossover.crossover_fraction,
        "intra_calibration_fraction": crossover.intra_calibration_fraction,
        "jobs": float(crossover.total_jobs),
    }

    report.fig13_run_by_machine = {
        machine: summary.as_dict()
        for machine, summary in run_time_by_machine(trace).items()
    }
    trend = batch_runtime_trend(trace)
    report.fig14_batch_trend = {
        "slope_minutes_per_circuit": trend.slope_minutes_per_circuit,
        "intercept_minutes": trend.intercept_minutes,
        "correlation": trend.correlation,
    }

    if fleet:
        report.fig6_bisection = [
            {
                "machine": row.machine,
                "qubits": row.num_qubits,
                "bisection_bandwidth": row.bisection_bandwidth,
                "access": row.access,
            }
            for row in bisection_bandwidth_table(fleet)
        ]
        window_start = pending_window_start
        if window_start is None:
            # Default to a week near the end of the trace window.
            last_submit = float(trace.values("submit_time").max())
            window_start = max(0.0, last_submit - 14 * DAY_SECONDS)
        report.fig9_pending_jobs = pending_jobs_by_machine(
            fleet, window_start=window_start, trace=trace)
    return report


def trace_figure_suite(trace: TraceDataset,
                       bin_width: int = 100) -> Dict[str, object]:
    """Every purely trace-driven figure computation, as raw data.

    This is the vectorised analysis suite the data-plane benchmark times and
    the golden-equivalence test compares against the row-at-a-time reference
    implementation (:mod:`repro.workloads.rowpath`).  Unlike
    :func:`reproduce_all` it needs no fleet and returns raw arrays/dicts
    rather than a rendered report.
    """
    from repro.analysis.providers import access_class_profiles
    from repro.prediction.features import feature_matrix

    sorted_minutes = sorted_queue_times_minutes(trace)
    suite: Dict[str, object] = {
        "fig2a": [
            (row.month_index, row.jobs, row.circuits, row.trials,
             row.cumulative_trials)
            for row in cumulative_trials_by_month(trace)
        ],
        "fig2b": status_breakdown(trace),
        "fig3_sorted_minutes": sorted_minutes,
        "fig3_report": report_from_sorted_minutes(sorted_minutes).as_dict(),
        "fig4_ratios": queue_to_run_ratios(trace),
        "fig8": {machine: summary.as_dict()
                 for machine, summary in utilization_by_machine(trace).items()},
        "fig10": {machine: summary.as_dict()
                  for machine, summary in queue_time_by_machine(trace).items()},
        "fig11_per_job": {
            key: summary.as_dict()
            for key, summary in
            queue_time_by_batch_size(trace, bin_width=bin_width).items()
        },
        "fig11_per_circuit": per_circuit_queue_by_batch_size(
            trace, bin_width=bin_width),
        "fig12a": crossover_statistics(trace).crossover_fraction,
        "fig13": {machine: summary.as_dict()
                  for machine, summary in run_time_by_machine(trace).items()},
        "fig13_per_circuit": {
            machine: summary.as_dict()
            for machine, summary in
            run_time_by_machine(trace, per_circuit=True).items()
        },
        "fig14_bins": {
            key: summary.as_dict()
            for key, summary in
            run_time_by_batch_size(trace, bin_width=bin_width).items()
        },
    }
    trend = batch_runtime_trend(trace)
    suite["fig14_trend"] = (trend.slope_minutes_per_circuit,
                            trend.intercept_minutes, trend.correlation)
    suite["fig15_features"] = feature_matrix(trace)
    try:
        suite["access_profiles"] = {
            access: profile.as_dict()
            for access, profile in access_class_profiles(trace).items()
        }
    except AnalysisError:
        pass  # small traces may lack one access class entirely
    return suite
