"""Trace analysis: the paper's characterisation study.

Each module maps onto a section of the paper's evaluation:

* :mod:`repro.analysis.stats` — the statistical helpers (percentiles,
  Pearson correlation, coefficient of variation, distribution summaries).
* :mod:`repro.analysis.jobs` — overall system trends: cumulative machine
  trials (Fig. 2a) and execution-status breakdown (Fig. 2b).
* :mod:`repro.analysis.queuing` — queuing-time analyses (Figures 3, 4, 10, 11).
* :mod:`repro.analysis.machines` — machine-level analyses: bisection
  bandwidth (Fig. 6), utilisation (Fig. 8), pending jobs (Fig. 9).
* :mod:`repro.analysis.execution` — execution-time analyses (Figures 13, 14).
* :mod:`repro.analysis.calibration` — calibration-crossover analysis (Fig. 12).
* :mod:`repro.analysis.report` — plain-text figure/series rendering used by
  the benchmark harness.
* :mod:`repro.analysis.compare` — comparative what-if analysis: headline
  metrics and per-scenario deltas against the baseline study.
"""

from repro.analysis.stats import (
    DistributionSummary,
    coefficient_of_variation,
    pearson_correlation,
    percentile,
    summarize,
    cumulative_fraction_below,
    linear_fit,
)
from repro.analysis.jobs import (
    MonthlyTrials,
    cumulative_trials_by_month,
    status_breakdown,
    wasted_execution_fraction,
)
from repro.analysis.queuing import (
    sorted_queue_times_minutes,
    queue_time_percentile_report,
    queue_to_run_ratios,
    ratio_report,
    queue_time_by_machine,
    queue_time_by_batch_size,
    per_circuit_queue_by_batch_size,
)
from repro.analysis.machines import (
    bisection_bandwidth_table,
    utilization_by_machine,
    pending_jobs_by_machine,
    machine_job_share,
)
from repro.analysis.execution import (
    run_time_by_machine,
    run_time_by_batch_size,
    batch_runtime_trend,
)
from repro.analysis.calibration import (
    crossover_statistics,
    layout_drift_between_epochs,
)
from repro.analysis.compare import (
    ComparisonReport,
    ScenarioComparison,
    ScenarioMetrics,
    compare_suite,
    compare_traces,
    fidelity_proxy,
    headline_metrics,
)
from repro.analysis.figures import ReproductionReport, reproduce_all
from repro.analysis.providers import (
    AccessClassProfile,
    access_class_profiles,
    public_to_privileged_queue_ratio,
)
from repro.analysis.report import FigureSeries, render_table, render_series

__all__ = [
    "DistributionSummary",
    "coefficient_of_variation",
    "pearson_correlation",
    "percentile",
    "summarize",
    "cumulative_fraction_below",
    "linear_fit",
    "MonthlyTrials",
    "cumulative_trials_by_month",
    "status_breakdown",
    "wasted_execution_fraction",
    "sorted_queue_times_minutes",
    "queue_time_percentile_report",
    "queue_to_run_ratios",
    "ratio_report",
    "queue_time_by_machine",
    "queue_time_by_batch_size",
    "per_circuit_queue_by_batch_size",
    "bisection_bandwidth_table",
    "utilization_by_machine",
    "pending_jobs_by_machine",
    "machine_job_share",
    "run_time_by_machine",
    "run_time_by_batch_size",
    "batch_runtime_trend",
    "crossover_statistics",
    "layout_drift_between_epochs",
    "ReproductionReport",
    "reproduce_all",
    "ComparisonReport",
    "ScenarioComparison",
    "ScenarioMetrics",
    "compare_suite",
    "compare_traces",
    "fidelity_proxy",
    "headline_metrics",
    "AccessClassProfile",
    "access_class_profiles",
    "public_to_privileged_queue_ratio",
    "FigureSeries",
    "render_table",
    "render_series",
]
