"""Comparative what-if analysis: per-scenario deltas vs the baseline study.

The scenario engine produces one trace per scenario; this module reduces
each trace (plus its scenario fleet) to the paper's headline metrics —
queue-time percentiles, machine utilisation, a fidelity distribution and the
terminal-status mix — and reports every scenario as deltas against the
baseline, as JSON-serialisable data or a markdown table.

Seed replicates (scenarios whose :attr:`~repro.scenarios.scenario.Scenario.
replicate_of` points at a base scenario — :func:`~repro.scenarios.scenario.
replicate_scenarios` generates them) are aggregated, not listed: each
replicate group collapses to one comparison row holding the per-metric mean
and a Student-t 95% confidence interval, so what-if deltas come with
statistical error bars instead of resting on a single seed.

Fidelity is a *trace-level proxy* of the Estimated Success Probability: per
job, the machine-average CX and readout error rates of the calibration in
effect when the job started (drift applied, so calibration-regime scenarios
move it) raised to the job's CX count and width, times a decoherence factor
for the CX-depth critical path.  It preserves the orderings the paper's
Fig. 7 demonstrates without re-transpiling every job.

Every reduction here is column-at-a-time (the fidelity proxy touches four
numeric columns plus per-machine masks), so scenario comparison runs
against chunked traces without the full column set ever being resident —
``compare-scenarios`` works under a resident-bytes budget smaller than one
scenario's column bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import AnalysisError
from repro.core.types import JobStatus
from repro.core.units import HOUR_SECONDS
from repro.devices.backend import Backend
from repro.workloads.trace import TraceDataset

#: (metric, markdown label) pairs of the headline columns in rendered tables.
HEADLINE_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("jobs", "jobs"),
    ("queue_minutes_median", "queue p50 (min)"),
    ("queue_minutes_p90", "queue p90 (min)"),
    ("utilization_mean", "utilisation"),
    ("fidelity_median", "fidelity p50"),
    ("done_fraction", "done frac"),
)


def fidelity_proxy(trace: TraceDataset,
                   fleet: Mapping[str, Backend]) -> np.ndarray:
    """Per-job estimated-success proxy (NaN for jobs that never started).

    Vectorised per machine: calibration lookups are bucketed to the hour of
    the job's start time, so one drifted snapshot serves every job that
    started in that hour.
    """
    size = len(trace)
    esp = np.full(size, np.nan)
    if size == 0:
        return esp
    start = trace.values("start_time")
    cx = trace.values("circuit_cx").astype(float)
    cx_depth = trace.values("circuit_cx_depth").astype(float)
    width = trace.values("circuit_width").astype(float)
    for machine in trace.machines():
        backend = fleet.get(machine)
        if backend is None:
            continue
        indices = np.flatnonzero(trace.mask_equal("machine", machine))
        started = indices[~np.isnan(start[indices])]
        if started.size == 0:
            continue
        hours = (start[started] // HOUR_SECONDS).astype(np.int64)
        for hour in np.unique(hours):
            snapshot = backend.calibration_at(
                (float(hour) + 0.5) * HOUR_SECONDS)
            cx_error = snapshot.average_cx_error()
            readout_error = snapshot.average_readout_error()
            t_effective_us = min(snapshot.average_t1_us(),
                                 snapshot.average_t2_us())
            if snapshot.gates:
                cx_duration_us = float(np.mean(
                    [g.duration_ns for g in snapshot.gates.values()])) / 1000.0
            else:
                cx_duration_us = 0.0
            rows = started[hours == hour]
            duration_us = cx_depth[rows] * cx_duration_us
            decoherence = (np.exp(-duration_us / t_effective_us)
                           if t_effective_us > 0 else 0.0)
            esp[rows] = ((1.0 - cx_error) ** cx[rows]
                         * (1.0 - readout_error) ** width[rows]
                         * decoherence)
    return esp


@dataclass(frozen=True)
class ScenarioMetrics:
    """The headline metrics of one scenario trace."""

    jobs: int
    total_trials: int
    done_fraction: float
    error_fraction: float
    cancelled_fraction: float
    queue_minutes_mean: float
    queue_minutes_p25: float
    queue_minutes_median: float
    queue_minutes_p75: float
    queue_minutes_p90: float
    utilization_mean: float
    utilization_p90: float
    fidelity_mean: float
    fidelity_median: float
    fidelity_p10: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "jobs": float(self.jobs),
            "total_trials": float(self.total_trials),
            "done_fraction": self.done_fraction,
            "error_fraction": self.error_fraction,
            "cancelled_fraction": self.cancelled_fraction,
            "queue_minutes_mean": self.queue_minutes_mean,
            "queue_minutes_p25": self.queue_minutes_p25,
            "queue_minutes_median": self.queue_minutes_median,
            "queue_minutes_p75": self.queue_minutes_p75,
            "queue_minutes_p90": self.queue_minutes_p90,
            "utilization_mean": self.utilization_mean,
            "utilization_p90": self.utilization_p90,
            "fidelity_mean": self.fidelity_mean,
            "fidelity_median": self.fidelity_median,
            "fidelity_p10": self.fidelity_p10,
        }


def _fraction(counts: Dict[str, int], status: JobStatus, total: int) -> float:
    if total == 0:
        return float("nan")
    return counts.get(status.value, 0) / total


def headline_metrics(trace: TraceDataset,
                     fleet: Mapping[str, Backend]) -> ScenarioMetrics:
    """Reduce one scenario trace to the paper's headline metrics."""
    jobs = len(trace)
    if jobs == 0:
        raise AnalysisError("cannot compute scenario metrics of an empty trace")
    counts = trace.status_counts()
    queue = trace.numeric_column("queue_minutes")
    if queue.size:
        q_mean = float(queue.mean())
        q25, q50, q75, q90 = (
            float(v) for v in np.percentile(queue, (25, 50, 75, 90)))
    else:
        q_mean = q25 = q50 = q75 = q90 = float("nan")
    utilization = np.asarray(trace.values("utilization"), dtype=float)
    esp = fidelity_proxy(trace, fleet)
    esp = esp[~np.isnan(esp)]
    if esp.size:
        f_mean = float(esp.mean())
        f10, f50 = (float(v) for v in np.percentile(esp, (10, 50)))
    else:
        f_mean = f10 = f50 = float("nan")
    return ScenarioMetrics(
        jobs=jobs,
        total_trials=trace.total_trials(),
        done_fraction=_fraction(counts, JobStatus.DONE, jobs),
        error_fraction=_fraction(counts, JobStatus.ERROR, jobs),
        cancelled_fraction=_fraction(counts, JobStatus.CANCELLED, jobs),
        queue_minutes_mean=q_mean,
        queue_minutes_p25=q25,
        queue_minutes_median=q50,
        queue_minutes_p75=q75,
        queue_minutes_p90=q90,
        utilization_mean=float(utilization.mean()),
        utilization_p90=float(np.percentile(utilization, 90)),
        fidelity_mean=f_mean,
        fidelity_median=f50,
        fidelity_p10=f10,
    )


@dataclass(frozen=True)
class MetricDelta:
    """One metric of one scenario, against its baseline value."""

    value: float
    baseline: float
    delta: float
    percent: Optional[float]

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "value": self.value,
            "baseline": self.baseline,
            "delta": self.delta,
            "percent": self.percent,
        }


def _delta(value: float, baseline: float) -> MetricDelta:
    delta = value - baseline
    percent: Optional[float] = None
    if baseline == baseline and baseline != 0:
        percent = 100.0 * delta / baseline
    return MetricDelta(value=value, baseline=baseline, delta=delta,
                       percent=percent)


#: Two-sided Student-t critical values at 95% confidence for df = 1..30;
#: larger samples fall back to the normal-approximation 1.96.  Hardcoded so
#: the CI aggregation needs numpy only (no scipy in the image).
_T_CRITICAL_95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def _t_critical(degrees_of_freedom: int) -> float:
    if degrees_of_freedom < 1:
        return float("nan")
    if degrees_of_freedom <= len(_T_CRITICAL_95):
        return _T_CRITICAL_95[degrees_of_freedom - 1]
    return 1.96


@dataclass(frozen=True)
class MetricInterval:
    """Mean ± 95% confidence half-width of one metric over seed replicates."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def as_dict(self) -> Dict[str, float]:
        return {
            "mean": self.mean,
            "half_width": self.half_width,
            "low": self.low,
            "high": self.high,
            "n": float(self.n),
        }


def replicate_interval(values: Sequence[float]) -> MetricInterval:
    """The mean ± Student-t 95% CI of one metric's replicate values.

    Non-finite replicate values (a metric that was undefined in one
    re-roll) are dropped; with fewer than two finite values the half-width
    is NaN — a single seed carries no variance information.
    """
    finite = np.asarray(
        [v for v in values if v == v and not math.isinf(v)], dtype=float)
    n = int(finite.size)
    if n == 0:
        return MetricInterval(mean=float("nan"), half_width=float("nan"), n=0)
    mean = float(finite.mean())
    if n == 1:
        return MetricInterval(mean=mean, half_width=float("nan"), n=1)
    std = float(finite.std(ddof=1))
    half_width = _t_critical(n - 1) * std / math.sqrt(n)
    return MetricInterval(mean=mean, half_width=half_width, n=n)


def aggregate_replicates(
    metrics_list: Sequence[ScenarioMetrics],
) -> Tuple[ScenarioMetrics, Dict[str, MetricInterval]]:
    """Collapse per-replicate metrics into (mean metrics, per-metric CI)."""
    if not metrics_list:
        raise AnalysisError("cannot aggregate an empty replicate group")
    dicts = [metrics.as_dict() for metrics in metrics_list]
    intervals = {
        metric: replicate_interval([d[metric] for d in dicts])
        for metric in dicts[0]
    }
    means = {metric: interval.mean
             for metric, interval in intervals.items()}
    return ScenarioMetrics(**means), intervals


@dataclass
class ScenarioComparison:
    """One scenario's metrics as deltas against the baseline.

    When the scenario ran as several seed replicates, ``metrics`` holds the
    replicate means, ``intervals`` the per-metric 95% CI, and ``replicates``
    the group size; a single-seed scenario has no intervals.
    """

    name: str
    description: str
    metrics: ScenarioMetrics
    deltas: Dict[str, MetricDelta]
    intervals: Optional[Dict[str, MetricInterval]] = None
    replicates: int = 1

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "scenario": self.name,
            "description": self.description,
            "metrics": self.metrics.as_dict(),
            "deltas": {metric: delta.as_dict()
                       for metric, delta in self.deltas.items()},
        }
        if self.intervals is not None:
            payload["replicates"] = self.replicates
            payload["intervals"] = {
                metric: interval.as_dict()
                for metric, interval in self.intervals.items()
            }
        return payload


@dataclass
class ComparisonReport:
    """The full comparative study: baseline metrics + per-scenario deltas."""

    baseline_name: str
    baseline_metrics: ScenarioMetrics
    comparisons: List[ScenarioComparison] = field(default_factory=list)
    baseline_intervals: Optional[Dict[str, MetricInterval]] = None
    baseline_replicates: int = 1

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "baseline": self.baseline_name,
            "baseline_metrics": self.baseline_metrics.as_dict(),
            "scenarios": [c.as_dict() for c in self.comparisons],
        }
        if self.baseline_intervals is not None:
            payload["baseline_replicates"] = self.baseline_replicates
            payload["baseline_intervals"] = {
                metric: interval.as_dict()
                for metric, interval in self.baseline_intervals.items()
            }
        return payload

    def render_markdown(self) -> str:
        """The per-scenario delta table (values + signed % vs baseline).

        Replicated rows render every headline value as ``mean ±hw`` (the
        95% CI half-width over the seed re-rolls).
        """
        header = ["scenario"]
        for _, label in HEADLINE_COLUMNS:
            header.extend([label, "Δ%"])
        lines = [
            "| " + " | ".join(header) + " |",
            "|" + "---|" * len(header),
        ]
        baseline = self.baseline_metrics.as_dict()
        baseline_row = [self.baseline_name]
        for metric, _ in HEADLINE_COLUMNS:
            baseline_row.extend([
                _format_with_interval(
                    baseline[metric],
                    (self.baseline_intervals or {}).get(metric)),
                "—",
            ])
        lines.append("| " + " | ".join(baseline_row) + " |")
        for comparison in self.comparisons:
            row = [comparison.name]
            for metric, _ in HEADLINE_COLUMNS:
                delta = comparison.deltas[metric]
                row.append(_format_with_interval(
                    delta.value,
                    (comparison.intervals or {}).get(metric)))
                row.append(_format_percent(delta.percent))
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)


def _format_value(value: float) -> str:
    if value != value:
        return "n/a"
    # Guard non-finite values before the int() comparison: int(inf) raises
    # OverflowError, and a surge/outage scenario can legitimately push a
    # ratio metric to ±inf.
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.3g}"


def _format_with_interval(value: float,
                          interval: Optional[MetricInterval]) -> str:
    text = _format_value(value)
    if (interval is not None and interval.n > 1
            and interval.half_width == interval.half_width):
        text += f" ±{_format_value(interval.half_width)}"
    return text


def _format_percent(percent: Optional[float]) -> str:
    if percent is None or percent != percent:
        return "n/a"
    return f"{percent:+.1f}%"


def compare_traces(
    baseline_name: str,
    runs: Mapping[str, Tuple[TraceDataset, Mapping[str, Backend]]],
    descriptions: Optional[Mapping[str, str]] = None,
) -> ComparisonReport:
    """Compare scenario traces against the named baseline.

    ``runs`` maps scenario name to ``(trace, fleet)`` — the fleet must be
    the *scenario's* fleet so calibration/backlog perturbations are
    reflected in the fidelity proxy.
    """
    if baseline_name not in runs:
        raise AnalysisError(
            f"baseline scenario {baseline_name!r} is not among the runs "
            f"{sorted(runs)}")
    descriptions = descriptions or {}
    baseline_trace, baseline_fleet = runs[baseline_name]
    baseline_metrics = headline_metrics(baseline_trace, baseline_fleet)
    baseline_dict = baseline_metrics.as_dict()
    report = ComparisonReport(baseline_name=baseline_name,
                              baseline_metrics=baseline_metrics)
    for name, (trace, fleet) in runs.items():
        if name == baseline_name:
            continue
        metrics = headline_metrics(trace, fleet)
        values = metrics.as_dict()
        report.comparisons.append(ScenarioComparison(
            name=name,
            description=str(descriptions.get(name, "")),
            metrics=metrics,
            deltas={metric: _delta(values[metric], baseline_dict[metric])
                    for metric in values},
        ))
    return report


def compare_suite(suite) -> ComparisonReport:
    """Compare a :class:`~repro.scenarios.engine.ScenarioSuiteResult`.

    Seed replicates (runs whose scenario carries ``replicate_of``) are
    grouped under their base scenario and aggregated into mean ± 95% CI
    per headline metric; deltas are taken between group means.  The first
    baseline group (one containing a scenario with no perturbations)
    anchors the deltas; if none exists the suite's first group is used.
    """
    runs = list(suite)
    if not runs:
        raise AnalysisError("the scenario suite is empty")
    groups: Dict[str, List] = {}
    for run in runs:
        base = run.scenario.replicate_of or run.name
        groups.setdefault(base, []).append(run)

    baseline_name = next(
        (name for name, members in groups.items()
         if any(member.scenario.is_baseline for member in members)),
        next(iter(groups)))

    aggregated: Dict[str, Tuple[ScenarioMetrics,
                                Optional[Dict[str, MetricInterval]], int]] = {}
    for name, members in groups.items():
        metrics_list = [headline_metrics(member.trace, member.build_fleet())
                        for member in members]
        if len(metrics_list) == 1:
            aggregated[name] = (metrics_list[0], None, 1)
        else:
            mean_metrics, intervals = aggregate_replicates(metrics_list)
            aggregated[name] = (mean_metrics, intervals, len(metrics_list))

    baseline_metrics, baseline_intervals, baseline_n = aggregated[baseline_name]
    baseline_dict = baseline_metrics.as_dict()
    report = ComparisonReport(
        baseline_name=baseline_name,
        baseline_metrics=baseline_metrics,
        baseline_intervals=baseline_intervals,
        baseline_replicates=baseline_n,
    )
    for name, members in groups.items():
        if name == baseline_name:
            continue
        metrics, intervals, replicates = aggregated[name]
        values = metrics.as_dict()
        report.comparisons.append(ScenarioComparison(
            name=name,
            description=members[0].scenario.description,
            metrics=metrics,
            deltas={metric: _delta(values[metric], baseline_dict[metric])
                    for metric in values},
            intervals=intervals,
            replicates=replicates,
        ))
    return report
