"""Comparative what-if analysis: per-scenario deltas vs the baseline study.

The scenario engine produces one trace per scenario; this module reduces
each trace (plus its scenario fleet) to the paper's headline metrics —
queue-time percentiles, machine utilisation, a fidelity distribution and the
terminal-status mix — and reports every scenario as deltas against the
baseline, as JSON-serialisable data or a markdown table.

Fidelity is a *trace-level proxy* of the Estimated Success Probability: per
job, the machine-average CX and readout error rates of the calibration in
effect when the job started (drift applied, so calibration-regime scenarios
move it) raised to the job's CX count and width, times a decoherence factor
for the CX-depth critical path.  It preserves the orderings the paper's
Fig. 7 demonstrates without re-transpiling every job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.exceptions import AnalysisError
from repro.core.types import JobStatus
from repro.core.units import HOUR_SECONDS
from repro.devices.backend import Backend
from repro.workloads.trace import TraceDataset

#: (metric, markdown label) pairs of the headline columns in rendered tables.
HEADLINE_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("jobs", "jobs"),
    ("queue_minutes_median", "queue p50 (min)"),
    ("queue_minutes_p90", "queue p90 (min)"),
    ("utilization_mean", "utilisation"),
    ("fidelity_median", "fidelity p50"),
    ("done_fraction", "done frac"),
)


def fidelity_proxy(trace: TraceDataset,
                   fleet: Mapping[str, Backend]) -> np.ndarray:
    """Per-job estimated-success proxy (NaN for jobs that never started).

    Vectorised per machine: calibration lookups are bucketed to the hour of
    the job's start time, so one drifted snapshot serves every job that
    started in that hour.
    """
    size = len(trace)
    esp = np.full(size, np.nan)
    if size == 0:
        return esp
    start = trace.values("start_time")
    cx = trace.values("circuit_cx").astype(float)
    cx_depth = trace.values("circuit_cx_depth").astype(float)
    width = trace.values("circuit_width").astype(float)
    for machine in trace.machines():
        backend = fleet.get(machine)
        if backend is None:
            continue
        indices = np.flatnonzero(trace.mask_equal("machine", machine))
        started = indices[~np.isnan(start[indices])]
        if started.size == 0:
            continue
        hours = (start[started] // HOUR_SECONDS).astype(np.int64)
        for hour in np.unique(hours):
            snapshot = backend.calibration_at(
                (float(hour) + 0.5) * HOUR_SECONDS)
            cx_error = snapshot.average_cx_error()
            readout_error = snapshot.average_readout_error()
            t_effective_us = min(snapshot.average_t1_us(),
                                 snapshot.average_t2_us())
            if snapshot.gates:
                cx_duration_us = float(np.mean(
                    [g.duration_ns for g in snapshot.gates.values()])) / 1000.0
            else:
                cx_duration_us = 0.0
            rows = started[hours == hour]
            duration_us = cx_depth[rows] * cx_duration_us
            decoherence = (np.exp(-duration_us / t_effective_us)
                           if t_effective_us > 0 else 0.0)
            esp[rows] = ((1.0 - cx_error) ** cx[rows]
                         * (1.0 - readout_error) ** width[rows]
                         * decoherence)
    return esp


@dataclass(frozen=True)
class ScenarioMetrics:
    """The headline metrics of one scenario trace."""

    jobs: int
    total_trials: int
    done_fraction: float
    error_fraction: float
    cancelled_fraction: float
    queue_minutes_mean: float
    queue_minutes_p25: float
    queue_minutes_median: float
    queue_minutes_p75: float
    queue_minutes_p90: float
    utilization_mean: float
    utilization_p90: float
    fidelity_mean: float
    fidelity_median: float
    fidelity_p10: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "jobs": float(self.jobs),
            "total_trials": float(self.total_trials),
            "done_fraction": self.done_fraction,
            "error_fraction": self.error_fraction,
            "cancelled_fraction": self.cancelled_fraction,
            "queue_minutes_mean": self.queue_minutes_mean,
            "queue_minutes_p25": self.queue_minutes_p25,
            "queue_minutes_median": self.queue_minutes_median,
            "queue_minutes_p75": self.queue_minutes_p75,
            "queue_minutes_p90": self.queue_minutes_p90,
            "utilization_mean": self.utilization_mean,
            "utilization_p90": self.utilization_p90,
            "fidelity_mean": self.fidelity_mean,
            "fidelity_median": self.fidelity_median,
            "fidelity_p10": self.fidelity_p10,
        }


def _fraction(counts: Dict[str, int], status: JobStatus, total: int) -> float:
    if total == 0:
        return float("nan")
    return counts.get(status.value, 0) / total


def headline_metrics(trace: TraceDataset,
                     fleet: Mapping[str, Backend]) -> ScenarioMetrics:
    """Reduce one scenario trace to the paper's headline metrics."""
    jobs = len(trace)
    if jobs == 0:
        raise AnalysisError("cannot compute scenario metrics of an empty trace")
    counts = trace.status_counts()
    queue = trace.numeric_column("queue_minutes")
    if queue.size:
        q_mean = float(queue.mean())
        q25, q50, q75, q90 = (
            float(v) for v in np.percentile(queue, (25, 50, 75, 90)))
    else:
        q_mean = q25 = q50 = q75 = q90 = float("nan")
    utilization = np.asarray(trace.values("utilization"), dtype=float)
    esp = fidelity_proxy(trace, fleet)
    esp = esp[~np.isnan(esp)]
    if esp.size:
        f_mean = float(esp.mean())
        f10, f50 = (float(v) for v in np.percentile(esp, (10, 50)))
    else:
        f_mean = f10 = f50 = float("nan")
    return ScenarioMetrics(
        jobs=jobs,
        total_trials=trace.total_trials(),
        done_fraction=_fraction(counts, JobStatus.DONE, jobs),
        error_fraction=_fraction(counts, JobStatus.ERROR, jobs),
        cancelled_fraction=_fraction(counts, JobStatus.CANCELLED, jobs),
        queue_minutes_mean=q_mean,
        queue_minutes_p25=q25,
        queue_minutes_median=q50,
        queue_minutes_p75=q75,
        queue_minutes_p90=q90,
        utilization_mean=float(utilization.mean()),
        utilization_p90=float(np.percentile(utilization, 90)),
        fidelity_mean=f_mean,
        fidelity_median=f50,
        fidelity_p10=f10,
    )


@dataclass(frozen=True)
class MetricDelta:
    """One metric of one scenario, against its baseline value."""

    value: float
    baseline: float
    delta: float
    percent: Optional[float]

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "value": self.value,
            "baseline": self.baseline,
            "delta": self.delta,
            "percent": self.percent,
        }


def _delta(value: float, baseline: float) -> MetricDelta:
    delta = value - baseline
    percent: Optional[float] = None
    if baseline == baseline and baseline != 0:
        percent = 100.0 * delta / baseline
    return MetricDelta(value=value, baseline=baseline, delta=delta,
                       percent=percent)


@dataclass
class ScenarioComparison:
    """One scenario's metrics as deltas against the baseline."""

    name: str
    description: str
    metrics: ScenarioMetrics
    deltas: Dict[str, MetricDelta]

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.name,
            "description": self.description,
            "metrics": self.metrics.as_dict(),
            "deltas": {metric: delta.as_dict()
                       for metric, delta in self.deltas.items()},
        }


@dataclass
class ComparisonReport:
    """The full comparative study: baseline metrics + per-scenario deltas."""

    baseline_name: str
    baseline_metrics: ScenarioMetrics
    comparisons: List[ScenarioComparison] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "baseline": self.baseline_name,
            "baseline_metrics": self.baseline_metrics.as_dict(),
            "scenarios": [c.as_dict() for c in self.comparisons],
        }

    def render_markdown(self) -> str:
        """The per-scenario delta table (values + signed % vs baseline)."""
        header = ["scenario"]
        for _, label in HEADLINE_COLUMNS:
            header.extend([label, "Δ%"])
        lines = [
            "| " + " | ".join(header) + " |",
            "|" + "---|" * len(header),
        ]
        baseline = self.baseline_metrics.as_dict()
        baseline_row = [self.baseline_name]
        for metric, _ in HEADLINE_COLUMNS:
            baseline_row.extend([_format_value(baseline[metric]), "—"])
        lines.append("| " + " | ".join(baseline_row) + " |")
        for comparison in self.comparisons:
            row = [comparison.name]
            for metric, _ in HEADLINE_COLUMNS:
                delta = comparison.deltas[metric]
                row.append(_format_value(delta.value))
                row.append(_format_percent(delta.percent))
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)


def _format_value(value: float) -> str:
    if value != value:
        return "n/a"
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.3g}"


def _format_percent(percent: Optional[float]) -> str:
    if percent is None or percent != percent:
        return "n/a"
    return f"{percent:+.1f}%"


def compare_traces(
    baseline_name: str,
    runs: Mapping[str, Tuple[TraceDataset, Mapping[str, Backend]]],
    descriptions: Optional[Mapping[str, str]] = None,
) -> ComparisonReport:
    """Compare scenario traces against the named baseline.

    ``runs`` maps scenario name to ``(trace, fleet)`` — the fleet must be
    the *scenario's* fleet so calibration/backlog perturbations are
    reflected in the fidelity proxy.
    """
    if baseline_name not in runs:
        raise AnalysisError(
            f"baseline scenario {baseline_name!r} is not among the runs "
            f"{sorted(runs)}")
    descriptions = descriptions or {}
    baseline_trace, baseline_fleet = runs[baseline_name]
    baseline_metrics = headline_metrics(baseline_trace, baseline_fleet)
    baseline_dict = baseline_metrics.as_dict()
    report = ComparisonReport(baseline_name=baseline_name,
                              baseline_metrics=baseline_metrics)
    for name, (trace, fleet) in runs.items():
        if name == baseline_name:
            continue
        metrics = headline_metrics(trace, fleet)
        values = metrics.as_dict()
        report.comparisons.append(ScenarioComparison(
            name=name,
            description=str(descriptions.get(name, "")),
            metrics=metrics,
            deltas={metric: _delta(values[metric], baseline_dict[metric])
                    for metric in values},
        ))
    return report


def compare_suite(suite) -> ComparisonReport:
    """Compare a :class:`~repro.scenarios.engine.ScenarioSuiteResult`.

    The first baseline-named run (a scenario with no perturbations) anchors
    the deltas; if none exists the suite's first run is used.
    """
    runs = list(suite)
    if not runs:
        raise AnalysisError("the scenario suite is empty")
    baseline_run = next((run for run in runs if run.scenario.is_baseline),
                        runs[0])
    return compare_traces(
        baseline_run.name,
        {run.name: (run.trace, run.build_fleet()) for run in runs},
        descriptions={run.name: run.scenario.description for run in runs},
    )
