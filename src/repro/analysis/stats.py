"""Statistical helpers used across the analyses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import AnalysisError


@dataclass(frozen=True)
class DistributionSummary:
    """Summary statistics of a one-dimensional sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    p90: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p90": self.p90,
            "max": self.maximum,
        }


def _as_array(values: Sequence[float]) -> np.ndarray:
    """Sample as a float array with missing values dropped.

    Columnar callers pass ndarrays using NaN for missing values; legacy
    row-oriented callers pass sequences using ``None``.  Both are filtered.
    """
    if isinstance(values, np.ndarray):
        array = np.asarray(values, dtype=float)
        return array[~np.isnan(array)]
    array = np.asarray([v for v in values if v is not None], dtype=float)
    return array


#: Below this size a sample is sorted once and its percentiles read off the
#: order statistics directly, which avoids np.percentile's per-call fixed
#: overhead (the dominant cost when summarising hundreds of small groups).
_SMALL_SAMPLE_LIMIT = 4096


def _sorted_percentile(ordered: np.ndarray, q: float) -> float:
    """``np.percentile(..., method='linear')`` on an already-sorted sample.

    Replicates NumPy's virtual-index arithmetic (including the gamma >= 0.5
    branch of its interpolation) so the result is bit-identical to calling
    ``np.percentile`` on the unsorted sample; a unit test enforces this.
    """
    size = ordered.size
    virtual = (q / 100.0) * (size - 1)
    previous = int(virtual)
    gamma = virtual - previous
    lower = float(ordered[previous])
    if gamma == 0.0:
        return lower
    upper = float(ordered[min(previous + 1, size - 1)])
    difference = upper - lower
    if gamma >= 0.5:
        return upper - difference * (1.0 - gamma)
    return lower + difference * gamma


def summarize(values: Sequence[float]) -> DistributionSummary:
    """Summarise a sample; raises on empty input.

    Small samples are sorted once and every percentile (plus min/max) is
    read from the order statistics; large samples batch all four
    percentiles into a single ``np.percentile`` partition.  Both paths
    produce values identical to four separate ``np.percentile`` calls.
    """
    array = _as_array(values)
    if array.size == 0:
        raise AnalysisError("cannot summarise an empty sample")
    if array.size <= _SMALL_SAMPLE_LIMIT:
        ordered = np.sort(array)
        p25, median, p75, p90 = (
            _sorted_percentile(ordered, q) for q in (25.0, 50.0, 75.0, 90.0))
        minimum = float(ordered[0])
        maximum = float(ordered[-1])
    else:
        p25, median, p75, p90 = (
            float(v) for v in np.percentile(array, (25, 50, 75, 90)))
        minimum = float(array.min())
        maximum = float(array.max())
    return DistributionSummary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std()),
        minimum=minimum,
        p25=p25,
        median=median,
        p75=p75,
        p90=p90,
        maximum=maximum,
    )


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0-100) of the sample."""
    array = _as_array(values)
    if array.size == 0:
        raise AnalysisError("cannot take a percentile of an empty sample")
    if not 0 <= q <= 100:
        raise AnalysisError("percentile q must be within [0, 100]")
    return float(np.percentile(array, q))


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Std / mean (the spatial-variation metric of Section IV-B)."""
    array = _as_array(values)
    if array.size == 0:
        raise AnalysisError("cannot compute CoV of an empty sample")
    mean = array.mean()
    if mean == 0:
        return 0.0
    return float(array.std() / abs(mean))


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient (the Fig. 15 metric)."""
    x_array = np.asarray(x, dtype=float)
    y_array = np.asarray(y, dtype=float)
    if x_array.size != y_array.size:
        raise AnalysisError("samples must have the same length")
    if x_array.size < 2:
        raise AnalysisError("need at least two points for a correlation")
    x_std = x_array.std()
    y_std = y_array.std()
    if x_std == 0 or y_std == 0:
        return 0.0
    covariance = ((x_array - x_array.mean()) * (y_array - y_array.mean())).mean()
    return float(covariance / (x_std * y_std))


def cumulative_fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of the sample strictly below ``threshold``."""
    array = _as_array(values)
    if array.size == 0:
        raise AnalysisError("cannot compute a fraction of an empty sample")
    return float((array < threshold).mean())


def linear_fit(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float]:
    """Least-squares line ``y = slope * x + intercept`` (the Fig. 14 trend)."""
    x_array = np.asarray(x, dtype=float)
    y_array = np.asarray(y, dtype=float)
    if x_array.size != y_array.size or x_array.size < 2:
        raise AnalysisError("need two equally sized samples with >= 2 points")
    slope, intercept = np.polyfit(x_array, y_array, deg=1)
    return float(slope), float(intercept)


def histogram(values: Sequence[float], bins: int = 20,
              value_range: Optional[Tuple[float, float]] = None
              ) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram counts and bin edges."""
    array = _as_array(values)
    if array.size == 0:
        raise AnalysisError("cannot histogram an empty sample")
    counts, edges = np.histogram(array, bins=bins, range=value_range)
    return counts, edges
