"""Queuing-time analyses (Sections III-B/C and V of the paper).

* Fig. 3  — sorted per-circuit queuing times.
* Fig. 4  — sorted per-job queue:execution ratios.
* Fig. 10 — queue-time distribution per machine.
* Fig. 11 — queue time (per job and per circuit) versus batch size.

All series are computed as column NumPy operations on the columnar
:class:`~repro.workloads.trace.TraceDataset` (missing values are NaN),
touching one column at a time — under the chunked data plane a column is
streamed out of its blocks, so no analysis here ever needs the whole trace
resident, and the per-machine grouping goes through the block-wise
``grouped_values`` primitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.stats import (
    DistributionSummary,
    percentile,
    summarize,
)
from repro.core.exceptions import AnalysisError
from repro.workloads.trace import TraceDataset


def sorted_queue_times_minutes(trace: TraceDataset,
                               per_circuit: bool = True) -> np.ndarray:
    """Fig. 3 series: queue times (minutes), sorted ascending.

    With ``per_circuit=True`` each job's queue time is repeated once per
    circuit in its batch, matching the paper's x-axis of ~600k circuit
    instances.
    """
    minutes = trace.values("queue_minutes")
    valid = ~np.isnan(minutes)
    values = minutes[valid]
    if per_circuit:
        # Sort the ~6k per-job values first, then expand: repeating elements
        # of a sorted array keeps it sorted, so the ~600k-element sort is
        # avoided entirely (the result is identical).
        order = np.argsort(values, kind="stable")
        values = np.repeat(values[order],
                           trace.values("batch_size")[valid][order])
        if values.size == 0:
            raise AnalysisError("no queued jobs in the trace")
        return values
    if values.size == 0:
        raise AnalysisError("no queued jobs in the trace")
    return np.sort(values)


@dataclass(frozen=True)
class QueueTimeReport:
    """Headline queue-time statistics quoted in Section III-B."""

    fraction_under_one_minute: float
    median_minutes: float
    fraction_over_two_hours: float
    fraction_over_one_day: float
    summary: DistributionSummary

    def as_dict(self) -> Dict[str, float]:
        result = {
            "fraction_under_one_minute": self.fraction_under_one_minute,
            "median_minutes": self.median_minutes,
            "fraction_over_two_hours": self.fraction_over_two_hours,
            "fraction_over_one_day": self.fraction_over_one_day,
        }
        result.update({f"queue_{k}": v for k, v in self.summary.as_dict().items()})
        return result


def report_from_sorted_minutes(minutes: np.ndarray) -> QueueTimeReport:
    """The Fig. 3 headline report from a precomputed sorted minutes series.

    Lets callers that already hold the (possibly ~600k-element) sorted
    series avoid expanding it a second time.
    """

    def fraction_below(threshold: float) -> float:
        # The series is sorted, so the strictly-below count is a bisection;
        # the value equals cumulative_fraction_below exactly.
        return float(np.searchsorted(minutes, threshold, side="left")
                     / minutes.size)

    summary = summarize(minutes)
    return QueueTimeReport(
        fraction_under_one_minute=fraction_below(1.0),
        median_minutes=summary.median,
        fraction_over_two_hours=1.0 - fraction_below(120.0),
        fraction_over_one_day=1.0 - fraction_below(1440.0),
        summary=summary,
    )


def queue_time_percentile_report(trace: TraceDataset,
                                 per_circuit: bool = True) -> QueueTimeReport:
    """The headline numbers the paper quotes about Fig. 3."""
    return report_from_sorted_minutes(
        sorted_queue_times_minutes(trace, per_circuit=per_circuit))


def queue_to_run_ratios(trace: TraceDataset) -> np.ndarray:
    """Fig. 4 series: per-job queue:run ratios, sorted ascending."""
    ratios = trace.values("queue_to_run_ratio")
    ratios = ratios[~np.isnan(ratios)]
    if ratios.size == 0:
        raise AnalysisError("no completed jobs with run time in the trace")
    return np.sort(ratios)


@dataclass(frozen=True)
class RatioReport:
    """Headline queue:execution ratio statistics (Section III-C)."""

    fraction_at_or_below_one: float
    median_ratio: float
    fraction_at_or_above_hundred: float
    summary: DistributionSummary


def ratio_report(trace: TraceDataset) -> RatioReport:
    ratios = queue_to_run_ratios(trace)
    return RatioReport(
        fraction_at_or_below_one=float((ratios <= 1.0).mean()),
        median_ratio=percentile(ratios, 50),
        fraction_at_or_above_hundred=float((ratios >= 100.0).mean()),
        summary=summarize(ratios),
    )


def queue_time_by_machine(trace: TraceDataset) -> Dict[str, DistributionSummary]:
    """Fig. 10 series: distribution of per-job queue minutes per machine.

    Streams block-wise through
    :meth:`~repro.workloads.trace.TraceDataset.grouped_values`, so only the
    machine and queue-minute columns of one block are resident at a time.
    """
    result: Dict[str, DistributionSummary] = {}
    for machine, minutes in trace.grouped_values("machine",
                                                 "queue_minutes").items():
        if minutes.size:
            result[machine] = summarize(minutes)
    if not result:
        raise AnalysisError("no queue data in the trace")
    return result


def _batch_bins(max_batch: int = 900, bin_width: int = 100) -> List[Tuple[int, int]]:
    edges = list(range(0, max_batch, bin_width)) + [max_batch]
    return [(edges[i] + 1, edges[i + 1]) for i in range(len(edges) - 1)]


def queue_time_by_batch_size(trace: TraceDataset, bin_width: int = 100
                             ) -> Dict[Tuple[int, int], DistributionSummary]:
    """Fig. 11 (per-job view): queue minutes binned by batch size."""
    minutes = trace.values("queue_minutes")
    batch = trace.values("batch_size")
    valid = ~np.isnan(minutes)
    result: Dict[Tuple[int, int], DistributionSummary] = {}
    for low, high in _batch_bins(bin_width=bin_width):
        values = minutes[valid & (batch >= low) & (batch <= high)]
        if values.size:
            result[(low, high)] = summarize(values)
    if not result:
        raise AnalysisError("no queue data in the trace")
    return result


def per_circuit_queue_by_batch_size(trace: TraceDataset, bin_width: int = 100
                                    ) -> Dict[Tuple[int, int], float]:
    """Fig. 11 (per-circuit view): median effective queue seconds per circuit.

    The paper's third observation on Fig. 11: as batch size grows the
    *effective* per-circuit queue time almost always decreases because the
    whole batch pays the queue once.
    """
    per_circuit = trace.values("per_circuit_queue_seconds")
    batch = trace.values("batch_size")
    valid = ~np.isnan(per_circuit)
    result: Dict[Tuple[int, int], float] = {}
    for low, high in _batch_bins(bin_width=bin_width):
        values = per_circuit[valid & (batch >= low) & (batch <= high)]
        if values.size:
            result[(low, high)] = float(np.median(values))
    if not result:
        raise AnalysisError("no queue data in the trace")
    return result
