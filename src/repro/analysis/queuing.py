"""Queuing-time analyses (Sections III-B/C and V of the paper).

* Fig. 3  — sorted per-circuit queuing times.
* Fig. 4  — sorted per-job queue:execution ratios.
* Fig. 10 — queue-time distribution per machine.
* Fig. 11 — queue time (per job and per circuit) versus batch size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.stats import (
    DistributionSummary,
    cumulative_fraction_below,
    percentile,
    summarize,
)
from repro.core.exceptions import AnalysisError
from repro.workloads.trace import TraceDataset


def sorted_queue_times_minutes(trace: TraceDataset,
                               per_circuit: bool = True) -> np.ndarray:
    """Fig. 3 series: queue times (minutes), sorted ascending.

    With ``per_circuit=True`` each job's queue time is repeated once per
    circuit in its batch, matching the paper's x-axis of ~600k circuit
    instances.
    """
    values: List[float] = []
    for record in trace:
        if record.queue_minutes is None:
            continue
        repeats = record.batch_size if per_circuit else 1
        values.extend([record.queue_minutes] * repeats)
    if not values:
        raise AnalysisError("no queued jobs in the trace")
    return np.sort(np.asarray(values, dtype=float))


@dataclass(frozen=True)
class QueueTimeReport:
    """Headline queue-time statistics quoted in Section III-B."""

    fraction_under_one_minute: float
    median_minutes: float
    fraction_over_two_hours: float
    fraction_over_one_day: float
    summary: DistributionSummary

    def as_dict(self) -> Dict[str, float]:
        result = {
            "fraction_under_one_minute": self.fraction_under_one_minute,
            "median_minutes": self.median_minutes,
            "fraction_over_two_hours": self.fraction_over_two_hours,
            "fraction_over_one_day": self.fraction_over_one_day,
        }
        result.update({f"queue_{k}": v for k, v in self.summary.as_dict().items()})
        return result


def queue_time_percentile_report(trace: TraceDataset,
                                 per_circuit: bool = True) -> QueueTimeReport:
    """The headline numbers the paper quotes about Fig. 3."""
    minutes = sorted_queue_times_minutes(trace, per_circuit=per_circuit)
    return QueueTimeReport(
        fraction_under_one_minute=cumulative_fraction_below(minutes, 1.0),
        median_minutes=percentile(minutes, 50),
        fraction_over_two_hours=1.0 - cumulative_fraction_below(minutes, 120.0),
        fraction_over_one_day=1.0 - cumulative_fraction_below(minutes, 1440.0),
        summary=summarize(minutes),
    )


def queue_to_run_ratios(trace: TraceDataset) -> np.ndarray:
    """Fig. 4 series: per-job queue:run ratios, sorted ascending."""
    ratios = [
        record.queue_to_run_ratio
        for record in trace
        if record.queue_to_run_ratio is not None
    ]
    if not ratios:
        raise AnalysisError("no completed jobs with run time in the trace")
    return np.sort(np.asarray(ratios, dtype=float))


@dataclass(frozen=True)
class RatioReport:
    """Headline queue:execution ratio statistics (Section III-C)."""

    fraction_at_or_below_one: float
    median_ratio: float
    fraction_at_or_above_hundred: float
    summary: DistributionSummary


def ratio_report(trace: TraceDataset) -> RatioReport:
    ratios = queue_to_run_ratios(trace)
    return RatioReport(
        fraction_at_or_below_one=float((ratios <= 1.0).mean()),
        median_ratio=percentile(ratios, 50),
        fraction_at_or_above_hundred=float((ratios >= 100.0).mean()),
        summary=summarize(ratios),
    )


def queue_time_by_machine(trace: TraceDataset) -> Dict[str, DistributionSummary]:
    """Fig. 10 series: distribution of per-job queue minutes per machine."""
    result: Dict[str, DistributionSummary] = {}
    for machine, subset in trace.group_by_machine().items():
        minutes = [r.queue_minutes for r in subset if r.queue_minutes is not None]
        if minutes:
            result[machine] = summarize(minutes)
    if not result:
        raise AnalysisError("no queue data in the trace")
    return result


def _batch_bins(max_batch: int = 900, bin_width: int = 100) -> List[Tuple[int, int]]:
    edges = list(range(0, max_batch, bin_width)) + [max_batch]
    return [(edges[i] + 1, edges[i + 1]) for i in range(len(edges) - 1)]


def queue_time_by_batch_size(trace: TraceDataset, bin_width: int = 100
                             ) -> Dict[Tuple[int, int], DistributionSummary]:
    """Fig. 11 (per-job view): queue minutes binned by batch size."""
    bins = _batch_bins(bin_width=bin_width)
    result: Dict[Tuple[int, int], DistributionSummary] = {}
    for low, high in bins:
        values = [
            r.queue_minutes for r in trace
            if r.queue_minutes is not None and low <= r.batch_size <= high
        ]
        if values:
            result[(low, high)] = summarize(values)
    if not result:
        raise AnalysisError("no queue data in the trace")
    return result


def per_circuit_queue_by_batch_size(trace: TraceDataset, bin_width: int = 100
                                    ) -> Dict[Tuple[int, int], float]:
    """Fig. 11 (per-circuit view): median effective queue seconds per circuit.

    The paper's third observation on Fig. 11: as batch size grows the
    *effective* per-circuit queue time almost always decreases because the
    whole batch pays the queue once.
    """
    bins = _batch_bins(bin_width=bin_width)
    result: Dict[Tuple[int, int], float] = {}
    for low, high in bins:
        values = [
            r.per_circuit_queue_seconds for r in trace
            if r.per_circuit_queue_seconds is not None
            and low <= r.batch_size <= high
        ]
        if values:
            result[(low, high)] = float(np.median(values))
    if not result:
        raise AnalysisError("no queue data in the trace")
    return result
