"""Machine-level analyses (Section IV and Fig. 9 of the paper).

* Fig. 6 — qubit count versus bisection bandwidth across the fleet.
* Fig. 8 — machine-utilisation distribution per machine.
* Fig. 9 — average pending jobs per machine over a sampling window.

Fig. 9 evaluates the external-load model over the whole sampling window in
one vectorised call per machine, and the studied-queue correction is a
masked column computation instead of a per-record scan.  Per-machine
distributions stream through the block-wise ``grouped_values`` primitive,
so the chunked data plane never materialises a per-machine sub-trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.stats import DistributionSummary, summarize
from repro.cloud.backlog import ExternalLoadModel
from repro.core.exceptions import AnalysisError
from repro.core.units import DAY_SECONDS
from repro.devices.backend import Backend
from repro.workloads.trace import TraceDataset


@dataclass(frozen=True)
class MachineTopologyRow:
    """One row of the Fig. 6 table."""

    machine: str
    num_qubits: int
    bisection_bandwidth: int
    access: str


def bisection_bandwidth_table(fleet: Dict[str, Backend]) -> List[MachineTopologyRow]:
    """Fig. 6 series: qubits and bisection bandwidth for each machine."""
    if not fleet:
        raise AnalysisError("fleet is empty")
    rows = [
        MachineTopologyRow(
            machine=name,
            num_qubits=backend.num_qubits,
            bisection_bandwidth=backend.bisection_bandwidth(),
            access=backend.access.value,
        )
        for name, backend in fleet.items()
        if not backend.is_simulator
    ]
    return sorted(rows, key=lambda r: (r.num_qubits, r.machine))


def utilization_by_machine(trace: TraceDataset) -> Dict[str, DistributionSummary]:
    """Fig. 8 series: distribution of per-job machine utilisation per machine.

    Utilisation of a job is the fraction of the machine's qubits used by its
    circuits.
    """
    result: Dict[str, DistributionSummary] = {}
    for machine, utilizations in trace.grouped_values("machine",
                                                      "utilization").items():
        if utilizations.size:
            result[machine] = summarize(utilizations)
    if not result:
        raise AnalysisError("trace contains no jobs")
    return result


def pending_jobs_by_machine(
    fleet: Dict[str, Backend],
    window_start: float,
    window_days: float = 7.0,
    samples: int = 64,
    seed: int = 0,
    trace: Optional[TraceDataset] = None,
) -> Dict[str, float]:
    """Fig. 9 series: average pending jobs per machine over a sampling window.

    The estimate combines the external-load model (everyone else's jobs)
    with, when a trace is supplied, the studied jobs pending in the window.
    """
    if samples < 1:
        raise AnalysisError("samples must be positive")
    if not fleet:
        raise AnalysisError("fleet is empty")
    times = np.linspace(window_start, window_start + window_days * DAY_SECONDS,
                        samples)
    averages: Dict[str, float] = {}
    for name, backend in fleet.items():
        model = ExternalLoadModel(backend=backend, seed=seed)
        averages[name] = float(np.mean(model.mean_pending_jobs(times)))
    if trace is not None:
        window_seconds = times[-1] - times[0]
        submit = trace.values("submit_time")
        start = trace.values("start_time")
        queue = trace.values("queue_seconds")
        overlapping = (
            ~np.isnan(queue) & ~np.isnan(start)
            & (submit <= times[-1]) & (start >= times[0])
        )
        occupancy = np.where(
            overlapping,
            np.minimum(start, times[-1]) - np.maximum(submit, times[0]),
            0.0,
        )
        if window_seconds > 0:
            for machine in trace.machines():
                if machine not in averages:
                    continue
                member = trace.mask_equal("machine", machine) & overlapping
                if member.any():
                    averages[machine] += float(occupancy[member].sum()) \
                        / window_seconds
    return dict(sorted(averages.items()))


def machine_job_share(trace: TraceDataset) -> Dict[str, float]:
    """Fraction of studied jobs landing on each machine (load imbalance)."""
    if len(trace) == 0:
        raise AnalysisError("trace is empty")
    counts = trace.value_counts("machine")
    total = sum(counts.values())
    return {machine: count / total for machine, count in sorted(counts.items())}
