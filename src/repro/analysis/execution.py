"""Execution-time analyses (Section VI, Figures 13-14), as column operations.

Per-machine run-time distributions stream block-wise through
``grouped_values``; the batch-size binning touches two columns at a time,
so nothing here needs the full trace resident under the chunked data plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.analysis.stats import (
    DistributionSummary,
    linear_fit,
    pearson_correlation,
    summarize,
)
from repro.core.exceptions import AnalysisError
from repro.workloads.trace import TraceDataset


def run_time_by_machine(trace: TraceDataset,
                        per_circuit: bool = False) -> Dict[str, DistributionSummary]:
    """Fig. 13 series: run-time distribution per machine (minutes).

    With ``per_circuit=True`` the per-circuit run time (job run time divided
    by batch size) is summarised instead of the per-job run time.
    """
    column = "per_circuit_run_seconds" if per_circuit else "run_minutes"
    result: Dict[str, DistributionSummary] = {}
    for machine, values in trace.grouped_values("machine", column).items():
        if per_circuit:
            values = values / 60.0
        if values.size:
            result[machine] = summarize(values)
    if not result:
        raise AnalysisError("no completed jobs in the trace")
    return result


@dataclass(frozen=True)
class BatchRuntimeTrend:
    """Linear trend of job run time versus batch size (the Fig. 14 red line)."""

    slope_minutes_per_circuit: float
    intercept_minutes: float
    correlation: float

    def predict_minutes(self, batch_size: float) -> float:
        return self.slope_minutes_per_circuit * batch_size + self.intercept_minutes


def run_time_by_batch_size(trace: TraceDataset, bin_width: int = 100
                           ) -> Dict[Tuple[int, int], DistributionSummary]:
    """Fig. 14 series: run minutes binned by batch size."""
    minutes = trace.values("run_minutes")
    batch = trace.values("batch_size")
    valid = ~np.isnan(minutes)
    if not valid.any():
        raise AnalysisError("no completed jobs in the trace")
    edges = list(range(0, 900, bin_width)) + [900]
    bins = [(edges[i] + 1, edges[i + 1]) for i in range(len(edges) - 1)]
    result: Dict[Tuple[int, int], DistributionSummary] = {}
    for low, high in bins:
        values = minutes[valid & (batch >= low) & (batch <= high)]
        if values.size:
            result[(low, high)] = summarize(values)
    return result


def batch_runtime_trend(trace: TraceDataset) -> BatchRuntimeTrend:
    """Fit the Fig. 14 proportional trend between batch size and run time."""
    minutes = trace.values("run_minutes")
    valid = ~np.isnan(minutes)
    if int(valid.sum()) < 2:
        raise AnalysisError("need at least two completed jobs to fit a trend")
    batches = trace.values("batch_size")[valid].astype(float)
    minutes = minutes[valid]
    slope, intercept = linear_fit(batches, minutes)
    return BatchRuntimeTrend(
        slope_minutes_per_circuit=slope,
        intercept_minutes=intercept,
        correlation=pearson_correlation(batches, minutes),
    )
