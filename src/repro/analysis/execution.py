"""Execution-time analyses (Section VI, Figures 13-14)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


from repro.analysis.stats import DistributionSummary, linear_fit, summarize
from repro.core.exceptions import AnalysisError
from repro.workloads.trace import TraceDataset


def run_time_by_machine(trace: TraceDataset,
                        per_circuit: bool = False) -> Dict[str, DistributionSummary]:
    """Fig. 13 series: run-time distribution per machine (minutes).

    With ``per_circuit=True`` the per-circuit run time (job run time divided
    by batch size) is summarised instead of the per-job run time.
    """
    result: Dict[str, DistributionSummary] = {}
    for machine, subset in trace.group_by_machine().items():
        if per_circuit:
            values = [
                r.per_circuit_run_seconds / 60.0 for r in subset
                if r.per_circuit_run_seconds is not None
            ]
        else:
            values = [r.run_minutes for r in subset if r.run_minutes is not None]
        if values:
            result[machine] = summarize(values)
    if not result:
        raise AnalysisError("no completed jobs in the trace")
    return result


@dataclass(frozen=True)
class BatchRuntimeTrend:
    """Linear trend of job run time versus batch size (the Fig. 14 red line)."""

    slope_minutes_per_circuit: float
    intercept_minutes: float
    correlation: float

    def predict_minutes(self, batch_size: float) -> float:
        return self.slope_minutes_per_circuit * batch_size + self.intercept_minutes


def run_time_by_batch_size(trace: TraceDataset, bin_width: int = 100
                           ) -> Dict[Tuple[int, int], DistributionSummary]:
    """Fig. 14 series: run minutes binned by batch size."""
    completed = [r for r in trace if r.run_minutes is not None]
    if not completed:
        raise AnalysisError("no completed jobs in the trace")
    edges = list(range(0, 900, bin_width)) + [900]
    bins = [(edges[i] + 1, edges[i + 1]) for i in range(len(edges) - 1)]
    result: Dict[Tuple[int, int], DistributionSummary] = {}
    for low, high in bins:
        values = [r.run_minutes for r in completed if low <= r.batch_size <= high]
        if values:
            result[(low, high)] = summarize(values)
    return result


def batch_runtime_trend(trace: TraceDataset) -> BatchRuntimeTrend:
    """Fit the Fig. 14 proportional trend between batch size and run time."""
    batches: List[float] = []
    minutes: List[float] = []
    for record in trace:
        if record.run_minutes is None:
            continue
        batches.append(float(record.batch_size))
        minutes.append(record.run_minutes)
    if len(batches) < 2:
        raise AnalysisError("need at least two completed jobs to fit a trend")
    slope, intercept = linear_fit(batches, minutes)
    from repro.analysis.stats import pearson_correlation

    return BatchRuntimeTrend(
        slope_minutes_per_circuit=slope,
        intercept_minutes=intercept,
        correlation=pearson_correlation(batches, minutes),
    )
