"""Schedulers and resource-management policies.

The paper closes each section with recommendations; this package turns the
actionable ones into code so their effect can be measured in the ablation
benches:

* :mod:`repro.scheduling.policies` — client-side machine selection using the
  compile-time CX metrics (recommendation IV-D.1) with a fidelity/queue
  trade-off knob (recommendation V-E.3).
* :mod:`repro.scheduling.load_balancer` — vendor-side load balancing across
  machines (recommendation V-E.4).
* :mod:`repro.scheduling.batching` — client-side circuit batching to amortise
  queue time (recommendations III-E.5 and V-E.5).
* :mod:`repro.scheduling.multiprogramming` — co-locating several small
  circuits on disjoint regions of one machine (recommendation IV-D.3).
"""

from repro.scheduling.policies import (
    MachineChoice,
    MachineSelector,
    SelectionObjective,
)
from repro.scheduling.load_balancer import LoadBalancer, BalancedAssignment
from repro.scheduling.batching import BatchingPlanner, BatchPlan
from repro.scheduling.multiprogramming import (
    MultiProgrammer,
    CoLocationPlan,
)

__all__ = [
    "MachineChoice",
    "MachineSelector",
    "SelectionObjective",
    "LoadBalancer",
    "BalancedAssignment",
    "BatchingPlanner",
    "BatchPlan",
    "MultiProgrammer",
    "CoLocationPlan",
]
