"""Vendor-side load balancing across machines.

Recommendation V-E.4: load balancing across machines, performed by the
vendor with robust machine characterisation, can shrink the worst queues and
raise throughput.  :class:`LoadBalancer` assigns a stream of jobs to
machines to minimise the maximum backlog, subject to each job's qubit
requirement and access level, and reports the resulting backlog spread so
the ablation bench can compare it against user-driven (popularity-based)
routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cloud.job import Job
from repro.core.exceptions import ReproError
from repro.devices.backend import Backend


@dataclass
class BalancedAssignment:
    """Outcome of balancing a set of jobs across the fleet."""

    assignments: Dict[str, str] = field(default_factory=dict)  # job_id -> machine
    backlog_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def max_backlog(self) -> float:
        return max(self.backlog_seconds.values()) if self.backlog_seconds else 0.0

    @property
    def min_backlog(self) -> float:
        return min(self.backlog_seconds.values()) if self.backlog_seconds else 0.0

    @property
    def imbalance(self) -> float:
        """Max/mean backlog ratio (1.0 = perfectly balanced)."""
        if not self.backlog_seconds:
            return 1.0
        values = list(self.backlog_seconds.values())
        mean = sum(values) / len(values)
        if mean == 0:
            return 1.0
        return max(values) / mean


class LoadBalancer:
    """Greedy least-backlog assignment of jobs to eligible machines."""

    def __init__(self, fleet: Dict[str, Backend],
                 initial_backlog_seconds: Optional[Dict[str, float]] = None):
        if not fleet:
            raise ReproError("fleet is empty")
        self.fleet = dict(fleet)
        self._initial = dict(initial_backlog_seconds or {})

    def _eligible(self, job: Job, privileged: bool) -> List[Backend]:
        machines = []
        for backend in self.fleet.values():
            if backend.num_qubits < job.max_width:
                continue
            if not backend.is_public and not privileged:
                continue
            machines.append(backend)
        return machines

    def assign(self, jobs: Sequence[Job],
               job_runtime_estimator=None,
               privileged: bool = True) -> BalancedAssignment:
        """Assign each job to the machine with the least accumulated backlog.

        Args:
            jobs: jobs to place (their ``backend_name`` is ignored).
            job_runtime_estimator: callable (job, backend) -> seconds; when
                omitted a simple batch-size-proportional estimate is used.
            privileged: whether these jobs may use privileged machines.
        """
        result = BalancedAssignment(
            backlog_seconds={name: self._initial.get(name, 0.0)
                             for name in self.fleet},
        )
        for job in jobs:
            eligible = self._eligible(job, privileged)
            if not eligible:
                raise ReproError(
                    f"no machine can run job {job.job_id} "
                    f"(width {job.max_width})"
                )
            target = min(eligible,
                         key=lambda b: (result.backlog_seconds[b.name], b.name))
            if job_runtime_estimator is not None:
                runtime = float(job_runtime_estimator(job, target))
            else:
                runtime = target.base_overhead_seconds + 2.0 * job.batch_size
            result.assignments[job.job_id] = target.name
            result.backlog_seconds[target.name] += runtime
        return result

    @staticmethod
    def user_driven_baseline(jobs: Sequence[Job], fleet: Dict[str, Backend],
                             job_runtime_estimator=None) -> BalancedAssignment:
        """Backlogs produced by the jobs' original (user-chosen) machines."""
        result = BalancedAssignment(
            backlog_seconds={name: 0.0 for name in fleet},
        )
        for job in jobs:
            backend = fleet.get(job.backend_name)
            if backend is None:
                continue
            if job_runtime_estimator is not None:
                runtime = float(job_runtime_estimator(job, backend))
            else:
                runtime = backend.base_overhead_seconds + 2.0 * job.batch_size
            result.assignments[job.job_id] = backend.name
            result.backlog_seconds[backend.name] += runtime
        return result
