"""Client-side machine selection with a fidelity/queue trade-off.

Recommendation IV-D.1 of the paper: CX-gate based metrics evaluated at
compile time are a reasonable indicator of an application's fidelity on a
machine and can aid machine selection.  Recommendation V-E.3: users should
be allowed to trade fidelity for queue time.  :class:`MachineSelector`
implements both: it compiles (or fetches the cached class summary of) the
circuit for each candidate machine, estimates success probability and
expected wait, and ranks machines by a weighted objective.

The ranking arithmetic itself lives in :func:`rank_candidates` — one shared
scoring path used by the interactive selector here *and* by the study-scale
batch ranking of :mod:`repro.workloads.transpile_classes`, so a policy
scenario ranks machines with exactly the algebra a live selector would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.core.exceptions import ReproError
from repro.devices.backend import Backend
from repro.fidelity.estimator import estimate_success_probability
from repro.transpiler.cache import (
    PINNED_COMPILE_TIME,
    TranspileCache,
    TranspileSummary,
    backend_fingerprint,
    summarise_transpile,
    transpile_cache_key,
)
from repro.transpiler.presets import transpile

#: Expected wait assumed for machines the caller supplies no estimate for.
DEFAULT_WAIT_MINUTES = 60.0


class SelectionObjective(enum.Enum):
    """What the user optimises for when choosing a machine."""

    FIDELITY = "fidelity"
    QUEUE = "queue"
    BALANCED = "balanced"


#: The fidelity weight each objective resolves to (balanced keeps the
#: selector's configured weight).
_OBJECTIVE_WEIGHTS = {
    SelectionObjective.FIDELITY: 1.0,
    SelectionObjective.QUEUE: 0.0,
}


def objective_weight(objective: SelectionObjective,
                     fidelity_weight: float = 0.6) -> float:
    """The fidelity weight of one objective (``balanced`` keeps the knob)."""
    return _OBJECTIVE_WEIGHTS.get(objective, fidelity_weight)


@dataclass(frozen=True)
class MachineChoice:
    """One candidate machine with its estimated fidelity and wait."""

    machine: str
    estimated_success: float
    cx_total: int
    cx_depth: int
    expected_wait_minutes: float
    score: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "machine": self.machine,
            "estimated_success": self.estimated_success,
            "cx_total": float(self.cx_total),
            "cx_depth": float(self.cx_depth),
            "expected_wait_minutes": self.expected_wait_minutes,
            "score": self.score,
        }


def rank_candidates(
    entries: Iterable[Tuple[str, float, int, int]],
    expected_wait_minutes: Optional[Dict[str, float]] = None,
    fidelity_weight: float = 0.6,
) -> List[MachineChoice]:
    """Score and rank candidate machines (best first).

    ``entries`` are ``(machine, estimated_success, cx_total, cx_depth)``
    tuples — however they were obtained (a live transpile, a cached class
    summary).  Waits are normalised against the worst candidate; ties are
    broken by machine name so the ranking is independent of input order,
    dict order, or which process computed it.
    """
    entries = list(entries)
    if not entries:
        raise ReproError("no candidate machines supplied")
    waits = expected_wait_minutes or {}
    max_wait = max(waits.get(name, DEFAULT_WAIT_MINUTES)
                   for name, _, _, _ in entries) or 1.0
    choices: List[MachineChoice] = []
    for name, probability, cx_total, cx_depth in entries:
        wait = waits.get(name, DEFAULT_WAIT_MINUTES)
        wait_score = 1.0 - min(wait / max(max_wait, 1e-9), 1.0)
        score = (fidelity_weight * probability
                 + (1.0 - fidelity_weight) * wait_score)
        choices.append(MachineChoice(
            machine=name,
            estimated_success=probability,
            cx_total=cx_total,
            cx_depth=cx_depth,
            expected_wait_minutes=wait,
            score=score,
        ))
    choices.sort(key=lambda c: (-c.score, c.machine))
    return choices


def rank_summaries(
    summaries: Sequence[TranspileSummary],
    expected_wait_minutes: Optional[Dict[str, float]] = None,
    fidelity_weight: float = 0.6,
) -> List[MachineChoice]:
    """Rank machines from precomputed class summaries — no transpiling.

    This is the study-scale path: the runner transpiles each equivalence
    class once per machine (sharded over the worker pool, memoised in the
    :class:`~repro.transpiler.cache.TranspileCache`) and every subsequent
    job ranks from the summaries alone.
    """
    return rank_candidates(
        ((s.machine, s.estimated_success, s.cx_total, s.cx_depth)
         for s in summaries),
        expected_wait_minutes=expected_wait_minutes,
        fidelity_weight=fidelity_weight,
    )


class MachineSelector:
    """Ranks candidate machines for a circuit by fidelity, queue, or both.

    With a :class:`~repro.transpiler.cache.TranspileCache` attached,
    rankings evaluated at the pinned epoch-zero compile time are served
    from (and written to) the equivalence-class cache, so repeated
    evaluations of structurally equal circuits pay one transpile per
    machine in total.
    """

    def __init__(self, objective: SelectionObjective = SelectionObjective.BALANCED,
                 fidelity_weight: float = 0.6, optimization_level: int = 2,
                 seed: int = 11, cache: Optional[TranspileCache] = None):
        if not 0.0 <= fidelity_weight <= 1.0:
            raise ReproError("fidelity_weight must be in [0, 1]")
        self.objective = objective
        self.fidelity_weight = fidelity_weight
        self.optimization_level = optimization_level
        self.seed = seed
        self.cache = cache

    def _weight(self) -> float:
        return objective_weight(self.objective, self.fidelity_weight)

    def _candidate(self, circuit: QuantumCircuit, backend: Backend,
                   at_time: float) -> Tuple[str, float, int, int]:
        """(machine, probability, cx_total, cx_depth) for one backend."""
        if self.cache is not None and at_time == PINNED_COMPILE_TIME:
            summary = self._cached_summary(circuit, backend)
            return (summary.machine, summary.estimated_success,
                    summary.cx_total, summary.cx_depth)
        compiled = transpile(circuit, backend,
                             optimization_level=self.optimization_level,
                             seed=self.seed, compile_time=at_time)
        calibration = backend.calibration_at(at_time)
        estimate = estimate_success_probability(compiled.circuit, calibration)
        return (backend.name, estimate.probability,
                estimate.cx_metrics.cx_total, estimate.cx_metrics.cx_depth)

    def _cached_summary(self, circuit: QuantumCircuit,
                        backend: Backend) -> TranspileSummary:
        from repro.workloads.circuit_metrics import structural_fingerprint

        class_fp = structural_fingerprint(circuit)
        key = transpile_cache_key(class_fp, backend_fingerprint(backend),
                                  self.optimization_level, self.seed)
        summary = self.cache.get(key)
        if summary is None:
            summary = summarise_transpile(
                circuit, backend, self.optimization_level, seed=self.seed,
                class_fp=class_fp)
            self.cache.put(key, summary)
        return summary

    def evaluate(
        self,
        circuit: QuantumCircuit,
        backends: Sequence[Backend],
        expected_wait_minutes: Optional[Dict[str, float]] = None,
        at_time: float = 0.0,
    ) -> List[MachineChoice]:
        """Rank the candidate machines (best first)."""
        if not backends:
            raise ReproError("no candidate machines supplied")
        eligible = [b for b in backends if b.num_qubits >= circuit.num_qubits]
        if not eligible:
            raise ReproError(
                f"no candidate machine has {circuit.num_qubits} qubits"
            )
        return rank_candidates(
            (self._candidate(circuit, backend, at_time)
             for backend in eligible),
            expected_wait_minutes=expected_wait_minutes,
            fidelity_weight=self._weight(),
        )

    def select(self, circuit: QuantumCircuit, backends: Sequence[Backend],
               expected_wait_minutes: Optional[Dict[str, float]] = None,
               at_time: float = 0.0) -> MachineChoice:
        """The best machine under the configured objective."""
        return self.evaluate(circuit, backends, expected_wait_minutes, at_time)[0]
