"""Client-side machine selection with a fidelity/queue trade-off.

Recommendation IV-D.1 of the paper: CX-gate based metrics evaluated at
compile time are a reasonable indicator of an application's fidelity on a
machine and can aid machine selection.  Recommendation V-E.3: users should
be allowed to trade fidelity for queue time.  :class:`MachineSelector`
implements both: it compiles (or estimates) the circuit for each candidate
machine, estimates success probability and expected wait, and ranks machines
by a weighted objective.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.core.exceptions import ReproError
from repro.devices.backend import Backend
from repro.fidelity.estimator import estimate_success_probability
from repro.transpiler.presets import transpile


class SelectionObjective(enum.Enum):
    """What the user optimises for when choosing a machine."""

    FIDELITY = "fidelity"
    QUEUE = "queue"
    BALANCED = "balanced"


@dataclass(frozen=True)
class MachineChoice:
    """One candidate machine with its estimated fidelity and wait."""

    machine: str
    estimated_success: float
    cx_total: int
    cx_depth: int
    expected_wait_minutes: float
    score: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "machine": self.machine,
            "estimated_success": self.estimated_success,
            "cx_total": float(self.cx_total),
            "cx_depth": float(self.cx_depth),
            "expected_wait_minutes": self.expected_wait_minutes,
            "score": self.score,
        }


class MachineSelector:
    """Ranks candidate machines for a circuit by fidelity, queue, or both."""

    def __init__(self, objective: SelectionObjective = SelectionObjective.BALANCED,
                 fidelity_weight: float = 0.6, optimization_level: int = 2,
                 seed: int = 11):
        if not 0.0 <= fidelity_weight <= 1.0:
            raise ReproError("fidelity_weight must be in [0, 1]")
        self.objective = objective
        self.fidelity_weight = fidelity_weight
        self.optimization_level = optimization_level
        self.seed = seed

    def _weight(self) -> float:
        if self.objective is SelectionObjective.FIDELITY:
            return 1.0
        if self.objective is SelectionObjective.QUEUE:
            return 0.0
        return self.fidelity_weight

    def evaluate(
        self,
        circuit: QuantumCircuit,
        backends: Sequence[Backend],
        expected_wait_minutes: Optional[Dict[str, float]] = None,
        at_time: float = 0.0,
    ) -> List[MachineChoice]:
        """Rank the candidate machines (best first)."""
        if not backends:
            raise ReproError("no candidate machines supplied")
        waits = expected_wait_minutes or {}
        choices: List[MachineChoice] = []
        eligible = [b for b in backends if b.num_qubits >= circuit.num_qubits]
        if not eligible:
            raise ReproError(
                f"no candidate machine has {circuit.num_qubits} qubits"
            )
        max_wait = max([waits.get(b.name, 60.0) for b in eligible]) or 1.0
        weight = self._weight()
        for backend in eligible:
            compiled = transpile(circuit, backend,
                                 optimization_level=self.optimization_level,
                                 seed=self.seed, compile_time=at_time)
            calibration = backend.calibration_at(at_time)
            estimate = estimate_success_probability(compiled.circuit, calibration)
            wait = waits.get(backend.name, 60.0)
            wait_score = 1.0 - min(wait / max(max_wait, 1e-9), 1.0)
            score = weight * estimate.probability + (1.0 - weight) * wait_score
            choices.append(MachineChoice(
                machine=backend.name,
                estimated_success=estimate.probability,
                cx_total=estimate.cx_metrics.cx_total,
                cx_depth=estimate.cx_metrics.cx_depth,
                expected_wait_minutes=wait,
                score=score,
            ))
        return sorted(choices, key=lambda c: c.score, reverse=True)

    def select(self, circuit: QuantumCircuit, backends: Sequence[Backend],
               expected_wait_minutes: Optional[Dict[str, float]] = None,
               at_time: float = 0.0) -> MachineChoice:
        """The best machine under the configured objective."""
        return self.evaluate(circuit, backends, expected_wait_minutes, at_time)[0]
