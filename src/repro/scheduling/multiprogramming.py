"""Multi-programming: co-locating circuits on one machine.

Recommendation IV-D.3 (citing Das et al.): utilisation of large machines can
be improved by running multiple small applications in conjunction.
:class:`MultiProgrammer` packs circuits onto disjoint connected regions of a
machine's coupling map, preferring better-calibrated regions, and reports
the utilisation achieved versus running the circuits one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.cloud.job import CircuitSpec
from repro.core.exceptions import ReproError
from repro.devices.backend import Backend
from repro.devices.calibration import CalibrationSnapshot


@dataclass(frozen=True)
class CoLocationPlan:
    """An assignment of circuits to disjoint physical regions."""

    backend_name: str
    placements: Tuple[Tuple[str, Tuple[int, ...]], ...]  # (circuit name, qubits)
    leftover_circuits: Tuple[str, ...]

    @property
    def circuits_placed(self) -> int:
        return len(self.placements)

    @property
    def qubits_used(self) -> int:
        return sum(len(qubits) for _, qubits in self.placements)

    def utilization(self, backend: Backend) -> float:
        if backend.num_qubits == 0:
            return 0.0
        return self.qubits_used / backend.num_qubits


class MultiProgrammer:
    """Greedy packer of small circuits onto disjoint device regions."""

    def __init__(self, backend: Backend, at_time: float = 0.0):
        self.backend = backend
        self.calibration: CalibrationSnapshot = backend.calibration_at(at_time)

    def _grow_region(self, seed: int, size: int, used: Set[int]) -> Optional[List[int]]:
        """Grow a connected region of ``size`` qubits starting at ``seed``."""
        coupling = self.backend.coupling_map
        if seed in used:
            return None
        region = [seed]
        selected = {seed}
        while len(region) < size:
            frontier: List[int] = []
            for qubit in region:
                frontier.extend(
                    n for n in coupling.neighbors(qubit)
                    if n not in selected and n not in used
                )
            if not frontier:
                return None
            best = min(
                set(frontier),
                key=lambda q: (
                    self.calibration.qubit(q).readout_error
                    + self.calibration.qubit(q).single_qubit_error,
                    q,
                ),
            )
            region.append(best)
            selected.add(best)
        return region

    def plan(self, circuits: Sequence[CircuitSpec]) -> CoLocationPlan:
        """Pack as many circuits as possible onto disjoint regions."""
        if not circuits:
            raise ReproError("no circuits to place")
        # Seed order: best qubits first.
        seeds = self.calibration.best_qubits(self.backend.num_qubits)
        used: Set[int] = set()
        placements: List[Tuple[str, Tuple[int, ...]]] = []
        leftovers: List[str] = []
        for spec in sorted(circuits, key=lambda c: -c.width):
            if spec.width > self.backend.num_qubits - len(used):
                leftovers.append(spec.name)
                continue
            region: Optional[List[int]] = None
            for seed in seeds:
                if seed in used:
                    continue
                region = self._grow_region(seed, spec.width, used)
                if region is not None:
                    break
            if region is None:
                leftovers.append(spec.name)
                continue
            used.update(region)
            placements.append((spec.name, tuple(region)))
        return CoLocationPlan(
            backend_name=self.backend.name,
            placements=tuple(placements),
            leftover_circuits=tuple(leftovers),
        )

    def utilization_gain(self, circuits: Sequence[CircuitSpec]) -> float:
        """Utilisation of the co-located plan vs running circuits one at a time."""
        plan = self.plan(circuits)
        colocated = plan.utilization(self.backend)
        if not circuits:
            return 1.0
        solo = max(c.width for c in circuits) / self.backend.num_qubits
        if solo == 0:
            return 1.0
        return colocated / solo
