"""Client-side circuit batching.

Recommendation V-E.5: batching reduces effective per-circuit queue time
because the whole batch pays the queue once.  :class:`BatchingPlanner`
groups a stream of independent circuits into jobs bounded by the backend's
batch limit, and quantifies the expected per-circuit queue-time saving
relative to submitting each circuit as its own job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cloud.job import CircuitSpec
from repro.core.exceptions import ReproError
from repro.devices.backend import Backend


@dataclass(frozen=True)
class BatchPlan:
    """A batching decision over a set of circuits."""

    backend_name: str
    batches: tuple  # tuple of tuples of CircuitSpec
    expected_queue_minutes: float

    @property
    def num_jobs(self) -> int:
        return len(self.batches)

    @property
    def num_circuits(self) -> int:
        return sum(len(batch) for batch in self.batches)

    @property
    def total_queue_minutes(self) -> float:
        """Total queue time paid across all jobs of the plan."""
        return self.expected_queue_minutes * self.num_jobs

    @property
    def per_circuit_queue_minutes(self) -> float:
        """Effective queue minutes per circuit (the Fig. 11 metric)."""
        if self.num_circuits == 0:
            return 0.0
        return self.total_queue_minutes / self.num_circuits


class BatchingPlanner:
    """Groups circuits into maximal batches for a target backend."""

    def __init__(self, backend: Backend, expected_queue_minutes: float = 60.0):
        if expected_queue_minutes < 0:
            raise ReproError("expected_queue_minutes must be non-negative")
        self.backend = backend
        self.expected_queue_minutes = expected_queue_minutes

    def plan(self, circuits: Sequence[CircuitSpec],
             max_batch: Optional[int] = None) -> BatchPlan:
        """Pack circuits into as few jobs as possible (order preserved)."""
        if not circuits:
            raise ReproError("no circuits to batch")
        limit = min(max_batch or self.backend.max_batch_size,
                    self.backend.max_batch_size)
        if limit < 1:
            raise ReproError("batch limit must be at least 1")
        for spec in circuits:
            if spec.width > self.backend.num_qubits:
                raise ReproError(
                    f"circuit {spec.name} needs {spec.width} qubits but "
                    f"{self.backend.name} has {self.backend.num_qubits}"
                )
        batches: List[tuple] = []
        current: List[CircuitSpec] = []
        for spec in circuits:
            current.append(spec)
            if len(current) == limit:
                batches.append(tuple(current))
                current = []
        if current:
            batches.append(tuple(current))
        return BatchPlan(
            backend_name=self.backend.name,
            batches=tuple(batches),
            expected_queue_minutes=self.expected_queue_minutes,
        )

    def unbatched_baseline(self, circuits: Sequence[CircuitSpec]) -> BatchPlan:
        """The no-batching baseline: one job per circuit."""
        return self.plan(circuits, max_batch=1)

    def saving_versus_unbatched(self, circuits: Sequence[CircuitSpec],
                                max_batch: Optional[int] = None) -> float:
        """Ratio of per-circuit queue time: batched / unbatched (lower is better)."""
        batched = self.plan(circuits, max_batch=max_batch)
        baseline = self.unbatched_baseline(circuits)
        if baseline.per_circuit_queue_minutes == 0:
            return 1.0
        return batched.per_circuit_queue_minutes / baseline.per_circuit_queue_minutes
