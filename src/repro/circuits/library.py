"""Benchmark circuit generators.

The paper's workloads are dominated by small NISQ-era benchmark circuits:
the Quantum Fourier Transform (the paper's running example in Figures 5, 7
and 12b), GHZ-state preparation, Bernstein-Vazirani, QAOA max-cut layers and
hardware-efficient VQE ansatz circuits.  The synthetic trace generator picks
from these families with family-specific size distributions.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.core.exceptions import CircuitError
from repro.core.rng import RandomSource


def qft_circuit(num_qubits: int, include_swaps: bool = True,
                measure: bool = True) -> QuantumCircuit:
    """Quantum Fourier Transform on ``num_qubits`` qubits.

    Built from Hadamards and controlled-phase gates; ``include_swaps`` adds
    the final bit-reversal SWAP network, matching the textbook construction
    that Qiskit's library uses.
    """
    if num_qubits < 1:
        raise CircuitError("QFT needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for control in range(target + 1, num_qubits):
            angle = math.pi / (2 ** (control - target))
            circuit.cp(angle, control, target)
    if include_swaps:
        for low in range(num_qubits // 2):
            circuit.swap(low, num_qubits - 1 - low)
    if measure:
        circuit.measure_all()
    circuit.metadata["family"] = "qft"
    return circuit


def qft_echo_circuit(num_qubits: int, pattern: Optional[str] = None,
                     measure: bool = True) -> QuantumCircuit:
    """QFT fidelity benchmark: prepare a bit pattern, apply QFT then QFT^-1.

    The ideal output is the prepared pattern itself, so the measured
    Probability of Success is well defined — this is the form in which the
    4-qubit QFT of Fig. 7 is evaluated on hardware.  A barrier separates the
    forward and inverse transforms so the compiler does not cancel them.
    """
    if num_qubits < 1:
        raise CircuitError("QFT echo needs at least one qubit")
    if pattern is None:
        pattern = ("10" * num_qubits)[:num_qubits]
    if len(pattern) != num_qubits or any(b not in "01" for b in pattern):
        raise CircuitError("pattern must be a binary string of circuit width")
    circuit = QuantumCircuit(num_qubits, name=f"qft_echo_{num_qubits}")
    for qubit, bit in enumerate(reversed(pattern)):
        if bit == "1":
            circuit.x(qubit)
    circuit.barrier()
    forward = qft_circuit(num_qubits, include_swaps=False, measure=False)
    for instruction in forward.instructions:
        circuit.append(instruction)
    circuit.barrier()
    for instruction in reversed(forward.instructions):
        circuit.append(
            type(instruction)(instruction.gate.inverse(), instruction.qubits,
                              instruction.clbits)
        )
    if measure:
        circuit.measure_all()
    circuit.metadata["family"] = "qft_echo"
    circuit.metadata["pattern"] = pattern
    return circuit


def ghz_circuit(num_qubits: int, measure: bool = True) -> QuantumCircuit:
    """GHZ state preparation: H on qubit 0 followed by a CX chain."""
    if num_qubits < 1:
        raise CircuitError("GHZ needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    if measure:
        circuit.measure_all()
    circuit.metadata["family"] = "ghz"
    return circuit


def bernstein_vazirani_circuit(secret: str, measure: bool = True) -> QuantumCircuit:
    """Bernstein-Vazirani circuit for a binary ``secret`` string.

    The data register has ``len(secret)`` qubits plus one ancilla.
    """
    if not secret or any(bit not in "01" for bit in secret):
        raise CircuitError("secret must be a non-empty binary string")
    num_data = len(secret)
    circuit = QuantumCircuit(num_data + 1, num_data, name=f"bv_{num_data}")
    ancilla = num_data
    circuit.x(ancilla)
    circuit.h(ancilla)
    for qubit in range(num_data):
        circuit.h(qubit)
    circuit.barrier()
    for qubit, bit in enumerate(reversed(secret)):
        if bit == "1":
            circuit.cx(qubit, ancilla)
    circuit.barrier()
    for qubit in range(num_data):
        circuit.h(qubit)
    if measure:
        for qubit in range(num_data):
            circuit.measure(qubit, qubit)
    circuit.metadata["family"] = "bv"
    circuit.metadata["secret"] = secret
    return circuit


def bv_circuit(num_qubits: int, rng: Optional[RandomSource] = None,
               measure: bool = True) -> QuantumCircuit:
    """Bernstein-Vazirani with a random (or alternating) secret of given width."""
    if num_qubits < 2:
        raise CircuitError("bv_circuit needs at least 2 qubits (data + ancilla)")
    num_data = num_qubits - 1
    if rng is None:
        secret = ("10" * num_data)[:num_data]
    else:
        secret = "".join("1" if rng.random() < 0.5 else "0" for _ in range(num_data))
        if "1" not in secret:
            secret = "1" + secret[1:]
    return bernstein_vazirani_circuit(secret, measure=measure)


def qaoa_maxcut_circuit(
    num_qubits: int,
    edges: Optional[Sequence[Tuple[int, int]]] = None,
    num_layers: int = 1,
    gamma: float = 0.7,
    beta: float = 0.3,
    measure: bool = True,
) -> QuantumCircuit:
    """QAOA ansatz for max-cut on a graph (ring graph by default)."""
    if num_qubits < 2:
        raise CircuitError("QAOA needs at least two qubits")
    if num_layers < 1:
        raise CircuitError("QAOA needs at least one layer")
    if edges is None:
        edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    for a, b in edges:
        if a == b or not (0 <= a < num_qubits and 0 <= b < num_qubits):
            raise CircuitError(f"invalid edge ({a}, {b})")
    circuit = QuantumCircuit(num_qubits, name=f"qaoa_{num_qubits}_p{num_layers}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for layer in range(num_layers):
        for a, b in edges:
            circuit.rzz(2.0 * gamma * (layer + 1) / num_layers, a, b)
        for qubit in range(num_qubits):
            circuit.rx(2.0 * beta * (layer + 1) / num_layers, qubit)
    if measure:
        circuit.measure_all()
    circuit.metadata["family"] = "qaoa"
    circuit.metadata["layers"] = num_layers
    return circuit


def vqe_ansatz_circuit(
    num_qubits: int,
    num_layers: int = 2,
    parameters: Optional[Sequence[float]] = None,
    measure: bool = True,
) -> QuantumCircuit:
    """Hardware-efficient VQE ansatz: Ry/Rz rotation layers + linear CX entanglers."""
    if num_qubits < 1:
        raise CircuitError("VQE ansatz needs at least one qubit")
    if num_layers < 1:
        raise CircuitError("VQE ansatz needs at least one layer")
    params_needed = 2 * num_qubits * (num_layers + 1)
    if parameters is None:
        parameters = [0.1 * (i + 1) for i in range(params_needed)]
    if len(parameters) < params_needed:
        raise CircuitError(
            f"VQE ansatz needs {params_needed} parameters, got {len(parameters)}"
        )
    circuit = QuantumCircuit(num_qubits, name=f"vqe_{num_qubits}_l{num_layers}")
    cursor = 0

    def rotation_layer():
        nonlocal cursor
        for qubit in range(num_qubits):
            circuit.ry(parameters[cursor], qubit)
            circuit.rz(parameters[cursor + 1], qubit)
            cursor += 2

    rotation_layer()
    for _ in range(num_layers):
        for qubit in range(num_qubits - 1):
            circuit.cx(qubit, qubit + 1)
        rotation_layer()
    if measure:
        circuit.measure_all()
    circuit.metadata["family"] = "vqe"
    circuit.metadata["layers"] = num_layers
    return circuit


def random_circuit(
    num_qubits: int,
    depth: int,
    rng: Optional[RandomSource] = None,
    two_qubit_probability: float = 0.35,
    measure: bool = True,
) -> QuantumCircuit:
    """A random circuit with roughly ``depth`` layers of mixed 1q/2q gates."""
    if num_qubits < 1:
        raise CircuitError("random circuit needs at least one qubit")
    if depth < 0:
        raise CircuitError("depth must be non-negative")
    rng = rng or RandomSource(0, name="random_circuit")
    one_qubit_gates = ["h", "x", "sx", "t", "s"]
    circuit = QuantumCircuit(num_qubits, name=f"random_{num_qubits}x{depth}")
    for _ in range(depth):
        available = list(range(num_qubits))
        rng.shuffle(available)
        while available:
            if (
                len(available) >= 2
                and num_qubits >= 2
                and rng.random() < two_qubit_probability
            ):
                a = available.pop()
                b = available.pop()
                circuit.cx(a, b)
            else:
                qubit = available.pop()
                name = rng.choice(one_qubit_gates)
                if name in ("rx", "ry", "rz"):
                    circuit.apply(name, [qubit], [rng.uniform(0, 2 * math.pi)])
                else:
                    circuit.apply(name, [qubit])
    if measure:
        circuit.measure_all()
    circuit.metadata["family"] = "random"
    return circuit


#: Map from family name to a ``(num_qubits, rng) -> QuantumCircuit`` builder.
CIRCUIT_FAMILIES: Dict[str, Callable[..., QuantumCircuit]] = {
    "qft": lambda n, rng=None: qft_circuit(max(n, 1)),
    "ghz": lambda n, rng=None: ghz_circuit(max(n, 1)),
    "bv": lambda n, rng=None: bv_circuit(max(n, 2), rng=rng),
    "qaoa": lambda n, rng=None: qaoa_maxcut_circuit(max(n, 2)),
    "vqe": lambda n, rng=None: vqe_ansatz_circuit(max(n, 1)),
    "random": lambda n, rng=None: random_circuit(
        max(n, 1), depth=max(2, 2 * max(n, 1)), rng=rng
    ),
}


def build_circuit(family: str, num_qubits: int,
                  rng: Optional[RandomSource] = None) -> QuantumCircuit:
    """Build a benchmark circuit by family name.

    Raises:
        CircuitError: if the family is unknown.
    """
    try:
        builder = CIRCUIT_FAMILIES[family]
    except KeyError:
        raise CircuitError(
            f"unknown circuit family {family!r}; "
            f"known: {sorted(CIRCUIT_FAMILIES)}"
        ) from None
    return builder(num_qubits, rng=rng)
