"""Gate vocabulary and unitary matrices.

The gate set covers what the paper's workloads need: the IBM basis gates
(``id``, ``rz``, ``sx``, ``x``, ``cx``) plus the common named gates circuits
are written in before basis translation (``h``, ``t``, ``swap``, ``ccx``,
controlled phases for the QFT, parametrised rotations for QAOA/VQE ansatz).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.exceptions import CircuitError


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes:
        name: canonical lowercase gate name.
        num_qubits: how many qubits the gate acts on.
        num_params: how many real parameters the gate takes.
        is_diagonal: whether the unitary is diagonal in the computational
            basis (used by the ``RemoveDiagonalGatesBeforeMeasure`` pass).
        self_inverse: whether applying the gate twice is the identity (used
            by commutative cancellation).
    """

    name: str
    num_qubits: int
    num_params: int = 0
    is_diagonal: bool = False
    self_inverse: bool = False


#: Every gate type the library understands.
GATE_SPECS: Dict[str, GateSpec] = {
    spec.name: spec
    for spec in [
        GateSpec("id", 1, 0, is_diagonal=True, self_inverse=True),
        GateSpec("x", 1, 0, self_inverse=True),
        GateSpec("y", 1, 0, self_inverse=True),
        GateSpec("z", 1, 0, is_diagonal=True, self_inverse=True),
        GateSpec("h", 1, 0, self_inverse=True),
        GateSpec("s", 1, 0, is_diagonal=True),
        GateSpec("sdg", 1, 0, is_diagonal=True),
        GateSpec("t", 1, 0, is_diagonal=True),
        GateSpec("tdg", 1, 0, is_diagonal=True),
        GateSpec("sx", 1, 0),
        GateSpec("sxdg", 1, 0),
        GateSpec("rx", 1, 1),
        GateSpec("ry", 1, 1),
        GateSpec("rz", 1, 1, is_diagonal=True),
        GateSpec("p", 1, 1, is_diagonal=True),
        GateSpec("u", 1, 3),
        GateSpec("cx", 2, 0, self_inverse=True),
        GateSpec("cz", 2, 0, is_diagonal=True, self_inverse=True),
        GateSpec("cp", 2, 1, is_diagonal=True),
        GateSpec("crz", 2, 1, is_diagonal=True),
        GateSpec("rzz", 2, 1, is_diagonal=True),
        GateSpec("swap", 2, 0, self_inverse=True),
        GateSpec("iswap", 2, 0),
        GateSpec("ccx", 3, 0, self_inverse=True),
        GateSpec("cswap", 3, 0, self_inverse=True),
        GateSpec("measure", 1, 0),
        GateSpec("reset", 1, 0),
        GateSpec("barrier", 0, 0),
    ]
}

#: The native basis of IBM superconducting backends during the study period.
IBM_BASIS_GATES: Tuple[str, ...] = ("id", "rz", "sx", "x", "cx")

#: Gates that are neither unitaries nor subject to basis translation.
NON_UNITARY_OPERATIONS = frozenset({"measure", "reset", "barrier"})

#: Two-qubit entangling gates (the paper's "CX metrics" generalise to these).
TWO_QUBIT_GATES = frozenset(
    name for name, spec in GATE_SPECS.items()
    if spec.num_qubits == 2 and name not in NON_UNITARY_OPERATIONS
)


@dataclass(frozen=True)
class Gate:
    """A concrete gate: a name plus bound parameter values."""

    name: str
    params: Tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self):
        spec = GATE_SPECS.get(self.name)
        if spec is None:
            raise CircuitError(f"unknown gate {self.name!r}")
        if len(self.params) != spec.num_params:
            raise CircuitError(
                f"gate {self.name!r} expects {spec.num_params} parameter(s), "
                f"got {len(self.params)}"
            )

    @property
    def spec(self) -> GateSpec:
        return GATE_SPECS[self.name]

    @property
    def num_qubits(self) -> int:
        return self.spec.num_qubits

    @property
    def is_two_qubit(self) -> bool:
        return self.name in TWO_QUBIT_GATES

    @property
    def is_directive(self) -> bool:
        """Whether this is a non-gate directive (barrier)."""
        return self.name == "barrier"

    def inverse(self) -> "Gate":
        """Return the inverse gate where a simple closed form exists."""
        if self.spec.self_inverse:
            return self
        inverses = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t",
                    "sx": "sxdg", "sxdg": "sx"}
        if self.name in inverses:
            return Gate(inverses[self.name])
        if self.name in {"rx", "ry", "rz", "p", "cp", "crz", "rzz"}:
            return Gate(self.name, tuple(-p for p in self.params))
        if self.name == "u":
            theta, phi, lam = self.params
            return Gate("u", (-theta, -lam, -phi))
        raise CircuitError(f"no closed-form inverse for gate {self.name!r}")


def is_basis_gate(name: str, basis: Sequence[str] = IBM_BASIS_GATES) -> bool:
    """Whether ``name`` is directly executable in the given basis."""
    return name in basis or name in NON_UNITARY_OPERATIONS


# ---------------------------------------------------------------------------
# Unitary matrices (used by the state-vector simulator and block consolidation)
# ---------------------------------------------------------------------------

_SQRT2_INV = 1.0 / math.sqrt(2.0)


def _u_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    return np.array(
        [
            [cos, -np.exp(1j * lam) * sin],
            [np.exp(1j * phi) * sin, np.exp(1j * (phi + lam)) * cos],
        ],
        dtype=complex,
    )


def _controlled(matrix: np.ndarray) -> np.ndarray:
    """Build the 2-qubit controlled version of a 1-qubit unitary."""
    result = np.eye(4, dtype=complex)
    result[2:, 2:] = matrix
    return result


def gate_matrix(gate: Gate) -> np.ndarray:
    """Return the unitary matrix of ``gate``.

    Raises:
        CircuitError: for non-unitary operations (measure/reset/barrier).
    """
    name = gate.name
    params = gate.params
    if name in NON_UNITARY_OPERATIONS:
        raise CircuitError(f"operation {name!r} has no unitary matrix")

    if name == "id":
        return np.eye(2, dtype=complex)
    if name == "x":
        return np.array([[0, 1], [1, 0]], dtype=complex)
    if name == "y":
        return np.array([[0, -1j], [1j, 0]], dtype=complex)
    if name == "z":
        return np.diag([1, -1]).astype(complex)
    if name == "h":
        return _SQRT2_INV * np.array([[1, 1], [1, -1]], dtype=complex)
    if name == "s":
        return np.diag([1, 1j]).astype(complex)
    if name == "sdg":
        return np.diag([1, -1j]).astype(complex)
    if name == "t":
        return np.diag([1, np.exp(1j * math.pi / 4)]).astype(complex)
    if name == "tdg":
        return np.diag([1, np.exp(-1j * math.pi / 4)]).astype(complex)
    if name == "sx":
        return 0.5 * np.array(
            [[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex
        )
    if name == "sxdg":
        return gate_matrix(Gate("sx")).conj().T
    if name == "rx":
        (theta,) = params
        return _u_matrix(theta, -math.pi / 2, math.pi / 2)
    if name == "ry":
        (theta,) = params
        return _u_matrix(theta, 0.0, 0.0)
    if name == "rz":
        (phi,) = params
        return np.diag(
            [np.exp(-1j * phi / 2), np.exp(1j * phi / 2)]
        ).astype(complex)
    if name == "p":
        (phi,) = params
        return np.diag([1, np.exp(1j * phi)]).astype(complex)
    if name == "u":
        return _u_matrix(*params)
    if name == "cx":
        return np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]],
            dtype=complex,
        )
    if name == "cz":
        return np.diag([1, 1, 1, -1]).astype(complex)
    if name == "cp":
        (phi,) = params
        return np.diag([1, 1, 1, np.exp(1j * phi)]).astype(complex)
    if name == "crz":
        (phi,) = params
        return _controlled(gate_matrix(Gate("rz", (phi,))))
    if name == "rzz":
        (phi,) = params
        phase = np.exp(-1j * phi / 2)
        anti = np.exp(1j * phi / 2)
        return np.diag([phase, anti, anti, phase]).astype(complex)
    if name == "swap":
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]],
            dtype=complex,
        )
    if name == "iswap":
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]],
            dtype=complex,
        )
    if name == "ccx":
        matrix = np.eye(8, dtype=complex)
        matrix[6, 6] = 0
        matrix[7, 7] = 0
        matrix[6, 7] = 1
        matrix[7, 6] = 1
        return matrix
    if name == "cswap":
        matrix = np.eye(8, dtype=complex)
        matrix[[5, 6], :] = matrix[[6, 5], :]
        return matrix
    raise CircuitError(f"no matrix defined for gate {name!r}")
