"""Minimal OpenQASM 2 export / import.

Jobs submitted to IBM Quantum during the study period were serialised as
OpenQASM 2 programs.  The exporter here covers the gate vocabulary of
:mod:`repro.circuits.gates`; the importer accepts the subset that the
exporter produces (single quantum and classical register, no gate
definitions), which is all the round-tripping the library needs.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATE_SPECS
from repro.core.exceptions import CircuitError

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'

_INSTRUCTION_RE = re.compile(
    r"^(?P<name>[a-z][a-z0-9]*)\s*"
    r"(?:\((?P<params>[^)]*)\))?\s*"
    r"(?P<args>[^;]+);$"
)
_QUBIT_RE = re.compile(r"q\[(\d+)\]")
_CLBIT_RE = re.compile(r"c\[(\d+)\]")


def _format_param(value: float) -> str:
    return f"{value:.12g}"


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise ``circuit`` to an OpenQASM 2 string."""
    lines: List[str] = [_HEADER.rstrip("\n")]
    lines.append(f"qreg q[{max(circuit.num_qubits, 1)}];")
    lines.append(f"creg c[{max(circuit.num_clbits, 1)}];")
    for instruction in circuit.instructions:
        name = instruction.name
        qubits = ",".join(f"q[{q}]" for q in instruction.qubits)
        if name == "measure":
            (clbit,) = instruction.clbits
            lines.append(f"measure {qubits} -> c[{clbit}];")
            continue
        if name == "barrier":
            lines.append(f"barrier {qubits};")
            continue
        params = ""
        if instruction.gate.params:
            params = "(" + ",".join(
                _format_param(p) for p in instruction.gate.params
            ) + ")"
        lines.append(f"{name}{params} {qubits};")
    return "\n".join(lines) + "\n"


def _parse_register_declaration(line: str, keyword: str) -> int:
    match = re.match(rf"^{keyword}\s+\w+\[(\d+)\];$", line)
    if not match:
        raise CircuitError(f"malformed register declaration: {line!r}")
    return int(match.group(1))


def from_qasm(text: str, name: str = "from_qasm") -> QuantumCircuit:
    """Parse an OpenQASM 2 string produced by :func:`to_qasm`."""
    num_qubits = 0
    num_clbits = 0
    body: List[Tuple[str, str]] = []
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line:
            continue
        if line.startswith("OPENQASM") or line.startswith("include"):
            continue
        if line.startswith("qreg"):
            num_qubits = _parse_register_declaration(line, "qreg")
            continue
        if line.startswith("creg"):
            num_clbits = _parse_register_declaration(line, "creg")
            continue
        body.append((raw_line, line))

    if num_qubits == 0:
        raise CircuitError("QASM program declares no quantum register")
    circuit = QuantumCircuit(num_qubits, num_clbits or num_qubits, name=name)

    for raw_line, line in body:
        if line.startswith("measure"):
            qubit_match = _QUBIT_RE.search(line)
            clbit_match = _CLBIT_RE.search(line)
            if not qubit_match or not clbit_match:
                raise CircuitError(f"malformed measure: {raw_line!r}")
            circuit.measure(int(qubit_match.group(1)), int(clbit_match.group(1)))
            continue
        match = _INSTRUCTION_RE.match(line)
        if not match:
            raise CircuitError(f"cannot parse QASM line: {raw_line!r}")
        gate_name = match.group("name")
        if gate_name not in GATE_SPECS:
            raise CircuitError(f"unsupported gate in QASM import: {gate_name!r}")
        params: List[float] = []
        if match.group("params"):
            for token in match.group("params").split(","):
                token = token.strip()
                params.append(_evaluate_param(token))
        qubits = [int(q) for q in _QUBIT_RE.findall(match.group("args"))]
        if gate_name == "barrier":
            circuit.barrier(*qubits)
        else:
            circuit.apply(gate_name, qubits, params)
    return circuit


def _evaluate_param(token: str) -> float:
    """Evaluate a numeric QASM parameter, allowing simple ``pi`` expressions."""
    import math

    normalized = token.replace("pi", repr(math.pi))
    if not re.fullmatch(r"[0-9eE()+\-*/. ]+", normalized):
        raise CircuitError(f"unsupported parameter expression: {token!r}")
    try:
        return float(eval(normalized, {"__builtins__": {}}, {}))  # noqa: S307
    except Exception as exc:  # pragma: no cover - defensive
        raise CircuitError(f"cannot evaluate parameter {token!r}") from exc
