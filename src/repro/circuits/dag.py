"""Directed-acyclic-graph view of a circuit.

Transpiler passes (commutation analysis, block collection, routing) need a
dependency structure rather than a flat instruction list.  :class:`CircuitDAG`
builds a DAG whose nodes are instructions and whose edges follow qubit and
classical-bit wires, backed by :mod:`networkx`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import networkx as nx

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.core.exceptions import CircuitError


@dataclass(frozen=True)
class DAGNode:
    """A node in the circuit DAG: an instruction plus its sequence index."""

    index: int
    instruction: Instruction

    @property
    def name(self) -> str:
        return self.instruction.name

    @property
    def qubits(self) -> Tuple[int, ...]:
        return self.instruction.qubits


class CircuitDAG:
    """Dependency DAG over the instructions of a :class:`QuantumCircuit`."""

    def __init__(self, circuit: QuantumCircuit):
        self.num_qubits = circuit.num_qubits
        self.num_clbits = circuit.num_clbits
        self.name = circuit.name
        self._graph = nx.DiGraph()
        self._nodes: List[DAGNode] = []
        self._build(circuit)

    def _build(self, circuit: QuantumCircuit) -> None:
        last_on_wire: Dict[str, int] = {}
        for index, instruction in enumerate(circuit.instructions):
            node = DAGNode(index, instruction)
            self._nodes.append(node)
            self._graph.add_node(index)
            wires = [f"q{q}" for q in instruction.qubits]
            wires.extend(f"c{c}" for c in instruction.clbits)
            for wire in wires:
                previous = last_on_wire.get(wire)
                if previous is not None and previous != index:
                    self._graph.add_edge(previous, index)
                last_on_wire[wire] = index

    # -- queries -------------------------------------------------------------------

    @property
    def graph(self) -> nx.DiGraph:
        return self._graph

    def node(self, index: int) -> DAGNode:
        return self._nodes[index]

    def nodes(self) -> List[DAGNode]:
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def topological_nodes(self) -> Iterator[DAGNode]:
        """Nodes in a deterministic topological order (by sequence index)."""
        for index in nx.lexicographical_topological_sort(self._graph):
            yield self._nodes[index]

    def predecessors(self, index: int) -> List[DAGNode]:
        return [self._nodes[i] for i in sorted(self._graph.predecessors(index))]

    def successors(self, index: int) -> List[DAGNode]:
        return [self._nodes[i] for i in sorted(self._graph.successors(index))]

    def front_layer(self) -> List[DAGNode]:
        """Nodes with no predecessors — the routing frontier."""
        return [
            self._nodes[i]
            for i in sorted(self._graph.nodes)
            if self._graph.in_degree(i) == 0
        ]

    def longest_path_length(self, two_qubit_only: bool = False) -> int:
        """Critical path length, optionally counting only 2-qubit gates."""
        if not self._nodes:
            return 0

        def weight(node: DAGNode) -> int:
            if node.instruction.is_directive:
                return 0
            if two_qubit_only and not node.instruction.is_two_qubit_gate:
                return 0
            return 1

        best: Dict[int, int] = {}
        for index in nx.topological_sort(self._graph):
            node_weight = weight(self._nodes[index])
            incoming = [
                best[p] for p in self._graph.predecessors(index)
            ]
            best[index] = (max(incoming) if incoming else 0) + node_weight
        return max(best.values()) if best else 0

    def layers(self) -> List[List[DAGNode]]:
        """Partition nodes into ASAP layers of simultaneously executable gates."""
        level: Dict[int, int] = {}
        for index in nx.topological_sort(self._graph):
            incoming = [level[p] for p in self._graph.predecessors(index)]
            level[index] = (max(incoming) + 1) if incoming else 0
        if not level:
            return []
        num_layers = max(level.values()) + 1
        result: List[List[DAGNode]] = [[] for _ in range(num_layers)]
        for index, layer in level.items():
            result[layer].append(self._nodes[index])
        for layer_nodes in result:
            layer_nodes.sort(key=lambda node: node.index)
        return result

    def to_circuit(self) -> QuantumCircuit:
        """Rebuild a flat circuit in topological order."""
        circuit = QuantumCircuit(self.num_qubits, self.num_clbits, name=self.name)
        for node in self.topological_nodes():
            circuit.append(node.instruction)
        return circuit

    def validate(self) -> None:
        """Sanity-check the DAG structure (acyclicity)."""
        if not nx.is_directed_acyclic_graph(self._graph):
            raise CircuitError("circuit dependency graph contains a cycle")
