"""The :class:`QuantumCircuit` intermediate representation.

A circuit is an ordered list of :class:`Instruction` objects over a fixed
number of qubits and classical bits.  Beyond construction helpers (``h``,
``cx`` ...), the class exposes exactly the structural metrics the paper's
analysis relies on:

* ``width`` — number of qubits (Section II-B, definition 2),
* ``depth`` / ``cx_depth`` — critical-path length, overall and counted in
  two-qubit gates only (used by the CX metrics of Fig. 7),
* ``cx_count`` / ``gate_counts`` — totals used by the runtime-prediction
  features of Section VI-C.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.circuits.gates import Gate, NON_UNITARY_OPERATIONS, TWO_QUBIT_GATES
from repro.core.exceptions import CircuitError


@dataclass(frozen=True)
class Instruction:
    """A gate (or measurement/reset/barrier) applied to concrete qubits."""

    gate: Gate
    qubits: Tuple[int, ...]
    clbits: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self):
        spec = self.gate.spec
        if self.gate.name == "barrier":
            if not self.qubits:
                raise CircuitError("barrier must span at least one qubit")
        elif len(self.qubits) != spec.num_qubits:
            raise CircuitError(
                f"gate {self.gate.name!r} acts on {spec.num_qubits} qubit(s), "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(
                f"duplicate qubit in instruction {self.gate.name!r}: {self.qubits}"
            )
        if self.gate.name == "measure" and len(self.clbits) != 1:
            raise CircuitError("measure requires exactly one classical bit")

    @property
    def name(self) -> str:
        return self.gate.name

    @property
    def is_two_qubit_gate(self) -> bool:
        return self.gate.name in TWO_QUBIT_GATES

    @property
    def is_directive(self) -> bool:
        return self.gate.name == "barrier"

    def remapped(self, mapping: Dict[int, int]) -> "Instruction":
        """Return a copy with qubit indices translated through ``mapping``."""
        return Instruction(
            self.gate,
            tuple(mapping[q] for q in self.qubits),
            self.clbits,
        )


class QuantumCircuit:
    """A mutable quantum circuit over ``num_qubits`` qubits.

    Example:
        >>> circuit = QuantumCircuit(2, name="bell")
        >>> circuit.h(0).cx(0, 1).measure_all()
        >>> circuit.depth() >= 2
        True
    """

    def __init__(
        self,
        num_qubits: int,
        num_clbits: Optional[int] = None,
        name: str = "circuit",
        metadata: Optional[Dict[str, object]] = None,
    ):
        if num_qubits < 0:
            raise CircuitError("num_qubits must be non-negative")
        self.num_qubits = int(num_qubits)
        self.num_clbits = int(num_clbits if num_clbits is not None else num_qubits)
        self.name = name
        self.metadata: Dict[str, object] = dict(metadata or {})
        self._instructions: List[Instruction] = []

    # -- construction -------------------------------------------------------------

    def append(self, instruction: Instruction) -> "QuantumCircuit":
        """Append an already-built instruction, validating qubit indices."""
        for qubit in instruction.qubits:
            if not 0 <= qubit < self.num_qubits:
                raise CircuitError(
                    f"qubit index {qubit} out of range for "
                    f"{self.num_qubits}-qubit circuit"
                )
        for clbit in instruction.clbits:
            if not 0 <= clbit < self.num_clbits:
                raise CircuitError(
                    f"clbit index {clbit} out of range for "
                    f"{self.num_clbits} classical bits"
                )
        self._instructions.append(instruction)
        return self

    def apply(self, name: str, qubits: Sequence[int],
              params: Sequence[float] = (), clbits: Sequence[int] = ()) -> "QuantumCircuit":
        """Append gate ``name`` on ``qubits`` with the given parameters."""
        gate = Gate(name, tuple(float(p) for p in params))
        return self.append(Instruction(gate, tuple(qubits), tuple(clbits)))

    # convenience single-gate helpers (chainable)
    def id(self, qubit: int) -> "QuantumCircuit":
        return self.apply("id", [qubit])

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.apply("x", [qubit])

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.apply("y", [qubit])

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.apply("z", [qubit])

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.apply("h", [qubit])

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.apply("s", [qubit])

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.apply("sdg", [qubit])

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.apply("t", [qubit])

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self.apply("tdg", [qubit])

    def sx(self, qubit: int) -> "QuantumCircuit":
        return self.apply("sx", [qubit])

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.apply("rx", [qubit], [theta])

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.apply("ry", [qubit], [theta])

    def rz(self, phi: float, qubit: int) -> "QuantumCircuit":
        return self.apply("rz", [qubit], [phi])

    def p(self, phi: float, qubit: int) -> "QuantumCircuit":
        return self.apply("p", [qubit], [phi])

    def u(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        return self.apply("u", [qubit], [theta, phi, lam])

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.apply("cx", [control, target])

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.apply("cz", [control, target])

    def cp(self, phi: float, control: int, target: int) -> "QuantumCircuit":
        return self.apply("cp", [control, target], [phi])

    def crz(self, phi: float, control: int, target: int) -> "QuantumCircuit":
        return self.apply("crz", [control, target], [phi])

    def rzz(self, phi: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.apply("rzz", [qubit_a, qubit_b], [phi])

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.apply("swap", [qubit_a, qubit_b])

    def ccx(self, control_a: int, control_b: int, target: int) -> "QuantumCircuit":
        return self.apply("ccx", [control_a, control_b, target])

    def reset(self, qubit: int) -> "QuantumCircuit":
        return self.apply("reset", [qubit])

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        targets = qubits if qubits else tuple(range(self.num_qubits))
        return self.append(Instruction(Gate("barrier"), tuple(targets)))

    def measure(self, qubit: int, clbit: int) -> "QuantumCircuit":
        return self.apply("measure", [qubit], clbits=[clbit])

    def measure_all(self) -> "QuantumCircuit":
        """Measure every qubit into the classical bit of the same index."""
        if self.num_clbits < self.num_qubits:
            self.num_clbits = self.num_qubits
        for qubit in range(self.num_qubits):
            self.measure(qubit, qubit)
        return self

    def compose(self, other: "QuantumCircuit",
                qubit_offset: int = 0) -> "QuantumCircuit":
        """Append every instruction of ``other`` shifted by ``qubit_offset``."""
        if qubit_offset + other.num_qubits > self.num_qubits:
            raise CircuitError(
                "composed circuit does not fit: "
                f"{qubit_offset} + {other.num_qubits} > {self.num_qubits}"
            )
        mapping = {q: q + qubit_offset for q in range(other.num_qubits)}
        for instruction in other.instructions:
            shifted = instruction.remapped(mapping)
            self.append(shifted)
        return self

    # -- introspection ------------------------------------------------------------

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        return tuple(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    @property
    def width(self) -> int:
        """Number of qubits the circuit is declared over."""
        return self.num_qubits

    @property
    def num_active_qubits(self) -> int:
        """Number of qubits actually touched by at least one instruction."""
        used = set()
        for instruction in self._instructions:
            if not instruction.is_directive:
                used.update(instruction.qubits)
        return len(used)

    def gate_counts(self) -> Dict[str, int]:
        """Count of each operation name (barriers excluded)."""
        counts: Dict[str, int] = {}
        for instruction in self._instructions:
            if instruction.is_directive:
                continue
            counts[instruction.name] = counts.get(instruction.name, 0) + 1
        return counts

    @property
    def size(self) -> int:
        """Total number of operations excluding barriers."""
        return sum(self.gate_counts().values())

    @property
    def num_gates(self) -> int:
        """Total unitary gate count (measure/reset/barrier excluded)."""
        return sum(
            count for name, count in self.gate_counts().items()
            if name not in NON_UNITARY_OPERATIONS
        )

    @property
    def cx_count(self) -> int:
        """Total number of two-qubit entangling gates ("CX-Total")."""
        return sum(
            count for name, count in self.gate_counts().items()
            if name in TWO_QUBIT_GATES
        )

    def depth(self, two_qubit_only: bool = False) -> int:
        """Critical-path length of the circuit.

        Args:
            two_qubit_only: count only two-qubit gates along the critical
                path ("CX-Depth" from the paper) instead of all operations.
        """
        frontier = [0] * max(self.num_qubits + self.num_clbits, 1)

        def bit_slots(instruction: Instruction) -> List[int]:
            slots = list(instruction.qubits)
            slots.extend(self.num_qubits + c for c in instruction.clbits)
            return slots

        for instruction in self._instructions:
            if instruction.is_directive:
                continue
            weight = 1
            if two_qubit_only and not instruction.is_two_qubit_gate:
                weight = 0
            slots = bit_slots(instruction)
            level = max(frontier[s] for s in slots) + weight
            for slot in slots:
                frontier[slot] = level
        return max(frontier) if frontier else 0

    @property
    def cx_depth(self) -> int:
        """Depth counted in two-qubit gates only ("CX-Depth")."""
        return self.depth(two_qubit_only=True)

    def count_measurements(self) -> int:
        return self.gate_counts().get("measure", 0)

    # -- transformation helpers ----------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """Deep copy of the circuit (instructions are immutable, so shallow-safe)."""
        duplicate = QuantumCircuit(
            self.num_qubits, self.num_clbits,
            name=name or self.name,
            metadata=copy.deepcopy(self.metadata),
        )
        duplicate._instructions = list(self._instructions)
        return duplicate

    def remap_qubits(self, mapping: Dict[int, int],
                     num_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Return a new circuit with qubits permuted/embedded via ``mapping``."""
        target_width = num_qubits if num_qubits is not None else self.num_qubits
        remapped = QuantumCircuit(
            target_width, self.num_clbits, name=self.name,
            metadata=copy.deepcopy(self.metadata),
        )
        for instruction in self._instructions:
            remapped.append(instruction.remapped(mapping))
        return remapped

    def without_measurements(self) -> "QuantumCircuit":
        """Return a copy with measure/reset/barrier stripped."""
        stripped = QuantumCircuit(
            self.num_qubits, self.num_clbits, name=self.name,
            metadata=copy.deepcopy(self.metadata),
        )
        for instruction in self._instructions:
            if instruction.name in ("measure", "reset", "barrier"):
                continue
            stripped.append(instruction)
        return stripped

    def two_qubit_instructions(self) -> List[Instruction]:
        """All two-qubit gate instructions in program order."""
        return [i for i in self._instructions if i.is_two_qubit_gate]

    def interacting_pairs(self) -> Dict[Tuple[int, int], int]:
        """Count of two-qubit interactions per unordered qubit pair."""
        pairs: Dict[Tuple[int, int], int] = {}
        for instruction in self.two_qubit_instructions():
            key = tuple(sorted(instruction.qubits))  # type: ignore[assignment]
            pairs[key] = pairs.get(key, 0) + 1
        return pairs

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"size={self.size}, depth={self.depth()}, cx={self.cx_count})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self.num_clbits == other.num_clbits
            and self._instructions == other._instructions
        )

    def summary(self) -> Dict[str, object]:
        """Structural summary used as prediction features and in trace records."""
        return {
            "name": self.name,
            "width": self.width,
            "depth": self.depth(),
            "cx_depth": self.cx_depth,
            "size": self.size,
            "num_gates": self.num_gates,
            "cx_count": self.cx_count,
            "measurements": self.count_measurements(),
        }
