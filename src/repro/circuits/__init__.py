"""Quantum circuit intermediate representation and circuit library.

This package provides the from-scratch circuit substrate the study needs:

* :mod:`repro.circuits.gates` — the gate vocabulary (1q/2q/3q gates, basis
  gates of IBM superconducting devices, matrices for simulation).
* :mod:`repro.circuits.circuit` — :class:`QuantumCircuit`, the mutable list
  of instructions with the width/depth/CX metrics the paper analyses.
* :mod:`repro.circuits.dag` — a DAG view used by transpiler passes and depth
  computation.
* :mod:`repro.circuits.library` — generators for the benchmark circuits the
  paper runs (QFT, GHZ, Bernstein-Vazirani, QAOA, VQE ansatz, random).
* :mod:`repro.circuits.qasm` — a minimal OpenQASM 2 exporter/importer.
"""

from repro.circuits.gates import (
    Gate,
    GateSpec,
    GATE_SPECS,
    IBM_BASIS_GATES,
    is_basis_gate,
    gate_matrix,
)
from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.dag import CircuitDAG, DAGNode
from repro.circuits.library import (
    qft_circuit,
    qft_echo_circuit,
    ghz_circuit,
    bernstein_vazirani_circuit,
    qaoa_maxcut_circuit,
    vqe_ansatz_circuit,
    random_circuit,
    bv_circuit,
    CIRCUIT_FAMILIES,
    build_circuit,
)
from repro.circuits.qasm import to_qasm, from_qasm

__all__ = [
    "Gate",
    "GateSpec",
    "GATE_SPECS",
    "IBM_BASIS_GATES",
    "is_basis_gate",
    "gate_matrix",
    "Instruction",
    "QuantumCircuit",
    "CircuitDAG",
    "DAGNode",
    "qft_circuit",
    "qft_echo_circuit",
    "ghz_circuit",
    "bernstein_vazirani_circuit",
    "bv_circuit",
    "qaoa_maxcut_circuit",
    "vqe_ansatz_circuit",
    "random_circuit",
    "CIRCUIT_FAMILIES",
    "build_circuit",
    "to_qasm",
    "from_qasm",
]
