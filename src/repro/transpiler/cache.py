"""Equivalence-class transpile caching.

Per-circuit transpilation is far too slow for a ~600k-circuit study, but the
study's circuits are drawn from a handful of parameterised templates: every
draw of one (family, width) template has the same gate *structure* and
differs only in rotation angles, which never change a layout, routing or
gate-cancellation decision in the pass library.  The whole workload
therefore collapses into a few hundred structural equivalence classes
(:func:`repro.workloads.circuit_metrics.structural_fingerprint`), and each
class needs exactly one transpile per backend and preset level.

This module owns that amortisation at the transpiler layer:

* :func:`backend_fingerprint` — a content hash of everything about a machine
  that can change a transpile or its fidelity estimate (topology, basis,
  calibration regime), so cache entries survive exactly as long as they are
  valid;
* :func:`summarise_transpile` — one pinned, deterministic transpile of a
  class representative plus its ESP, reduced to the plain-data
  :class:`TranspileSummary` that machine ranking consumes;
* :class:`TranspileCache` — an on-disk store of summaries
  (``transpile-<key>.json``) that lives alongside the trace cache in the
  same cache root; the ``transpile-`` prefix keeps the two namespaces
  disjoint (:meth:`TraceCache.entries` filters on ``trace-``).

Determinism contract: a summary's ranking fields are pure functions of
``(structural class, backend fingerprint, level, seed)``.  Pass timings are
wall-clock and ride along for telemetry only — they must never feed a
ranking decision or a fingerprint, so a cached and a freshly computed
summary rank byte-identically (JSON float round-trips are exact).
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.circuits.circuit import QuantumCircuit
from repro.devices.backend import Backend
from repro.fidelity.estimator import estimate_success_probability
from repro.telemetry import get_registry
from repro.transpiler.presets import transpile

__all__ = [
    "TranspileCache",
    "TranspileCacheEntry",
    "TranspileSummary",
    "backend_fingerprint",
    "summarise_transpile",
    "transpile_cache_key",
]

#: Timestamp every class transpile is pinned to: ranking compares machines
#: under their epoch-zero calibration, independent of when a job happens to
#: be submitted, so one summary serves the whole study.
PINNED_COMPILE_TIME = 0.0

#: Seed of the stochastic passes during class transpilation (the historical
#: :class:`~repro.scheduling.policies.MachineSelector` default).
DEFAULT_RANK_SEED = 11


def backend_fingerprint(backend: Backend) -> str:
    """Content hash of the transpile-relevant identity of a machine.

    Covers the coupling map, basis gates and the full calibration regime
    (profile medians, seed, period, drift rates) — everything that can move
    a layout/routing decision or an ESP estimate.  Queue state, batch
    limits and fleet-timeline fields are deliberately excluded: they change
    which machine a job *may* use, never what a transpile produces.
    """
    model = backend.calibration_model
    profile = model.profile
    payload = {
        "name": backend.name,
        "qubits": backend.coupling_map.num_qubits,
        "edges": backend.coupling_map.edges,
        "basis": list(backend.basis_gates),
        "simulator": backend.is_simulator,
        "calibration": {
            "seed": model._rng_root.seed,
            "period": model.calibration_period,
            "offset": model.calibration_offset,
            "profile": {
                f: getattr(profile, f)
                for f in sorted(profile.__dataclass_fields__)
            },
            "drift": [model.drift.error_growth_per_hour,
                      model.drift.coherence_decay_per_hour],
        },
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()[:24]


@dataclass(frozen=True)
class TranspileSummary:
    """One transpiled equivalence class on one machine, reduced to the
    plain data machine ranking needs.

    ``pass_timings`` is wall-clock telemetry (Chrome-trace pass spans, the
    ``repro_transpile_pass_seconds`` histogram, the Fig. 5 bench) and is
    excluded from ranking and from equality-sensitive consumers.
    """

    family: str
    width: int
    machine: str
    level: int
    seed: int
    class_fingerprint: str
    backend_fingerprint: str
    estimated_success: float
    cx_total: int
    cx_depth: int
    compiled_size: int
    compiled_depth: int
    swap_count: int
    pass_timings: Tuple[Tuple[str, float], ...] = ()

    @property
    def total_pass_seconds(self) -> float:
        return sum(seconds for _, seconds in self.pass_timings)

    def as_dict(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "width": self.width,
            "machine": self.machine,
            "level": self.level,
            "seed": self.seed,
            "class_fingerprint": self.class_fingerprint,
            "backend_fingerprint": self.backend_fingerprint,
            "estimated_success": self.estimated_success,
            "cx_total": self.cx_total,
            "cx_depth": self.cx_depth,
            "compiled_size": self.compiled_size,
            "compiled_depth": self.compiled_depth,
            "swap_count": self.swap_count,
            "pass_timings": [[name, seconds]
                             for name, seconds in self.pass_timings],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TranspileSummary":
        return cls(
            family=str(payload["family"]),
            width=int(payload["width"]),
            machine=str(payload["machine"]),
            level=int(payload["level"]),
            seed=int(payload["seed"]),
            class_fingerprint=str(payload["class_fingerprint"]),
            backend_fingerprint=str(payload["backend_fingerprint"]),
            estimated_success=float(payload["estimated_success"]),
            cx_total=int(payload["cx_total"]),
            cx_depth=int(payload["cx_depth"]),
            compiled_size=int(payload["compiled_size"]),
            compiled_depth=int(payload["compiled_depth"]),
            swap_count=int(payload["swap_count"]),
            pass_timings=tuple((str(name), float(seconds))
                               for name, seconds
                               in payload.get("pass_timings", [])),
        )


def summarise_transpile(
    circuit: QuantumCircuit,
    backend: Backend,
    level: int,
    seed: int = DEFAULT_RANK_SEED,
    family: str = "",
    class_fp: Optional[str] = None,
) -> TranspileSummary:
    """Transpile one class representative and reduce it to a summary.

    The transpile is pinned to :data:`PINNED_COMPILE_TIME` and the ESP to
    the same epoch-zero calibration snapshot, so the ranking fields are a
    pure function of the arguments — every worker, process and run computes
    the same floats.
    """
    if class_fp is None:
        from repro.workloads.circuit_metrics import structural_fingerprint
        class_fp = structural_fingerprint(circuit)
    result = transpile(circuit, backend, optimization_level=level,
                       seed=seed, compile_time=PINNED_COMPILE_TIME)
    calibration = backend.calibration_at(PINNED_COMPILE_TIME)
    estimate = estimate_success_probability(result.circuit, calibration)
    return TranspileSummary(
        family=family or circuit.name,
        width=circuit.num_qubits,
        machine=backend.name,
        level=level,
        seed=seed,
        class_fingerprint=class_fp,
        backend_fingerprint=backend_fingerprint(backend),
        estimated_success=estimate.probability,
        cx_total=estimate.cx_metrics.cx_total,
        cx_depth=estimate.cx_metrics.cx_depth,
        compiled_size=result.circuit.size,
        compiled_depth=result.circuit.depth(),
        swap_count=result.swap_count,
        pass_timings=tuple((t.pass_name, t.seconds) for t in result.timings),
    )


def transpile_cache_key(class_fp: str, backend_fp: str, level: int,
                        seed: int = DEFAULT_RANK_SEED) -> str:
    """The cache key of one (class, backend, level) transpile.

    The package version is included so releases that change pass behaviour
    invalidate stale summaries automatically.
    """
    from repro import __version__

    digest = hashlib.sha256(
        f"{class_fp}|{backend_fp}|{level}|{seed}|{__version__}".encode())
    return digest.hexdigest()[:24]


@dataclass(frozen=True)
class TranspileCacheEntry:
    """One on-disk transpile-cache entry."""

    key: str
    path: Path
    size_bytes: int
    modified: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "path": str(self.path),
            "size_bytes": self.size_bytes,
            "modified": self.modified,
        }


class TranspileCache:
    """A directory of cached transpile summaries, one JSON file per key.

    Shares its root with :class:`~repro.runner.cache.TraceCache` (the
    ``transpile-`` filename prefix keeps the namespaces disjoint).  Hits
    bump the entry mtime so :meth:`prune` evicts least-recently-*used*
    entries, mirroring the trace cache's LRU discipline.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        registry = get_registry()
        self._hits = registry.instance_counter(
            "repro_transpile_cache_hits_total",
            help="Transpile-cache hits across every TranspileCache "
                 "instance.")
        self._misses = registry.instance_counter(
            "repro_transpile_cache_misses_total",
            help="Transpile-cache misses across every TranspileCache "
                 "instance.")
        self._evictions = registry.instance_counter(
            "repro_transpile_cache_evictions_total",
            help="Transpile-cache entries evicted by evict() or prune().")

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    def path_for(self, key: str) -> Path:
        return self.root / f"transpile-{key}.json"

    def get(self, key: str) -> Optional[TranspileSummary]:
        """The cached summary for ``key``, or None on a miss.

        A corrupt entry (truncated write, hand-edited) counts as a miss and
        is overwritten by the recomputed summary.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
            summary = TranspileSummary.from_dict(payload)
        except (OSError, ValueError, TypeError, KeyError):
            self._misses.inc()
            return None
        self._hits.inc()
        try:
            os.utime(path, None)
        except OSError:  # read-only cache dirs still serve hits
            pass
        return summary

    def put(self, key: str, summary: TranspileSummary) -> Path:
        """Store ``summary`` under ``key`` atomically."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        scratch = path.with_suffix(f".tmp.{uuid.uuid4().hex}")
        try:
            scratch.write_text(json.dumps(summary.as_dict(), sort_keys=True))
            scratch.replace(path)
        finally:
            scratch.unlink(missing_ok=True)
        return path

    def entries(self) -> List[TranspileCacheEntry]:
        """Every on-disk entry, least recently used first."""
        found: List[TranspileCacheEntry] = []
        if not self.root.is_dir():
            return found
        for path in self.root.iterdir():
            if not (path.name.startswith("transpile-")
                    and path.suffix == ".json" and path.is_file()):
                continue
            try:
                stat = path.stat()
            except OSError:  # evicted by a concurrent pruner mid-scan
                continue
            found.append(TranspileCacheEntry(
                key=path.name[len("transpile-"):-len(".json")],
                path=path,
                size_bytes=stat.st_size,
                modified=stat.st_mtime,
            ))
        found.sort(key=lambda entry: (entry.modified, entry.key))
        return found

    def total_bytes(self) -> int:
        return sum(entry.size_bytes for entry in self.entries())

    def evict(self, key: str) -> bool:
        try:
            self.path_for(key).unlink()
        except OSError:
            return False
        self._evictions.inc()
        return True

    def prune(self, max_bytes: int) -> List[TranspileCacheEntry]:
        """Evict LRU entries until at most ``max_bytes`` remain."""
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = self.entries()
        total = sum(entry.size_bytes for entry in entries)
        evicted: List[TranspileCacheEntry] = []
        for entry in entries:
            if total <= max_bytes:
                break
            try:
                entry.path.unlink()
            except FileNotFoundError:
                total -= entry.size_bytes
                continue
            except OSError:
                continue
            total -= entry.size_bytes
            self._evictions.inc()
            evicted.append(entry)
        return evicted

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}
