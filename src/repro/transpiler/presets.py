"""Preset transpilation pipelines (optimisation levels 0-3).

The level-3 pipeline mirrors the pass sequence the paper times in Fig. 5:
layout search (CSP, then noise-adaptive/dense fallback, with SABRE available
at level 3), ancilla allocation, layout application, stochastic swap routing,
3q unrolling, basis translation, and the peephole optimisation loop.
"""

from __future__ import annotations

from typing import List, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.core.exceptions import TranspilerError
from repro.devices.backend import Backend
from repro.transpiler.layout import Layout
from repro.transpiler.passmanager import PassManager, TranspileResult
from repro.transpiler.passes.allocation import (
    ApplyLayout,
    EnlargeWithAncilla,
    FullAncillaAllocation,
)
from repro.transpiler.passes.base import BasePass, PropertySet
from repro.transpiler.passes.layout_passes import (
    CSPLayout,
    DenseLayout,
    NoiseAdaptiveLayout,
    SetLayout,
    TrivialLayout,
)
from repro.transpiler.passes.optimization import (
    BarrierBeforeFinalMeasurements,
    Collect2qBlocks,
    CommutationAnalysis,
    CommutativeCancellation,
    ConsolidateBlocks,
    Depth,
    FixedPoint,
    Optimize1qGates,
    OptimizeSwapBeforeMeasure,
    RemoveDiagonalGatesBeforeMeasure,
    RemoveResetInZeroState,
)
from repro.transpiler.passes.routing import BasicSwap, CheckMap, StochasticSwap
from repro.transpiler.passes.unroll import (
    BasisTranslator,
    Unroll3qOrMore,
    UnitarySynthesis,
    UnrollCustomDefinitions,
)

#: Available optimisation levels.
OPTIMIZATION_LEVELS = (0, 1, 2, 3)


def _level_0(seed: int) -> List[BasePass]:
    return [
        SetLayout(),
        TrivialLayout(),
        FullAncillaAllocation(),
        EnlargeWithAncilla(),
        ApplyLayout(),
        CheckMap(),
        BasicSwap(),
        Unroll3qOrMore(),
        UnrollCustomDefinitions(),
        BasisTranslator(),
        Depth(),
    ]


def _level_1(seed: int) -> List[BasePass]:
    return [
        SetLayout(),
        TrivialLayout(),
        FullAncillaAllocation(),
        EnlargeWithAncilla(),
        ApplyLayout(),
        CheckMap(),
        StochasticSwap(trials=3, seed=seed),
        Unroll3qOrMore(),
        UnrollCustomDefinitions(),
        BasisTranslator(),
        Optimize1qGates(),
        UnitarySynthesis(),
        Depth(),
        FixedPoint("depth"),
    ]


def _level_2(seed: int) -> List[BasePass]:
    return [
        SetLayout(),
        CSPLayout(max_assignments=5000),
        DenseLayout(),
        FullAncillaAllocation(),
        EnlargeWithAncilla(),
        ApplyLayout(),
        BarrierBeforeFinalMeasurements(),
        CheckMap(),
        StochasticSwap(trials=4, seed=seed),
        Unroll3qOrMore(),
        UnrollCustomDefinitions(),
        BasisTranslator(),
        RemoveResetInZeroState(),
        RemoveDiagonalGatesBeforeMeasure(),
        CommutationAnalysis(),
        CommutativeCancellation(),
        Optimize1qGates(),
        UnitarySynthesis(),
        Depth(),
        FixedPoint("depth"),
    ]


def _level_3(seed: int) -> List[BasePass]:
    return [
        SetLayout(),
        CSPLayout(max_assignments=10000),
        NoiseAdaptiveLayout(),
        FullAncillaAllocation(),
        EnlargeWithAncilla(),
        ApplyLayout(),
        BarrierBeforeFinalMeasurements(),
        CheckMap(),
        StochasticSwap(trials=5, seed=seed),
        OptimizeSwapBeforeMeasure(),
        Unroll3qOrMore(),
        UnrollCustomDefinitions(),
        BasisTranslator(),
        RemoveResetInZeroState(),
        RemoveDiagonalGatesBeforeMeasure(),
        Collect2qBlocks(),
        ConsolidateBlocks(),
        CommutationAnalysis(),
        CommutativeCancellation(),
        Optimize1qGates(),
        UnitarySynthesis(),
        Depth(),
        FixedPoint("depth"),
    ]


_LEVEL_BUILDERS = {0: _level_0, 1: _level_1, 2: _level_2, 3: _level_3}


def preset_pass_manager(optimization_level: int = 1, seed: int = 17) -> PassManager:
    """Build the preset pass manager for an optimisation level."""
    try:
        builder = _LEVEL_BUILDERS[optimization_level]
    except KeyError:
        raise TranspilerError(
            f"optimization_level must be one of {OPTIMIZATION_LEVELS}, "
            f"got {optimization_level}"
        ) from None
    return PassManager(builder(seed), name=f"level_{optimization_level}")


def transpile(
    circuit: QuantumCircuit,
    backend: Backend,
    optimization_level: int = 1,
    seed: int = 17,
    compile_time: Optional[float] = None,
    initial_layout: Optional[Layout] = None,
) -> TranspileResult:
    """Compile ``circuit`` for ``backend``.

    Args:
        circuit: virtual-qubit circuit.
        backend: target machine.
        optimization_level: 0 (fastest) to 3 (most optimised).
        seed: seed for the stochastic passes.
        compile_time: simulated timestamp of compilation; selects the
            calibration snapshot seen by noise-aware passes.
        initial_layout: force a specific virtual→physical layout.
    """
    if circuit.num_qubits > backend.num_qubits:
        raise TranspilerError(
            f"circuit needs {circuit.num_qubits} qubits but backend "
            f"{backend.name} has {backend.num_qubits}"
        )
    manager = preset_pass_manager(optimization_level, seed=seed)
    properties = PropertySet()
    if initial_layout is not None:
        properties["requested_layout"] = initial_layout
    result = manager.run(circuit, backend=backend, properties=properties,
                         compile_time=compile_time)
    result.optimization_level = optimization_level
    return result
