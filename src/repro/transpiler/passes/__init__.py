"""Transpiler passes, grouped by function.

The pass names intentionally mirror the Qiskit passes the paper profiles in
Fig. 5 so the per-pass compile-time bench reports comparable rows.
"""

from repro.transpiler.passes.base import (
    AnalysisPass,
    BasePass,
    PropertySet,
    TransformationPass,
)
from repro.transpiler.passes.layout_passes import (
    CSPLayout,
    DenseLayout,
    NoiseAdaptiveLayout,
    SabreLayout,
    SetLayout,
    TrivialLayout,
)
from repro.transpiler.passes.allocation import (
    ApplyLayout,
    EnlargeWithAncilla,
    FullAncillaAllocation,
)
from repro.transpiler.passes.routing import BasicSwap, CheckMap, StochasticSwap
from repro.transpiler.passes.unroll import (
    BasisTranslator,
    Unroll3qOrMore,
    UnrollCustomDefinitions,
    UnitarySynthesis,
)
from repro.transpiler.passes.optimization import (
    BarrierBeforeFinalMeasurements,
    Collect2qBlocks,
    CommutationAnalysis,
    CommutativeCancellation,
    ConsolidateBlocks,
    Depth,
    FixedPoint,
    Optimize1qGates,
    OptimizeSwapBeforeMeasure,
    RemoveDiagonalGatesBeforeMeasure,
    RemoveResetInZeroState,
)

__all__ = [
    "AnalysisPass",
    "BasePass",
    "PropertySet",
    "TransformationPass",
    "CSPLayout",
    "DenseLayout",
    "NoiseAdaptiveLayout",
    "SabreLayout",
    "SetLayout",
    "TrivialLayout",
    "ApplyLayout",
    "EnlargeWithAncilla",
    "FullAncillaAllocation",
    "BasicSwap",
    "CheckMap",
    "StochasticSwap",
    "BasisTranslator",
    "Unroll3qOrMore",
    "UnrollCustomDefinitions",
    "UnitarySynthesis",
    "BarrierBeforeFinalMeasurements",
    "Collect2qBlocks",
    "CommutationAnalysis",
    "CommutativeCancellation",
    "ConsolidateBlocks",
    "Depth",
    "FixedPoint",
    "Optimize1qGates",
    "OptimizeSwapBeforeMeasure",
    "RemoveDiagonalGatesBeforeMeasure",
    "RemoveResetInZeroState",
]
