"""Optimisation and analysis passes.

These are the "nice-to-have" passes the paper's recommendation 2 suggests
separating from the mandatory layout/route/translate pipeline: single-qubit
gate merging, cancellation of adjacent self-inverse gates, two-qubit block
collection/consolidation, dead-operation removal before measurement, and the
bookkeeping passes (Depth, FixedPoint, BarrierBeforeFinalMeasurements).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.gates import GATE_SPECS, Gate, NON_UNITARY_OPERATIONS
from repro.transpiler.passes.base import AnalysisPass, PropertySet, TransformationPass
from repro.transpiler.passes.unroll import (
    instruction_sequence_matrix,
    matrix_to_u_gate,
)


class Depth(AnalysisPass):
    """Record the circuit depth in the property set."""

    def analyse(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        properties["depth"] = circuit.depth()
        properties["cx_depth"] = circuit.cx_depth


class FixedPoint(AnalysisPass):
    """Track whether a watched property stopped changing between iterations."""

    def __init__(self, property_name: str = "depth"):
        self.property_name = property_name

    def analyse(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        history_key = f"_fixed_point_previous_{self.property_name}"
        current = properties.get(self.property_name)
        previous = properties.get(history_key)
        properties[f"{self.property_name}_fixed_point"] = (
            previous is not None and previous == current
        )
        properties[history_key] = current


class BarrierBeforeFinalMeasurements(TransformationPass):
    """Insert a barrier separating the trailing measurement layer."""

    def transform(self, circuit: QuantumCircuit,
                  properties: PropertySet) -> QuantumCircuit:
        instructions = list(circuit.instructions)
        # Find the suffix consisting purely of measurements/barriers.
        suffix_start = len(instructions)
        for index in range(len(instructions) - 1, -1, -1):
            if instructions[index].name in ("measure", "barrier"):
                suffix_start = index
            else:
                break
        measured_qubits = sorted({
            q for instr in instructions[suffix_start:]
            if instr.name == "measure"
            for q in instr.qubits
        })
        if not measured_qubits or suffix_start == 0:
            return circuit
        rebuilt = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                                 name=circuit.name, metadata=dict(circuit.metadata))
        for instruction in instructions[:suffix_start]:
            rebuilt.append(instruction)
        rebuilt.barrier(*measured_qubits)
        for instruction in instructions[suffix_start:]:
            if instruction.name == "barrier":
                continue
            rebuilt.append(instruction)
        return rebuilt


class RemoveResetInZeroState(TransformationPass):
    """Drop reset operations on qubits that are still in |0> (never used)."""

    def transform(self, circuit: QuantumCircuit,
                  properties: PropertySet) -> QuantumCircuit:
        touched: Set[int] = set()
        rebuilt = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                                 name=circuit.name, metadata=dict(circuit.metadata))
        for instruction in circuit.instructions:
            if instruction.name == "reset":
                (qubit,) = instruction.qubits
                if qubit not in touched:
                    continue
            if not instruction.is_directive:
                touched.update(instruction.qubits)
            rebuilt.append(instruction)
        return rebuilt


class RemoveDiagonalGatesBeforeMeasure(TransformationPass):
    """Remove diagonal gates immediately preceding a measurement.

    A diagonal gate cannot change computational-basis measurement statistics,
    so ``rz``/``z``/``t``/... directly before ``measure`` on the same qubit
    (with nothing in between) is dead work on hardware.
    """

    def transform(self, circuit: QuantumCircuit,
                  properties: PropertySet) -> QuantumCircuit:
        instructions = list(circuit.instructions)
        removable: Set[int] = set()
        # For every measurement, walk backwards over that qubit's operations.
        last_measure_qubits = {}
        next_use: Dict[int, Optional[int]] = {}
        # Build per-qubit instruction index lists.
        per_qubit: Dict[int, List[int]] = {}
        for index, instruction in enumerate(instructions):
            if instruction.is_directive:
                continue
            for qubit in instruction.qubits:
                per_qubit.setdefault(qubit, []).append(index)
        for qubit, indices in per_qubit.items():
            for position, index in enumerate(indices):
                if instructions[index].name != "measure":
                    continue
                # Walk back over consecutive single-qubit diagonal gates.
                back = position - 1
                while back >= 0:
                    prior = instructions[indices[back]]
                    spec = GATE_SPECS.get(prior.name)
                    if (
                        spec is not None
                        and spec.is_diagonal
                        and spec.num_qubits == 1
                        and prior.name not in NON_UNITARY_OPERATIONS
                    ):
                        removable.add(indices[back])
                        back -= 1
                    else:
                        break
        rebuilt = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                                 name=circuit.name, metadata=dict(circuit.metadata))
        for index, instruction in enumerate(instructions):
            if index in removable:
                continue
            rebuilt.append(instruction)
        return rebuilt


class OptimizeSwapBeforeMeasure(TransformationPass):
    """Replace a SWAP immediately before final measurements by re-wiring them."""

    def transform(self, circuit: QuantumCircuit,
                  properties: PropertySet) -> QuantumCircuit:
        instructions = list(circuit.instructions)
        changed = True
        while changed:
            changed = False
            for index in range(len(instructions) - 1, -1, -1):
                instruction = instructions[index]
                if instruction.name != "swap":
                    continue
                qubit_a, qubit_b = instruction.qubits
                trailing = instructions[index + 1:]
                if not self._only_measures_after(trailing, {qubit_a, qubit_b}):
                    continue
                # Remove the swap and exchange the two qubits in the suffix.
                del instructions[index]
                exchanged = []
                mapping = {qubit_a: qubit_b, qubit_b: qubit_a}
                for later in instructions[index:]:
                    if set(later.qubits) & {qubit_a, qubit_b}:
                        new_qubits = tuple(mapping.get(q, q) for q in later.qubits)
                        exchanged.append(Instruction(later.gate, new_qubits,
                                                     later.clbits))
                    else:
                        exchanged.append(later)
                instructions[index:] = exchanged
                changed = True
                break
        rebuilt = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                                 name=circuit.name, metadata=dict(circuit.metadata))
        for instruction in instructions:
            rebuilt.append(instruction)
        return rebuilt

    @staticmethod
    def _only_measures_after(trailing: Sequence[Instruction],
                             qubits: Set[int]) -> bool:
        for instruction in trailing:
            if not (set(instruction.qubits) & qubits):
                continue
            if instruction.name not in ("measure", "barrier"):
                return False
        return True


class Optimize1qGates(TransformationPass):
    """Merge maximal runs of single-qubit unitaries into one ``u`` gate.

    Runs of length one are kept as-is; identity products are dropped
    entirely.  Combine with :class:`UnitarySynthesis` to re-express the
    merged gate in the device basis.
    """

    def __init__(self, tolerance: float = 1e-9):
        self.tolerance = tolerance

    def transform(self, circuit: QuantumCircuit,
                  properties: PropertySet) -> QuantumCircuit:
        rebuilt = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                                 name=circuit.name, metadata=dict(circuit.metadata))
        pending: Dict[int, List[Instruction]] = {}

        def flush(qubit: int) -> None:
            run = pending.pop(qubit, [])
            if not run:
                return
            if len(run) == 1:
                rebuilt.append(run[0])
                return
            matrix = instruction_sequence_matrix([i.gate for i in run])
            if np.allclose(matrix, np.eye(2) * matrix[0, 0], atol=self.tolerance):
                # Pure global phase: nothing observable remains.
                return
            rebuilt.append(Instruction(matrix_to_u_gate(matrix), (qubit,)))

        for instruction in circuit.instructions:
            spec = GATE_SPECS.get(instruction.name)
            is_mergeable = (
                spec is not None
                and spec.num_qubits == 1
                and instruction.name not in NON_UNITARY_OPERATIONS
            )
            if is_mergeable:
                pending.setdefault(instruction.qubits[0], []).append(instruction)
                continue
            for qubit in instruction.qubits:
                flush(qubit)
            rebuilt.append(instruction)
        for qubit in list(pending):
            flush(qubit)
        return rebuilt


class CommutationAnalysis(AnalysisPass):
    """Record, per qubit wire, which adjacent gates commute.

    The simplified rule set covers what :class:`CommutativeCancellation`
    needs: diagonal gates commute with each other and with the control of a
    CX; X-like gates commute with the target of a CX.
    """

    DIAGONAL = {"rz", "z", "s", "sdg", "t", "tdg", "p", "cz", "cp", "crz", "rzz"}
    X_LIKE = {"x", "sx", "sxdg", "rx"}

    def analyse(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        commuting_pairs: List[Tuple[int, int]] = []
        instructions = list(circuit.instructions)
        last_on_qubit: Dict[int, int] = {}
        for index, instruction in enumerate(instructions):
            if instruction.is_directive:
                continue
            for qubit in instruction.qubits:
                previous = last_on_qubit.get(qubit)
                if previous is not None and self._commute_on_wire(
                    instructions[previous], instruction, qubit
                ):
                    commuting_pairs.append((previous, index))
                last_on_qubit[qubit] = index
        properties["commuting_pairs"] = commuting_pairs

    @classmethod
    def _commute_on_wire(cls, first: Instruction, second: Instruction,
                         qubit: int) -> bool:
        def role(instruction: Instruction) -> str:
            if instruction.name == "cx":
                return "control" if instruction.qubits[0] == qubit else "target"
            if instruction.name in cls.DIAGONAL:
                return "diagonal"
            if instruction.name in cls.X_LIKE:
                return "xlike"
            return "other"

        first_role = role(first)
        second_role = role(second)
        commuting = {
            ("diagonal", "diagonal"),
            ("diagonal", "control"),
            ("control", "diagonal"),
            ("control", "control"),
            ("xlike", "target"),
            ("target", "xlike"),
            ("target", "target"),
            ("xlike", "xlike"),
        }
        return (first_role, second_role) in commuting


class CommutativeCancellation(TransformationPass):
    """Cancel adjacent self-inverse gate pairs on the same qubits.

    Handles the common hardware-relevant cases: back-to-back CX (same
    control/target), doubled X/H/Z/SWAP, and merges of adjacent ``rz``
    rotations on the same qubit.
    """

    def transform(self, circuit: QuantumCircuit,
                  properties: PropertySet) -> QuantumCircuit:
        instructions = list(circuit.instructions)
        changed = True
        while changed:
            changed = False
            index = 0
            while index < len(instructions):
                instruction = instructions[index]
                if instruction.is_directive or instruction.name in NON_UNITARY_OPERATIONS:
                    index += 1
                    continue
                partner = self._find_adjacent_partner(instructions, index)
                if partner is None:
                    index += 1
                    continue
                other = instructions[partner]
                if self._cancels(instruction, other):
                    del instructions[partner]
                    del instructions[index]
                    changed = True
                    index = max(index - 1, 0)
                    continue
                merged = self._merge_rotations(instruction, other)
                if merged is not None:
                    instructions[index] = merged
                    del instructions[partner]
                    changed = True
                    continue
                index += 1
        rebuilt = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                                 name=circuit.name, metadata=dict(circuit.metadata))
        for instruction in instructions:
            rebuilt.append(instruction)
        return rebuilt

    @staticmethod
    def _find_adjacent_partner(instructions: List[Instruction],
                               index: int) -> Optional[int]:
        """Next instruction touching the same qubits with nothing in between."""
        current = instructions[index]
        qubits = set(current.qubits)
        for later in range(index + 1, len(instructions)):
            other = instructions[later]
            if other.is_directive:
                # A barrier touching these qubits blocks cancellation across it.
                if set(other.qubits) & qubits:
                    return None
                continue
            overlap = set(other.qubits) & qubits
            if not overlap:
                continue
            if set(other.qubits) == qubits:
                return later
            return None
        return None

    @staticmethod
    def _cancels(first: Instruction, second: Instruction) -> bool:
        if first.name != second.name:
            return False
        spec = first.gate.spec
        if not spec.self_inverse:
            return False
        if first.name == "cx":
            return first.qubits == second.qubits
        return set(first.qubits) == set(second.qubits) and not first.gate.params

    @staticmethod
    def _merge_rotations(first: Instruction,
                         second: Instruction) -> Optional[Instruction]:
        mergeable = {"rz", "rx", "ry", "p", "cp", "crz", "rzz"}
        if first.name != second.name or first.name not in mergeable:
            return None
        if first.qubits != second.qubits:
            return None
        total = first.gate.params[0] + second.gate.params[0]
        if abs(total) < 1e-12:
            return Instruction(Gate("id"), (first.qubits[0],))
        return Instruction(Gate(first.name, (total,)), first.qubits, first.clbits)


class Collect2qBlocks(AnalysisPass):
    """Group maximal runs of gates acting on the same qubit pair.

    The collected blocks are stored in the property set and consumed by
    :class:`ConsolidateBlocks`.
    """

    def analyse(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        blocks: List[List[int]] = []
        current_pair: Optional[Tuple[int, ...]] = None
        current_block: List[int] = []
        for index, instruction in enumerate(circuit.instructions):
            if instruction.is_two_qubit_gate:
                pair = tuple(sorted(instruction.qubits))
                if pair == current_pair:
                    current_block.append(index)
                else:
                    if len(current_block) > 1:
                        blocks.append(current_block)
                    current_pair = pair
                    current_block = [index]
            elif instruction.is_directive or instruction.name in NON_UNITARY_OPERATIONS:
                if len(current_block) > 1:
                    blocks.append(current_block)
                current_pair = None
                current_block = []
            else:
                # 1-qubit gates inside the pair keep the block alive.
                if current_pair is not None and instruction.qubits[0] in current_pair:
                    current_block.append(index)
                else:
                    if len(current_block) > 1:
                        blocks.append(current_block)
                    current_pair = None
                    current_block = []
        if len(current_block) > 1:
            blocks.append(current_block)
        properties["blocks_2q"] = blocks


class ConsolidateBlocks(TransformationPass):
    """Cancel redundant CX pairs inside collected two-qubit blocks.

    Within each block (gates confined to one qubit pair), adjacent identical
    CX gates with no interposed gate on either qubit annihilate.  This is the
    hardware-relevant subset of full KAK re-synthesis and reduces CX counts
    without changing semantics.
    """

    def transform(self, circuit: QuantumCircuit,
                  properties: PropertySet) -> QuantumCircuit:
        blocks: List[List[int]] = properties.get("blocks_2q") or []
        if not blocks:
            Collect2qBlocks().analyse(circuit, properties)
            blocks = properties.get("blocks_2q") or []
        instructions = list(circuit.instructions)
        to_remove: Set[int] = set()
        for block in blocks:
            previous_cx: Optional[int] = None
            for index in block:
                instruction = instructions[index]
                if instruction.name == "cx":
                    if (previous_cx is not None
                            and instructions[previous_cx].qubits == instruction.qubits):
                        to_remove.add(previous_cx)
                        to_remove.add(index)
                        previous_cx = None
                    else:
                        previous_cx = index
                elif not instruction.is_directive:
                    previous_cx = None
        rebuilt = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                                 name=circuit.name, metadata=dict(circuit.metadata))
        for index, instruction in enumerate(instructions):
            if index in to_remove:
                continue
            rebuilt.append(instruction)
        properties["consolidated_cx_removed"] = len(to_remove)
        return rebuilt
