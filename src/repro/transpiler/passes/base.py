"""Pass infrastructure: property set and pass base classes.

A :class:`PropertySet` carries shared state between passes: the chosen
layout, the target coupling map and calibration snapshot, analysis results
(commutation sets, collected blocks, depth) and fixed-point flags.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.core.exceptions import TranspilerError


class PropertySet:
    """A string-keyed property bag shared across the passes of one run."""

    def __init__(self, initial: Optional[Dict[str, Any]] = None):
        self._data: Dict[str, Any] = dict(initial or {})

    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self._data[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def require(self, key: str) -> Any:
        """Fetch a property, raising a transpiler error if missing."""
        if key not in self._data:
            raise TranspilerError(
                f"required property {key!r} missing; "
                "did an earlier pass fail to run?"
            )
        return self._data[key]

    def as_dict(self) -> Dict[str, Any]:
        return dict(self._data)


class BasePass:
    """Common base of all transpiler passes."""

    @property
    def name(self) -> str:
        return type(self).__name__

    def run(self, circuit: QuantumCircuit,
            properties: PropertySet) -> QuantumCircuit:
        """Run the pass, returning the (possibly new) circuit."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{self.name}()"


class AnalysisPass(BasePass):
    """A pass that only inspects the circuit and records properties."""

    def analyse(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        raise NotImplementedError

    def run(self, circuit: QuantumCircuit,
            properties: PropertySet) -> QuantumCircuit:
        self.analyse(circuit, properties)
        return circuit


class TransformationPass(BasePass):
    """A pass that rewrites the circuit."""

    def transform(self, circuit: QuantumCircuit,
                  properties: PropertySet) -> QuantumCircuit:
        raise NotImplementedError

    def run(self, circuit: QuantumCircuit,
            properties: PropertySet) -> QuantumCircuit:
        return self.transform(circuit, properties)
