"""Ancilla allocation and layout application passes.

After a layout pass picks where the circuit's virtual qubits live, the
circuit must be *embedded* on the device: unused physical qubits become
ancillas (:class:`FullAncillaAllocation` + :class:`EnlargeWithAncilla`) and
the instructions are rewritten onto physical indices
(:class:`ApplyLayout`).
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.core.exceptions import TranspilerError
from repro.devices.topology import CouplingMap
from repro.transpiler.layout import Layout
from repro.transpiler.passes.base import AnalysisPass, PropertySet, TransformationPass


class FullAncillaAllocation(AnalysisPass):
    """Extend the layout so every physical qubit is mapped.

    Unused physical qubits are assigned to fresh virtual ancilla indices
    (appended after the circuit's own qubits).
    """

    def analyse(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        coupling_map: CouplingMap = properties.require("coupling_map")
        layout: Layout = properties.require("layout")
        extended = layout.copy()
        next_virtual = circuit.num_qubits
        used_physical = set(extended.physical_qubits())
        for physical in range(coupling_map.num_qubits):
            if physical in used_physical:
                continue
            extended.assign(next_virtual, physical)
            next_virtual += 1
        properties["layout"] = extended
        properties["num_ancillas"] = next_virtual - circuit.num_qubits


class EnlargeWithAncilla(TransformationPass):
    """Widen the circuit to cover the ancilla virtual qubits added above."""

    def transform(self, circuit: QuantumCircuit,
                  properties: PropertySet) -> QuantumCircuit:
        layout: Layout = properties.require("layout")
        target_width = layout.num_mapped
        if target_width < circuit.num_qubits:
            raise TranspilerError(
                "layout maps fewer qubits than the circuit uses"
            )
        if target_width == circuit.num_qubits:
            return circuit
        widened = QuantumCircuit(target_width, circuit.num_clbits,
                                 name=circuit.name, metadata=dict(circuit.metadata))
        for instruction in circuit.instructions:
            widened.append(instruction)
        return widened


class ApplyLayout(TransformationPass):
    """Rewrite virtual qubit indices into physical indices via the layout."""

    def transform(self, circuit: QuantumCircuit,
                  properties: PropertySet) -> QuantumCircuit:
        coupling_map: CouplingMap = properties.require("coupling_map")
        layout: Layout = properties.require("layout")
        for virtual in range(circuit.num_qubits):
            if not layout.has_virtual(virtual):
                raise TranspilerError(
                    f"layout does not map virtual qubit {virtual}; "
                    "run FullAncillaAllocation/EnlargeWithAncilla first"
                )
        mapping = {v: layout.physical(v) for v in range(circuit.num_qubits)}
        applied = circuit.remap_qubits(mapping, num_qubits=coupling_map.num_qubits)
        properties["physical_circuit"] = True
        return applied
