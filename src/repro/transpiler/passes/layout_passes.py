"""Layout-selection passes.

Several strategies are provided, mirroring the Qiskit passes the paper times
in Fig. 5 and the noise-aware mapping it illustrates in Fig. 12b:

* :class:`SetLayout` / :class:`TrivialLayout` — identity mapping.
* :class:`DenseLayout` — choose the densest connected physical subgraph.
* :class:`NoiseAdaptiveLayout` — greedy mapping that places the most
  interacting virtual qubits onto the best-calibrated physical edges.
* :class:`CSPLayout` — backtracking search for a layout needing no swaps.
* :class:`SabreLayout` — SABRE-style iterative refinement using reverse
  traversal (the expensive layout pass at high optimisation levels).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.core.exceptions import TranspilerError
from repro.core.rng import RandomSource
from repro.devices.calibration import CalibrationSnapshot
from repro.devices.topology import CouplingMap
from repro.transpiler.layout import Layout
from repro.transpiler.passes.base import AnalysisPass, PropertySet


def _require_coupling_map(properties: PropertySet) -> CouplingMap:
    coupling_map = properties.get("coupling_map")
    if coupling_map is None:
        raise TranspilerError("layout passes require a 'coupling_map' property")
    return coupling_map


def _check_fits(circuit: QuantumCircuit, coupling_map: CouplingMap) -> None:
    if circuit.num_qubits > coupling_map.num_qubits:
        raise TranspilerError(
            f"circuit needs {circuit.num_qubits} qubits but the target "
            f"machine has only {coupling_map.num_qubits}"
        )


class SetLayout(AnalysisPass):
    """Install a user-provided layout if one was requested."""

    def __init__(self, layout: Optional[Layout] = None):
        self.layout = layout

    def analyse(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        if self.layout is None:
            layout = properties.get("requested_layout")
        else:
            layout = self.layout
        if layout is not None:
            properties["layout"] = layout.copy()


class TrivialLayout(AnalysisPass):
    """Identity layout: virtual qubit ``i`` on physical qubit ``i``."""

    def analyse(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        if properties.get("layout") is not None:
            return
        coupling_map = _require_coupling_map(properties)
        _check_fits(circuit, coupling_map)
        properties["layout"] = Layout.trivial(circuit.num_qubits)


class DenseLayout(AnalysisPass):
    """Place the circuit on the densest connected physical subregion.

    Greedy construction: seed with the highest-degree physical qubit and
    repeatedly add the neighbour that maximises internal connectivity.
    """

    def analyse(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        if properties.get("layout") is not None:
            return
        coupling_map = _require_coupling_map(properties)
        _check_fits(circuit, coupling_map)
        needed = circuit.num_qubits
        region = self._densest_region(coupling_map, needed)
        properties["layout"] = Layout.from_physical_list(region)

    @staticmethod
    def _densest_region(coupling_map: CouplingMap, size: int) -> List[int]:
        if size == 0:
            return []
        seed = max(range(coupling_map.num_qubits), key=coupling_map.degree)
        region = [seed]
        selected = {seed}
        while len(region) < size:
            frontier = set()
            for qubit in region:
                frontier.update(coupling_map.neighbors(qubit))
            frontier -= selected
            if not frontier:
                # disconnected remainder: fall back to any unused qubit
                remaining = [q for q in range(coupling_map.num_qubits)
                             if q not in selected]
                if not remaining:
                    break
                frontier = {remaining[0]}
            best = max(
                sorted(frontier),
                key=lambda q: sum(
                    1 for n in coupling_map.neighbors(q) if n in selected
                ),
            )
            region.append(best)
            selected.add(best)
        return region


class NoiseAdaptiveLayout(AnalysisPass):
    """Noise-aware greedy layout (the Fig. 12b mapping strategy).

    The most heavily interacting virtual qubit pair is mapped onto the
    lowest-error calibrated edge; remaining virtual qubits are placed, in
    decreasing interaction order, onto the neighbouring physical qubit that
    minimises (edge error + readout error).
    """

    def analyse(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        if properties.get("layout") is not None:
            return
        coupling_map = _require_coupling_map(properties)
        calibration: Optional[CalibrationSnapshot] = properties.get("calibration")
        if calibration is None:
            # Without calibration data fall back to a dense layout.
            DenseLayout().analyse(circuit, properties)
            return
        _check_fits(circuit, coupling_map)
        properties["layout"] = self._build_layout(circuit, coupling_map, calibration)

    def _build_layout(self, circuit: QuantumCircuit, coupling_map: CouplingMap,
                      calibration: CalibrationSnapshot) -> Layout:
        interactions = circuit.interacting_pairs()
        layout = Layout()
        used_physical: set = set()

        def edge_cost(a: int, b: int) -> float:
            gate = calibration.gate(a, b)
            readout = (calibration.qubit(a).readout_error
                       + calibration.qubit(b).readout_error)
            return gate.error + 0.25 * readout

        if interactions:
            # Anchor: heaviest virtual pair onto the best physical edge.
            (virt_a, virt_b), _ = max(interactions.items(), key=lambda kv: kv[1])
            best_edge = min(coupling_map.edges, key=lambda e: edge_cost(*e))
            layout.assign(virt_a, best_edge[0])
            layout.assign(virt_b, best_edge[1])
            used_physical.update(best_edge)

        # Order remaining virtual qubits by total interaction weight.
        weight: Dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
        for (a, b), count in interactions.items():
            weight[a] += count
            weight[b] += count
        pending = [q for q in sorted(weight, key=lambda q: -weight[q])
                   if not layout.has_virtual(q)]

        for virtual in pending:
            # Physical candidates adjacent to already-placed partners first.
            partners = [
                other for (a, b) in interactions
                for other in ((b,) if a == virtual else (a,) if b == virtual else ())
                if layout.has_virtual(other)
            ]
            candidates: List[int] = []
            for partner in partners:
                candidates.extend(
                    n for n in coupling_map.neighbors(layout.physical(partner))
                    if n not in used_physical
                )
            if not candidates:
                candidates = [q for q in range(coupling_map.num_qubits)
                              if q not in used_physical]
            if not candidates:
                raise TranspilerError("ran out of physical qubits during layout")

            def placement_cost(physical: int) -> float:
                qubit_cal = calibration.qubit(physical)
                cost = qubit_cal.readout_error + qubit_cal.single_qubit_error
                for partner in partners:
                    other_physical = layout.physical(partner)
                    if coupling_map.are_connected(physical, other_physical):
                        cost += calibration.gate(physical, other_physical).error
                    else:
                        cost += 0.05 * coupling_map.distance(physical, other_physical)
                return cost

            best_physical = min(sorted(set(candidates)), key=placement_cost)
            layout.assign(virtual, best_physical)
            used_physical.add(best_physical)

        # Any never-interacting virtual qubits go onto the best leftovers.
        for virtual in range(circuit.num_qubits):
            if layout.has_virtual(virtual):
                continue
            leftovers = [q for q in calibration.best_qubits(coupling_map.num_qubits)
                         if q not in used_physical]
            if not leftovers:
                raise TranspilerError("ran out of physical qubits during layout")
            layout.assign(virtual, leftovers[0])
            used_physical.add(leftovers[0])
        return layout


class CSPLayout(AnalysisPass):
    """Search for a layout in which every 2-qubit gate is already adjacent.

    Backtracking over the circuit's interaction graph with a bounded number
    of assignments tried; if no perfect layout exists within the budget, the
    property set is left untouched so a later layout pass can decide.
    """

    def __init__(self, max_assignments: int = 20000):
        self.max_assignments = max_assignments

    def analyse(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        if properties.get("layout") is not None:
            return
        coupling_map = _require_coupling_map(properties)
        _check_fits(circuit, coupling_map)
        interactions = circuit.interacting_pairs()
        if not interactions:
            properties["layout"] = Layout.trivial(circuit.num_qubits)
            return
        virtuals = sorted(
            {q for pair in interactions for q in pair},
            key=lambda q: -sum(c for p, c in interactions.items() if q in p),
        )
        adjacency = {
            virtual: {
                other
                for pair in interactions
                for other in pair
                if virtual in pair and other != virtual
            }
            for virtual in virtuals
        }
        assignment: Dict[int, int] = {}
        used: set = set()
        self._attempts = 0
        if self._backtrack(virtuals, 0, adjacency, coupling_map, assignment, used):
            layout = Layout(assignment)
            for virtual in range(circuit.num_qubits):
                if not layout.has_virtual(virtual):
                    free = next(
                        q for q in range(coupling_map.num_qubits)
                        if q not in layout.physical_qubits()
                    )
                    layout.assign(virtual, free)
            properties["layout"] = layout
            properties["csp_layout_found"] = True
        else:
            properties["csp_layout_found"] = False

    def _backtrack(self, virtuals: List[int], index: int,
                   adjacency: Dict[int, set], coupling_map: CouplingMap,
                   assignment: Dict[int, int], used: set) -> bool:
        if index == len(virtuals):
            return True
        if self._attempts > self.max_assignments:
            return False
        virtual = virtuals[index]
        placed_neighbors = [n for n in adjacency[virtual] if n in assignment]
        if placed_neighbors:
            candidates = set(coupling_map.neighbors(assignment[placed_neighbors[0]]))
            for neighbor in placed_neighbors[1:]:
                candidates &= set(coupling_map.neighbors(assignment[neighbor]))
        else:
            candidates = set(range(coupling_map.num_qubits))
        for physical in sorted(candidates - used):
            self._attempts += 1
            assignment[virtual] = physical
            used.add(physical)
            if self._backtrack(virtuals, index + 1, adjacency, coupling_map,
                               assignment, used):
                return True
            del assignment[virtual]
            used.discard(physical)
        return False


class SabreLayout(AnalysisPass):
    """SABRE-style layout: start random/dense, route forward and backward,
    and keep the final mapping of each sweep as the next initial mapping.

    This is the dominant cost at high optimisation levels on large devices,
    which is exactly the scaling behaviour Fig. 5 reports.
    """

    def __init__(self, iterations: int = 2, seed: int = 11):
        if iterations < 1:
            raise TranspilerError("SabreLayout needs at least one iteration")
        self.iterations = iterations
        self.seed = seed

    def analyse(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        from repro.transpiler.passes.routing import StochasticSwap

        coupling_map = _require_coupling_map(properties)
        _check_fits(circuit, coupling_map)
        rng = RandomSource(self.seed, name="sabre_layout")

        # Initial guess: dense region placement.
        scratch = PropertySet({"coupling_map": coupling_map,
                               "calibration": properties.get("calibration")})
        DenseLayout().analyse(circuit, scratch)
        layout: Layout = scratch.require("layout")

        forward = circuit.without_measurements()
        backward = _reversed_circuit(forward)
        router = StochasticSwap(seed=self.seed, trials=2)

        for iteration in range(self.iterations):
            for direction, program in (("fwd", forward), ("bwd", backward)):
                embedded = _embed(program, layout, coupling_map.num_qubits)
                trial_properties = PropertySet({
                    "coupling_map": coupling_map,
                    "layout": Layout.trivial(coupling_map.num_qubits),
                })
                router.transform(embedded, trial_properties)
                final_layout: Layout = trial_properties.require("final_layout")
                layout = _compose_layouts(layout, final_layout)
        properties["layout"] = layout


def _reversed_circuit(circuit: QuantumCircuit) -> QuantumCircuit:
    reversed_circuit = QuantumCircuit(
        circuit.num_qubits, circuit.num_clbits, name=circuit.name + "_rev"
    )
    for instruction in reversed(circuit.instructions):
        reversed_circuit.append(instruction)
    return reversed_circuit


def _embed(circuit: QuantumCircuit, layout: Layout,
           num_physical: int) -> QuantumCircuit:
    mapping = {v: layout.physical(v) for v in range(circuit.num_qubits)}
    return circuit.remap_qubits(mapping, num_qubits=num_physical)


def _compose_layouts(initial: Layout, permutation: Layout) -> Layout:
    """Apply the routing-induced physical permutation to the initial layout."""
    composed = Layout()
    for virtual in initial.virtual_qubits():
        physical = initial.physical(virtual)
        composed.assign(virtual, permutation.physical(physical)
                        if permutation.has_virtual(physical) else physical)
    return composed
