"""Unrolling and basis-translation passes.

IBM backends of the study period execute the basis ``{id, rz, sx, x, cx}``;
everything else (H, T, SWAP, controlled phases, Toffolis, parametrised
rotations) must be rewritten.  :class:`Unroll3qOrMore` breaks 3-qubit gates
into 1- and 2-qubit gates, :class:`BasisTranslator` rewrites the remainder
into the target basis, and :class:`UnitarySynthesis` re-synthesises merged
1-qubit unitaries via ZYZ Euler angles.
"""

from __future__ import annotations

import cmath
import math
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.gates import Gate, gate_matrix
from repro.core.exceptions import TranspilerError
from repro.transpiler.passes.base import PropertySet, TransformationPass

#: A decomposition step: (gate name, parameter builder, local qubit indices).
_Step = Tuple[str, Callable[[Sequence[float]], Tuple[float, ...]], Tuple[int, ...]]


def _const(*values: float) -> Callable[[Sequence[float]], Tuple[float, ...]]:
    return lambda params: tuple(values)


def _no_params(params: Sequence[float]) -> Tuple[float, ...]:
    return ()


#: Decomposition rules toward the {rz, sx, x, cx} basis.  Each rule expands a
#: single gate into a list of steps on the same qubits (local indices).
DECOMPOSITION_RULES: Dict[str, List[_Step]] = {
    "h": [
        ("rz", _const(math.pi / 2), (0,)),
        ("sx", _no_params, (0,)),
        ("rz", _const(math.pi / 2), (0,)),
    ],
    "z": [("rz", _const(math.pi), (0,))],
    "s": [("rz", _const(math.pi / 2), (0,))],
    "sdg": [("rz", _const(-math.pi / 2), (0,))],
    "t": [("rz", _const(math.pi / 4), (0,))],
    "tdg": [("rz", _const(-math.pi / 4), (0,))],
    "p": [("rz", lambda p: (p[0],), (0,))],
    "y": [
        ("rz", _const(math.pi), (0,)),
        ("x", _no_params, (0,)),
    ],
    "sxdg": [
        ("rz", _const(math.pi), (0,)),
        ("sx", _no_params, (0,)),
        ("rz", _const(math.pi), (0,)),
    ],
    "rx": [("u", lambda p: (p[0], -math.pi / 2, math.pi / 2), (0,))],
    "ry": [("u", lambda p: (p[0], 0.0, 0.0), (0,))],
    "u": [
        ("rz", lambda p: (p[2],), (0,)),
        ("sx", _no_params, (0,)),
        ("rz", lambda p: (p[0] + math.pi,), (0,)),
        ("sx", _no_params, (0,)),
        ("rz", lambda p: (p[1] + math.pi,), (0,)),
    ],
    "swap": [
        ("cx", _no_params, (0, 1)),
        ("cx", _no_params, (1, 0)),
        ("cx", _no_params, (0, 1)),
    ],
    "cz": [
        ("h", _no_params, (1,)),
        ("cx", _no_params, (0, 1)),
        ("h", _no_params, (1,)),
    ],
    "cp": [
        ("rz", lambda p: (p[0] / 2,), (0,)),
        ("cx", _no_params, (0, 1)),
        ("rz", lambda p: (-p[0] / 2,), (1,)),
        ("cx", _no_params, (0, 1)),
        ("rz", lambda p: (p[0] / 2,), (1,)),
    ],
    "crz": [
        ("rz", lambda p: (p[0] / 2,), (1,)),
        ("cx", _no_params, (0, 1)),
        ("rz", lambda p: (-p[0] / 2,), (1,)),
        ("cx", _no_params, (0, 1)),
    ],
    "rzz": [
        ("cx", _no_params, (0, 1)),
        ("rz", lambda p: (p[0],), (1,)),
        ("cx", _no_params, (0, 1)),
    ],
    "iswap": [
        ("s", _no_params, (0,)),
        ("s", _no_params, (1,)),
        ("h", _no_params, (0,)),
        ("cx", _no_params, (0, 1)),
        ("cx", _no_params, (1, 0)),
        ("h", _no_params, (1,)),
    ],
    "ccx": [
        ("h", _no_params, (2,)),
        ("cx", _no_params, (1, 2)),
        ("tdg", _no_params, (2,)),
        ("cx", _no_params, (0, 2)),
        ("t", _no_params, (2,)),
        ("cx", _no_params, (1, 2)),
        ("tdg", _no_params, (2,)),
        ("cx", _no_params, (0, 2)),
        ("t", _no_params, (1,)),
        ("t", _no_params, (2,)),
        ("h", _no_params, (2,)),
        ("cx", _no_params, (0, 1)),
        ("t", _no_params, (0,)),
        ("tdg", _no_params, (1,)),
        ("cx", _no_params, (0, 1)),
    ],
    "cswap": [
        ("cx", _no_params, (2, 1)),
        ("ccx", _no_params, (0, 1, 2)),
        ("cx", _no_params, (2, 1)),
    ],
}

THREE_QUBIT_GATES = ("ccx", "cswap")


def _expand_instruction(instruction: Instruction,
                        expandable: Sequence[str]) -> List[Instruction]:
    """Expand one instruction a single level if its name is expandable."""
    name = instruction.name
    if name not in expandable or name not in DECOMPOSITION_RULES:
        return [instruction]
    rule = DECOMPOSITION_RULES[name]
    params = instruction.gate.params
    expanded: List[Instruction] = []
    for gate_name, param_builder, local_qubits in rule:
        qubits = tuple(instruction.qubits[i] for i in local_qubits)
        expanded.append(Instruction(Gate(gate_name, param_builder(params)), qubits))
    return expanded


def _expand_until(circuit: QuantumCircuit, should_expand: Callable[[str], bool],
                  max_rounds: int = 12) -> QuantumCircuit:
    """Repeatedly expand instructions whose name satisfies ``should_expand``."""
    current = circuit
    for _ in range(max_rounds):
        changed = False
        rebuilt = QuantumCircuit(current.num_qubits, current.num_clbits,
                                 name=current.name,
                                 metadata=dict(current.metadata))
        for instruction in current.instructions:
            if should_expand(instruction.name):
                pieces = _expand_instruction(instruction,
                                             [instruction.name])
                if len(pieces) != 1 or pieces[0] is not instruction:
                    changed = True
                for piece in pieces:
                    rebuilt.append(piece)
            else:
                rebuilt.append(instruction)
        current = rebuilt
        if not changed:
            return current
    # One more scan to confirm convergence.
    for instruction in current.instructions:
        if should_expand(instruction.name):
            raise TranspilerError(
                f"could not fully expand gate {instruction.name!r}"
            )
    return current


class Unroll3qOrMore(TransformationPass):
    """Expand gates on three or more qubits into 1- and 2-qubit gates."""

    def transform(self, circuit: QuantumCircuit,
                  properties: PropertySet) -> QuantumCircuit:
        return _expand_until(circuit, lambda name: name in THREE_QUBIT_GATES)


class UnrollCustomDefinitions(TransformationPass):
    """Expand gates that have no entry in the target equivalence library.

    With the standard library loaded this amounts to a validation scan; any
    gate for which neither a decomposition rule nor basis membership exists
    is rejected here rather than deep inside basis translation.
    """

    def __init__(self, basis: Sequence[str] = ("id", "rz", "sx", "x", "cx")):
        self.basis = tuple(basis)

    def transform(self, circuit: QuantumCircuit,
                  properties: PropertySet) -> QuantumCircuit:
        allowed = set(self.basis) | set(DECOMPOSITION_RULES) | {
            "measure", "reset", "barrier", "id", "x", "sx", "rz", "cx",
        }
        for instruction in circuit.instructions:
            if instruction.name not in allowed:
                raise TranspilerError(
                    f"gate {instruction.name!r} has no decomposition toward "
                    f"basis {self.basis}"
                )
        return circuit


class BasisTranslator(TransformationPass):
    """Rewrite every gate into the target basis using the rule library."""

    def __init__(self, basis: Sequence[str] = ("id", "rz", "sx", "x", "cx")):
        self.basis = tuple(basis)

    def transform(self, circuit: QuantumCircuit,
                  properties: PropertySet) -> QuantumCircuit:
        keep = set(self.basis) | {"measure", "reset", "barrier"}

        def needs_expansion(name: str) -> bool:
            return name not in keep

        translated = _expand_until(circuit, needs_expansion)
        properties["basis"] = self.basis
        return translated


class UnitarySynthesis(TransformationPass):
    """Re-synthesise ``u`` gates (merged 1-qubit unitaries) into the basis.

    Uses the ZYZ Euler decomposition of the gate's matrix, then the standard
    rz-sx-rz-sx-rz identity, dropping rotations with negligible angles.
    """

    def __init__(self, tolerance: float = 1e-9):
        self.tolerance = tolerance

    def transform(self, circuit: QuantumCircuit,
                  properties: PropertySet) -> QuantumCircuit:
        rebuilt = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                                 name=circuit.name,
                                 metadata=dict(circuit.metadata))
        for instruction in circuit.instructions:
            if instruction.name != "u":
                rebuilt.append(instruction)
                continue
            qubit = instruction.qubits[0]
            theta, phi, lam = instruction.gate.params
            for gate in self._synthesise(theta, phi, lam):
                rebuilt.append(Instruction(gate, (qubit,)))
        return rebuilt

    def _synthesise(self, theta: float, phi: float, lam: float) -> List[Gate]:
        tol = self.tolerance
        theta = _normalise_angle(theta)
        if abs(theta) < tol:
            total = _normalise_angle(phi + lam)
            if abs(total) < tol:
                return []
            return [Gate("rz", (total,))]
        gates: List[Gate] = []
        if abs(_normalise_angle(lam)) > tol:
            gates.append(Gate("rz", (_normalise_angle(lam),)))
        gates.append(Gate("sx"))
        gates.append(Gate("rz", (_normalise_angle(theta + math.pi),)))
        gates.append(Gate("sx"))
        gates.append(Gate("rz", (_normalise_angle(phi + math.pi),)))
        return gates


def euler_zyz_angles(matrix: np.ndarray) -> Tuple[float, float, float]:
    """ZYZ Euler angles (theta, phi, lam) of a 2x2 unitary, up to global phase."""
    if matrix.shape != (2, 2):
        raise TranspilerError("euler_zyz_angles expects a 2x2 matrix")
    # Remove global phase so that the matrix is special unitary.
    det = np.linalg.det(matrix)
    su2 = matrix / cmath.sqrt(det)
    theta = 2.0 * math.atan2(abs(su2[1, 0]), abs(su2[0, 0]))
    if abs(su2[0, 0]) < 1e-12:
        phi_plus_lam = 0.0
        phi_minus_lam = 2.0 * cmath.phase(su2[1, 0])
    elif abs(su2[1, 0]) < 1e-12:
        phi_minus_lam = 0.0
        phi_plus_lam = 2.0 * cmath.phase(su2[1, 1])
    else:
        # In SU(2), su2[0,0] = e^{-i(phi+lam)/2} cos(theta/2) and
        # su2[1,0] = e^{i(phi-lam)/2} sin(theta/2) with cos, sin >= 0, so each
        # half-angle phase is read off one entry.  Differencing the conjugate
        # entries instead loses a 2*pi winding when a half-angle equals pi
        # (e.g. the product H X), which silently yields a different unitary.
        phi_plus_lam = 2.0 * cmath.phase(su2[1, 1])
        phi_minus_lam = 2.0 * cmath.phase(su2[1, 0])
    phi = (phi_plus_lam + phi_minus_lam) / 2.0
    lam = (phi_plus_lam - phi_minus_lam) / 2.0
    return theta, phi, lam


def matrix_to_u_gate(matrix: np.ndarray) -> Gate:
    """Convert a 2x2 unitary into the equivalent ``u`` gate."""
    theta, phi, lam = euler_zyz_angles(matrix)
    return Gate("u", (theta, phi, lam))


def instruction_sequence_matrix(gates: Sequence[Gate]) -> np.ndarray:
    """Product matrix of a run of single-qubit gates (applied left-to-right)."""
    result = np.eye(2, dtype=complex)
    for gate in gates:
        result = gate_matrix(gate) @ result
    return result


def _normalise_angle(angle: float) -> float:
    """Wrap an angle into (-pi, pi]."""
    wrapped = math.fmod(angle + math.pi, 2.0 * math.pi)
    if wrapped <= 0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi
