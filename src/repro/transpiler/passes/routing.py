"""Routing passes: make every two-qubit gate nearest-neighbour.

On hardware with restricted connectivity (Section IV-A of the paper), gates
between non-adjacent qubits require SWAP insertion, which inflates CX depth
and is the main reason utilisation of large machines stays low (Fig. 8).
:class:`StochasticSwap` runs several randomised routing trials and keeps the
cheapest — the expensive pass that dominates Fig. 5 at large qubit counts.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.gates import Gate
from repro.core.exceptions import TranspilerError
from repro.core.rng import RandomSource
from repro.devices.topology import CouplingMap
from repro.transpiler.layout import Layout
from repro.transpiler.passes.base import AnalysisPass, PropertySet, TransformationPass


def _require_physical_circuit(circuit: QuantumCircuit,
                              coupling_map: CouplingMap) -> None:
    if circuit.num_qubits > coupling_map.num_qubits:
        raise TranspilerError(
            "routing requires the circuit to be embedded on the device "
            f"(circuit width {circuit.num_qubits} > device "
            f"{coupling_map.num_qubits})"
        )


class CheckMap(AnalysisPass):
    """Record whether every 2-qubit gate acts on coupled physical qubits."""

    def analyse(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        coupling_map: CouplingMap = properties.require("coupling_map")
        mapped = True
        for instruction in circuit.instructions:
            if instruction.is_two_qubit_gate:
                a, b = instruction.qubits
                if a >= coupling_map.num_qubits or b >= coupling_map.num_qubits:
                    mapped = False
                    break
                if not coupling_map.are_connected(a, b):
                    mapped = False
                    break
        properties["is_swap_mapped"] = mapped


class _Router:
    """Shared swap-insertion machinery for the routing passes."""

    def __init__(self, coupling_map: CouplingMap, rng: Optional[RandomSource]):
        self.coupling_map = coupling_map
        self.rng = rng

    def route(self, circuit: QuantumCircuit) -> Tuple[QuantumCircuit, Layout, int]:
        """Insert swaps; returns (routed circuit, wire->physical layout, #swaps)."""
        num_physical = self.coupling_map.num_qubits
        routed = QuantumCircuit(
            num_physical, circuit.num_clbits, name=circuit.name,
            metadata=dict(circuit.metadata),
        )
        position: Dict[int, int] = {w: w for w in range(num_physical)}
        occupant: Dict[int, int] = {p: w for w, p in position.items()}
        swap_count = 0

        for instruction in circuit.instructions:
            if instruction.is_two_qubit_gate:
                wire_a, wire_b = instruction.qubits
                swap_count += self._bring_adjacent(
                    routed, position, occupant, wire_a, wire_b
                )
                routed.append(Instruction(
                    instruction.gate,
                    (position[wire_a], position[wire_b]),
                    instruction.clbits,
                ))
            elif instruction.is_directive:
                physical = tuple(position[w] for w in instruction.qubits)
                routed.append(Instruction(instruction.gate, physical))
            else:
                physical = tuple(position[w] for w in instruction.qubits)
                routed.append(Instruction(instruction.gate, physical,
                                          instruction.clbits))
        final_layout = Layout({w: position[w] for w in range(num_physical)})
        return routed, final_layout, swap_count

    def _bring_adjacent(self, routed: QuantumCircuit, position: Dict[int, int],
                        occupant: Dict[int, int], wire_a: int, wire_b: int) -> int:
        """Insert swaps until the two wires sit on coupled physical qubits."""
        swaps = 0
        guard = 4 * self.coupling_map.num_qubits + 8
        while not self.coupling_map.are_connected(position[wire_a], position[wire_b]):
            if swaps > guard:
                raise TranspilerError(
                    "routing failed to converge; is the coupling map connected?"
                )
            path = self.coupling_map.shortest_path(position[wire_a], position[wire_b])
            if len(path) < 3:
                break
            # Choose which endpoint to move one step along the path.
            move_from_a = True
            if self.rng is not None and self.rng.random() < 0.5:
                move_from_a = False
            if move_from_a:
                here, there = path[0], path[1]
                moving_wire = wire_a
            else:
                here, there = path[-1], path[-2]
                moving_wire = wire_b
            self._apply_swap(routed, position, occupant, here, there)
            swaps += 1
            assert position[moving_wire] == there
        return swaps

    @staticmethod
    def _apply_swap(routed: QuantumCircuit, position: Dict[int, int],
                    occupant: Dict[int, int], physical_a: int, physical_b: int) -> None:
        routed.append(Instruction(Gate("swap"), (physical_a, physical_b)))
        wire_a = occupant[physical_a]
        wire_b = occupant[physical_b]
        position[wire_a], position[wire_b] = physical_b, physical_a
        occupant[physical_a], occupant[physical_b] = wire_b, wire_a


class BasicSwap(TransformationPass):
    """Deterministic shortest-path swap insertion."""

    def transform(self, circuit: QuantumCircuit,
                  properties: PropertySet) -> QuantumCircuit:
        coupling_map: CouplingMap = properties.require("coupling_map")
        _require_physical_circuit(circuit, coupling_map)
        routed, final_layout, swap_count = _Router(coupling_map, rng=None).route(circuit)
        properties["final_layout"] = final_layout
        properties["swap_count"] = swap_count
        return routed


class StochasticSwap(TransformationPass):
    """Randomised multi-trial swap insertion; the cheapest trial wins."""

    def __init__(self, trials: int = 5, seed: int = 17):
        if trials < 1:
            raise TranspilerError("StochasticSwap needs at least one trial")
        self.trials = trials
        self.seed = seed

    def transform(self, circuit: QuantumCircuit,
                  properties: PropertySet) -> QuantumCircuit:
        coupling_map: CouplingMap = properties.require("coupling_map")
        _require_physical_circuit(circuit, coupling_map)
        rng = RandomSource(self.seed, name="stochastic_swap")

        best: Optional[Tuple[int, QuantumCircuit, Layout]] = None
        for trial in range(self.trials):
            router = _Router(coupling_map, rng=rng.child("trial", trial))
            routed, final_layout, swap_count = router.route(circuit)
            if best is None or swap_count < best[0]:
                best = (swap_count, routed, final_layout)
            if swap_count == 0:
                break
        assert best is not None
        swap_count, routed, final_layout = best
        properties["final_layout"] = final_layout
        properties["swap_count"] = swap_count
        return routed
