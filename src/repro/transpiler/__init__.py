"""From-scratch quantum transpiler with per-pass timing.

The transpiler reproduces the pass taxonomy the paper profiles in Fig. 5:
layout selection (trivial / dense / noise-adaptive / CSP), ancilla
allocation, routing via swap insertion, unrolling and basis translation,
and the peephole optimisations (1-qubit gate merging, commutative
cancellation, 2-qubit block consolidation).  Every pass is timed by the
:class:`PassManager`, which is how the compile-time figures are produced.
"""

from repro.transpiler.layout import Layout
from repro.transpiler.passes.base import (
    AnalysisPass,
    BasePass,
    PropertySet,
    TransformationPass,
)
from repro.transpiler.passmanager import PassManager, PassTiming, TranspileResult
from repro.transpiler.presets import (
    OPTIMIZATION_LEVELS,
    preset_pass_manager,
    transpile,
)

__all__ = [
    "Layout",
    "AnalysisPass",
    "BasePass",
    "PropertySet",
    "TransformationPass",
    "PassManager",
    "PassTiming",
    "TranspileResult",
    "OPTIMIZATION_LEVELS",
    "preset_pass_manager",
    "transpile",
]
