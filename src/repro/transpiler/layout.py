"""Virtual-to-physical qubit layout.

A :class:`Layout` maps each *virtual* qubit of the user's circuit onto a
*physical* qubit of the backend.  Layout quality is what the paper's Fig. 12b
illustrates: the optimal mapping changes between calibration cycles, so a
layout chosen against stale calibration data degrades fidelity.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.exceptions import TranspilerError


class Layout:
    """A bijective partial map from virtual qubits to physical qubits."""

    def __init__(self, mapping: Optional[Dict[int, int]] = None):
        self._virtual_to_physical: Dict[int, int] = {}
        self._physical_to_virtual: Dict[int, int] = {}
        if mapping:
            for virtual, physical in mapping.items():
                self.assign(virtual, physical)

    @classmethod
    def trivial(cls, num_qubits: int) -> "Layout":
        """The identity layout over ``num_qubits`` qubits."""
        return cls({i: i for i in range(num_qubits)})

    @classmethod
    def from_physical_list(cls, physical_qubits: Iterable[int]) -> "Layout":
        """Layout mapping virtual ``i`` to the i-th entry of ``physical_qubits``."""
        return cls({i: p for i, p in enumerate(physical_qubits)})

    def assign(self, virtual: int, physical: int) -> None:
        """Map ``virtual`` onto ``physical`` (both must be unused)."""
        if virtual in self._virtual_to_physical:
            raise TranspilerError(f"virtual qubit {virtual} already mapped")
        if physical in self._physical_to_virtual:
            raise TranspilerError(f"physical qubit {physical} already used")
        self._virtual_to_physical[virtual] = physical
        self._physical_to_virtual[physical] = virtual

    def physical(self, virtual: int) -> int:
        try:
            return self._virtual_to_physical[virtual]
        except KeyError:
            raise TranspilerError(f"virtual qubit {virtual} is unmapped") from None

    def virtual(self, physical: int) -> Optional[int]:
        return self._physical_to_virtual.get(physical)

    def has_virtual(self, virtual: int) -> bool:
        return virtual in self._virtual_to_physical

    def swap_physical(self, physical_a: int, physical_b: int) -> None:
        """Exchange the virtual qubits sitting on two physical qubits."""
        virtual_a = self._physical_to_virtual.get(physical_a)
        virtual_b = self._physical_to_virtual.get(physical_b)
        if virtual_a is not None:
            self._virtual_to_physical[virtual_a] = physical_b
        if virtual_b is not None:
            self._virtual_to_physical[virtual_b] = physical_a
        self._physical_to_virtual.pop(physical_a, None)
        self._physical_to_virtual.pop(physical_b, None)
        if virtual_a is not None:
            self._physical_to_virtual[physical_b] = virtual_a
        if virtual_b is not None:
            self._physical_to_virtual[physical_a] = virtual_b

    @property
    def num_mapped(self) -> int:
        return len(self._virtual_to_physical)

    def virtual_qubits(self) -> List[int]:
        return sorted(self._virtual_to_physical)

    def physical_qubits(self) -> List[int]:
        return sorted(self._physical_to_virtual)

    def as_dict(self) -> Dict[int, int]:
        return dict(self._virtual_to_physical)

    def copy(self) -> "Layout":
        return Layout(self.as_dict())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self._virtual_to_physical == other._virtual_to_physical

    def __repr__(self) -> str:
        return f"Layout({self._virtual_to_physical})"
