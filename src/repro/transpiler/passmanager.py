"""Pass manager with per-pass wall-clock timing.

The :class:`PassManager` runs a pipeline of passes over a circuit and
records a :class:`PassTiming` per pass — the data behind the paper's Fig. 5
compile-time breakdown.  The result object also carries the final layout and
the property set so downstream consumers (fidelity estimation, calibration
crossover analysis) can inspect what the compiler decided.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.core.exceptions import TranspilerError
from repro.devices.backend import Backend
from repro.transpiler.layout import Layout
from repro.transpiler.passes.base import BasePass, PropertySet


@dataclass(frozen=True)
class PassTiming:
    """Wall-clock cost and effect of one pass execution."""

    pass_name: str
    seconds: float
    gates_before: int
    gates_after: int
    depth_before: int
    depth_after: int


@dataclass
class TranspileResult:
    """Outcome of a full transpilation run."""

    circuit: QuantumCircuit
    timings: List[PassTiming]
    properties: PropertySet
    optimization_level: Optional[int] = None

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.timings)

    @property
    def layout(self) -> Optional[Layout]:
        return self.properties.get("layout")

    @property
    def swap_count(self) -> int:
        return int(self.properties.get("swap_count", 0))

    def timing_by_pass(self) -> Dict[str, float]:
        """Total seconds spent per pass name (summed over repeats)."""
        totals: Dict[str, float] = {}
        for timing in self.timings:
            totals[timing.pass_name] = totals.get(timing.pass_name, 0.0) + timing.seconds
        return totals

    def summary(self) -> Dict[str, object]:
        compiled = self.circuit
        return {
            "total_compile_seconds": self.total_seconds,
            "passes": len(self.timings),
            "width": compiled.num_qubits,
            "depth": compiled.depth(),
            "cx_depth": compiled.cx_depth,
            "cx_count": compiled.cx_count,
            "size": compiled.size,
            "swap_count": self.swap_count,
        }


class PassManager:
    """Runs an ordered list of passes, timing each one."""

    def __init__(self, passes: Optional[Sequence[BasePass]] = None,
                 name: str = "custom"):
        self._passes: List[BasePass] = list(passes or [])
        self.name = name

    def append(self, pass_instance: BasePass) -> "PassManager":
        self._passes.append(pass_instance)
        return self

    def extend(self, passes: Sequence[BasePass]) -> "PassManager":
        self._passes.extend(passes)
        return self

    @property
    def passes(self) -> List[BasePass]:
        return list(self._passes)

    def run(self, circuit: QuantumCircuit,
            backend: Optional[Backend] = None,
            properties: Optional[PropertySet] = None,
            compile_time: Optional[float] = None) -> TranspileResult:
        """Run the pipeline on ``circuit`` for ``backend``.

        Args:
            circuit: the virtual-qubit circuit to compile.
            backend: target machine; its coupling map and the calibration
                snapshot at ``compile_time`` are installed in the property
                set for layout/fidelity passes.
            properties: pre-populated property set (overrides backend info).
            compile_time: simulator timestamp at which compilation happens;
                controls which calibration snapshot the noise-aware passes
                see (the Fig. 12 staleness mechanism).
        """
        if properties is None:
            properties = PropertySet()
        if backend is not None:
            properties["backend_name"] = backend.name
            properties["coupling_map"] = backend.coupling_map
            if "calibration" not in properties:
                timestamp = compile_time if compile_time is not None else 0.0
                properties["calibration"] = backend.calibration_at(timestamp)
            properties["basis_gates"] = backend.basis_gates
        if "coupling_map" not in properties:
            raise TranspilerError(
                "transpilation requires a backend or an explicit coupling_map"
            )

        current = circuit
        timings: List[PassTiming] = []
        for pass_instance in self._passes:
            gates_before = current.size
            depth_before = current.depth()
            started = time.perf_counter()
            current = pass_instance.run(current, properties)
            elapsed = time.perf_counter() - started
            timings.append(
                PassTiming(
                    pass_name=pass_instance.name,
                    seconds=elapsed,
                    gates_before=gates_before,
                    gates_after=current.size,
                    depth_before=depth_before,
                    depth_after=current.depth(),
                )
            )
        return TranspileResult(circuit=current, timings=timings,
                               properties=properties)

    def __len__(self) -> int:
        return len(self._passes)

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self._passes)
        return f"PassManager(name={self.name!r}, passes=[{names}])"
