"""repro — reproduction of "Quantum Computing in the Cloud: Analyzing job and
machine characteristics" (IISWC 2021).

The library is organised by subsystem; the most commonly used entry points
are re-exported here:

* circuits: :func:`~repro.circuits.qft_circuit` and friends,
  :class:`~repro.circuits.QuantumCircuit`.
* devices: :func:`~repro.devices.build_backend`,
  :func:`~repro.devices.fleet_in_study`.
* transpiler: :func:`~repro.transpiler.transpile`.
* fidelity: :func:`~repro.fidelity.estimate_success_probability`.
* cloud: :class:`~repro.cloud.QuantumCloudService`, :class:`~repro.cloud.Job`.
* workloads: :func:`~repro.workloads.generate_study_trace`.
* scenarios: :class:`~repro.scenarios.Scenario`,
  :func:`~repro.scenarios.builtin_scenarios`,
  :func:`~repro.scenarios.run_scenarios` — declarative what-if studies.
* analysis / prediction / scheduling: the study's analyses and the
  recommendation implementations.
"""

from repro.circuits import QuantumCircuit, qft_circuit, ghz_circuit, build_circuit
from repro.devices import Backend, build_backend, fleet_in_study
from repro.transpiler import transpile
from repro.fidelity import estimate_success_probability, compute_cx_metrics
from repro.cloud import CircuitSpec, Job, QuantumCloudService, circuit_spec_from_circuit
from repro.workloads import TraceDataset, TraceGenerator, TraceGeneratorConfig, generate_study_trace
from repro.prediction import RuntimePredictionStudy, QueueTimePredictor
from repro.scheduling import MachineSelector, SelectionObjective
from repro.scenarios import Scenario, builtin_scenarios, run_scenarios

__version__ = "1.8.0"

__all__ = [
    "QuantumCircuit",
    "qft_circuit",
    "ghz_circuit",
    "build_circuit",
    "Backend",
    "build_backend",
    "fleet_in_study",
    "transpile",
    "estimate_success_probability",
    "compute_cx_metrics",
    "CircuitSpec",
    "Job",
    "QuantumCloudService",
    "circuit_spec_from_circuit",
    "TraceDataset",
    "TraceGenerator",
    "TraceGeneratorConfig",
    "generate_study_trace",
    "RuntimePredictionStudy",
    "QueueTimePredictor",
    "MachineSelector",
    "SelectionObjective",
    "Scenario",
    "builtin_scenarios",
    "run_scenarios",
    "__version__",
]
