"""Fidelity estimation: Probability of Success and CX metrics.

Fig. 7 of the paper correlates the measured Probability of Success (POS) of
a 4-qubit QFT with four compile-time CX metrics (CX-Depth, CX-Total and each
multiplied by the average CX error).  This package provides:

* :mod:`repro.fidelity.metrics` — the CX metrics of a compiled circuit
  against a calibration snapshot.
* :mod:`repro.fidelity.estimator` — the Estimated Success Probability
  (product of gate/readout success probabilities with a decoherence term).
* :mod:`repro.fidelity.statevector` — an exact state-vector simulator for
  small circuits (reference outputs).
* :mod:`repro.fidelity.sampler` — a noisy sampler that produces measured
  counts and a POS estimate, standing in for real-hardware runs.
"""

from repro.fidelity.metrics import CxMetrics, compute_cx_metrics
from repro.fidelity.estimator import SuccessEstimate, estimate_success_probability
from repro.fidelity.statevector import StatevectorSimulator, ideal_distribution
from repro.fidelity.sampler import NoisySampler, SampledResult, measure_probability_of_success

__all__ = [
    "CxMetrics",
    "compute_cx_metrics",
    "SuccessEstimate",
    "estimate_success_probability",
    "StatevectorSimulator",
    "ideal_distribution",
    "NoisySampler",
    "SampledResult",
    "measure_probability_of_success",
]
