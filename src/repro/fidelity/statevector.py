"""Exact state-vector simulation of small circuits.

Used to establish the *ideal* output distribution of a benchmark circuit so
that the noisy sampler can measure a Probability of Success (the fraction of
shots landing on the ideal dominant outcome), exactly as one would do when
running the 4-qubit QFT of Fig. 7 on hardware.

The simulator is deliberately simple (dense state vector, gate-by-gate
application) and is bounded to a moderate number of qubits.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import gate_matrix
from repro.core.exceptions import CircuitError
from repro.core.rng import RandomSource

#: Hard cap to keep memory bounded (2^20 amplitudes ~ 16 MB complex128).
MAX_SIMULATED_QUBITS = 20


class StatevectorSimulator:
    """Dense state-vector simulator for circuits up to ~20 qubits."""

    def __init__(self, max_qubits: int = MAX_SIMULATED_QUBITS):
        self.max_qubits = max_qubits

    def run(self, circuit: QuantumCircuit) -> np.ndarray:
        """Return the final state vector of ``circuit`` (measurements ignored)."""
        if circuit.num_qubits > self.max_qubits:
            raise CircuitError(
                f"state-vector simulation limited to {self.max_qubits} qubits, "
                f"circuit has {circuit.num_qubits}"
            )
        num_qubits = circuit.num_qubits
        state = np.zeros(2 ** num_qubits, dtype=complex)
        state[0] = 1.0
        for instruction in circuit.instructions:
            name = instruction.name
            if name in ("measure", "barrier"):
                continue
            if name == "reset":
                state = _apply_reset(state, instruction.qubits[0], num_qubits)
                continue
            matrix = gate_matrix(instruction.gate)
            state = _apply_gate(state, matrix, instruction.qubits, num_qubits)
        return state

    def probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        """Measurement probabilities over computational basis states."""
        state = self.run(circuit)
        return np.abs(state) ** 2

    def counts(self, circuit: QuantumCircuit, shots: int,
               rng: Optional[RandomSource] = None) -> Dict[str, int]:
        """Sample ideal measurement counts (bitstrings keyed little-endian)."""
        if shots < 1:
            raise CircuitError("shots must be positive")
        probabilities = self.probabilities(circuit)
        rng = rng or RandomSource(0, name="statevector_counts")
        outcomes = rng.generator.choice(
            len(probabilities), size=shots, p=probabilities / probabilities.sum()
        )
        width = circuit.num_qubits
        values, frequencies = np.unique(outcomes, return_counts=True)
        return {
            format(int(value), f"0{width}b"): int(count)
            for value, count in zip(values, frequencies)
        }


def _apply_gate(state: np.ndarray, matrix: np.ndarray,
                qubits: Tuple[int, ...], num_qubits: int) -> np.ndarray:
    """Apply a k-qubit gate matrix to the state vector.

    Qubit 0 is the least-significant bit of the basis-state index.
    """
    k = len(qubits)
    if matrix.shape != (2 ** k, 2 ** k):
        raise CircuitError("gate matrix size does not match its qubit count")
    # Reshape into a tensor with one axis per qubit; axis i corresponds to
    # qubit (num_qubits - 1 - i) because numpy reshape is big-endian.
    tensor = state.reshape([2] * num_qubits)
    axes = [num_qubits - 1 - q for q in qubits]
    tensor = np.moveaxis(tensor, axes, range(k))
    shaped = tensor.reshape(2 ** k, -1)
    shaped = matrix @ shaped
    tensor = shaped.reshape([2] * k + [2] * (num_qubits - k))
    tensor = np.moveaxis(tensor, range(k), axes)
    return tensor.reshape(2 ** num_qubits)


def _apply_reset(state: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
    """Send ``qubit`` to |0> (deterministic reset model).

    If the |0> branch has non-zero probability the state is projected onto it
    and renormalised; otherwise the |1> branch amplitude is moved to |0>
    (equivalent to measure-then-flip).
    """
    tensor = state.reshape([2] * num_qubits).copy()
    axis = num_qubits - 1 - qubit
    tensor = np.moveaxis(tensor, axis, 0)
    zero_norm = np.linalg.norm(tensor[0, ...])
    if zero_norm > 1e-12:
        tensor[1, ...] = 0.0
        tensor = tensor / zero_norm
    else:
        tensor[0, ...] = tensor[1, ...]
        tensor[1, ...] = 0.0
        norm = np.linalg.norm(tensor)
        if norm > 0:
            tensor = tensor / norm
    tensor = np.moveaxis(tensor, 0, axis)
    return tensor.reshape(2 ** num_qubits)


def ideal_distribution(circuit: QuantumCircuit,
                       simulator: Optional[StatevectorSimulator] = None,
                       threshold: float = 1e-9) -> Dict[str, float]:
    """Ideal output distribution of ``circuit`` as {bitstring: probability}."""
    simulator = simulator or StatevectorSimulator()
    probabilities = simulator.probabilities(circuit)
    width = circuit.num_qubits
    return {
        format(index, f"0{width}b"): float(p)
        for index, p in enumerate(probabilities)
        if p > threshold
    }
