"""Compile-time CX metrics (Section IV-B / Fig. 7 of the paper).

For a circuit *compiled for a specific machine*, four quantities are
computed:

* ``cx_depth``  — depth of the critical path counted in 2-qubit gates,
* ``cx_total``  — total number of 2-qubit gates,
* ``cx_depth_x_error`` — CX-Depth x average CX error of the gates used,
* ``cx_total_x_error`` — CX-Total x average CX error of the gates used.

The paper's observation is that POS decreases as these metrics increase and
that they can therefore guide machine selection at compile time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.devices.calibration import CalibrationSnapshot


@dataclass(frozen=True)
class CxMetrics:
    """The four CX metrics of a compiled circuit on a machine."""

    cx_depth: int
    cx_total: int
    average_cx_error: float
    cx_depth_x_error: float
    cx_total_x_error: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "cx_depth": float(self.cx_depth),
            "cx_total": float(self.cx_total),
            "average_cx_error": self.average_cx_error,
            "cx_depth_x_error": self.cx_depth_x_error,
            "cx_total_x_error": self.cx_total_x_error,
        }


def compute_cx_metrics(circuit: QuantumCircuit,
                       calibration: Optional[CalibrationSnapshot] = None) -> CxMetrics:
    """Compute CX metrics of a (physical, routed) circuit.

    Args:
        circuit: a compiled circuit whose qubit indices are physical qubits.
        calibration: calibration snapshot of the target machine; if omitted
            the error-weighted metrics use an error of zero.
    """
    cx_depth = circuit.cx_depth
    two_qubit_instructions = circuit.two_qubit_instructions()
    cx_total = len(two_qubit_instructions)

    if calibration is None or cx_total == 0:
        average_error = 0.0
    else:
        total_error = 0.0
        counted = 0
        for instruction in two_qubit_instructions:
            a, b = instruction.qubits
            if calibration.has_gate(a, b):
                total_error += calibration.gate(a, b).error
                counted += 1
            else:
                # Unrouted gate: charge the machine-average CX error.
                total_error += calibration.average_cx_error()
                counted += 1
        average_error = total_error / counted if counted else 0.0

    return CxMetrics(
        cx_depth=cx_depth,
        cx_total=cx_total,
        average_cx_error=average_error,
        cx_depth_x_error=cx_depth * average_error,
        cx_total_x_error=cx_total * average_error,
    )
