"""Noisy sampling: the stand-in for running a circuit on real hardware.

Given a *logical* reference circuit (to define the ideal outcome), the
*compiled* physical circuit, and a calibration snapshot, the sampler draws
``shots`` measurement outcomes from a mixture of the ideal distribution (with
probability ESP) and an error distribution (readout bit-flips applied to
ideal samples, plus a uniform tail).  The measured Probability of Success is
the probability mass the sampled counts place on the ideal circuit's most
likely outcomes — the quantity plotted as "POS (%)" in Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.core.exceptions import CircuitError
from repro.core.rng import RandomSource
from repro.devices.calibration import CalibrationSnapshot
from repro.fidelity.estimator import SuccessEstimate, estimate_success_probability
from repro.fidelity.statevector import StatevectorSimulator, ideal_distribution


@dataclass
class SampledResult:
    """Counts measured by the noisy sampler plus derived statistics."""

    counts: Dict[str, int]
    shots: int
    probability_of_success: float
    estimate: SuccessEstimate

    def top_outcome(self) -> str:
        return max(self.counts, key=self.counts.get)


class NoisySampler:
    """Samples measurement outcomes of a compiled circuit under noise."""

    def __init__(self, seed: int = 0, uniform_error_fraction: float = 0.35):
        """
        Args:
            seed: RNG seed.
            uniform_error_fraction: of the error mass, the fraction that is
                spread uniformly (depolarising-like); the rest is modelled as
                readout bit flips on ideal samples.
        """
        if not 0.0 <= uniform_error_fraction <= 1.0:
            raise CircuitError("uniform_error_fraction must be in [0, 1]")
        self._rng = RandomSource(seed, name="noisy_sampler")
        self.uniform_error_fraction = uniform_error_fraction
        self._simulator = StatevectorSimulator()

    def sample(
        self,
        logical_circuit: QuantumCircuit,
        compiled_circuit: QuantumCircuit,
        calibration: CalibrationSnapshot,
        shots: int = 1024,
    ) -> SampledResult:
        """Draw ``shots`` outcomes and measure the probability of success."""
        if shots < 1:
            raise CircuitError("shots must be positive")
        estimate = estimate_success_probability(compiled_circuit, calibration)
        ideal = ideal_distribution(logical_circuit.without_measurements(),
                                   self._simulator)
        width = logical_circuit.num_qubits
        outcomes = list(ideal)
        probabilities = np.array([ideal[o] for o in outcomes])
        probabilities = probabilities / probabilities.sum()

        esp = min(max(estimate.probability, 0.0), 1.0)
        generator = self._rng.generator
        counts: Dict[str, int] = {}
        ideal_draws = generator.binomial(shots, esp)
        error_draws = shots - ideal_draws

        if ideal_draws > 0:
            sampled = generator.choice(len(outcomes), size=ideal_draws, p=probabilities)
            for index in sampled:
                key = outcomes[int(index)]
                counts[key] = counts.get(key, 0) + 1
        if error_draws > 0:
            uniform_draws = generator.binomial(error_draws, self.uniform_error_fraction)
            flip_draws = error_draws - uniform_draws
            for _ in range(uniform_draws):
                value = int(generator.integers(0, 2 ** width))
                key = format(value, f"0{width}b")
                counts[key] = counts.get(key, 0) + 1
            if flip_draws > 0:
                base_samples = generator.choice(len(outcomes), size=flip_draws,
                                                p=probabilities)
                flip_probability = max(calibration.average_readout_error(), 0.02)
                for index in base_samples:
                    bits = list(outcomes[int(index)])
                    for position in range(width):
                        if generator.random() < flip_probability * 3:
                            bits[position] = "1" if bits[position] == "0" else "0"
                    key = "".join(bits)
                    counts[key] = counts.get(key, 0) + 1

        # Probability of success: histogram intersection between the measured
        # frequencies and the ideal distribution.  Equals the fraction of
        # shots landing on the correct answer when the ideal output is a
        # single bitstring, and generalises smoothly to spread distributions.
        pos = 0.0
        if shots:
            for outcome, ideal_probability in ideal.items():
                measured = counts.get(outcome, 0) / shots
                pos += min(measured, ideal_probability)
        return SampledResult(
            counts=counts,
            shots=shots,
            probability_of_success=pos,
            estimate=estimate,
        )


def measure_probability_of_success(
    logical_circuit: QuantumCircuit,
    compiled_circuit: QuantumCircuit,
    calibration: CalibrationSnapshot,
    shots: int = 2048,
    seed: int = 0,
) -> float:
    """Convenience wrapper returning just the measured POS."""
    sampler = NoisySampler(seed=seed)
    result = sampler.sample(logical_circuit, compiled_circuit, calibration, shots)
    return result.probability_of_success
