"""Estimated Success Probability (ESP).

The standard NISQ-era fidelity proxy: the probability that *no* gate or
readout error occurs during one shot, times a decoherence factor for the
time the qubits spend idling relative to their coherence times.

``ESP = prod(1 - e_g)  *  prod(1 - e_ro)  *  exp(-t_exec / T_eff)``

This is the quantity the paper's Fig. 7 labels "POS (%)"; on real hardware
it is measured, here it is estimated from the compiled circuit and the
calibration snapshot — which preserves the correlation with the CX metrics
that the figure demonstrates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Set

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import NON_UNITARY_OPERATIONS, TWO_QUBIT_GATES
from repro.devices.calibration import CalibrationSnapshot
from repro.fidelity.metrics import CxMetrics, compute_cx_metrics

#: Default single-qubit gate duration (ns) when the calibration lacks it.
SINGLE_QUBIT_GATE_NS = 35.0


@dataclass(frozen=True)
class SuccessEstimate:
    """ESP of a compiled circuit on a machine, with its components."""

    probability: float
    gate_factor: float
    readout_factor: float
    decoherence_factor: float
    estimated_duration_us: float
    cx_metrics: CxMetrics

    def as_dict(self) -> Dict[str, float]:
        result = {
            "probability": self.probability,
            "gate_factor": self.gate_factor,
            "readout_factor": self.readout_factor,
            "decoherence_factor": self.decoherence_factor,
            "estimated_duration_us": self.estimated_duration_us,
        }
        result.update(self.cx_metrics.as_dict())
        return result


def estimate_success_probability(
    circuit: QuantumCircuit,
    calibration: CalibrationSnapshot,
) -> SuccessEstimate:
    """Estimate the probability of success of a compiled circuit.

    The circuit must already be expressed on physical qubits (post layout
    and routing) so per-edge CX errors and per-qubit readout errors apply.
    """
    gate_success = 1.0
    duration_ns_per_qubit: Dict[int, float] = {}
    measured_qubits: Set[int] = set()

    for instruction in circuit.instructions:
        name = instruction.name
        if name == "barrier":
            continue
        if name == "measure":
            measured_qubits.update(instruction.qubits)
            continue
        if name == "reset":
            for qubit in instruction.qubits:
                duration_ns_per_qubit[qubit] = (
                    duration_ns_per_qubit.get(qubit, 0.0) + 4 * SINGLE_QUBIT_GATE_NS
                )
            continue
        if name in TWO_QUBIT_GATES:
            a, b = instruction.qubits
            if calibration.has_gate(a, b):
                gate = calibration.gate(a, b)
                error = gate.error
                duration = gate.duration_ns
            else:
                error = calibration.average_cx_error()
                duration = 2.5 * SINGLE_QUBIT_GATE_NS * 10
            # SWAPs cost three CX executions when not native.
            multiplier = 3 if name == "swap" else 1
            gate_success *= (1.0 - error) ** multiplier
            for qubit in (a, b):
                duration_ns_per_qubit[qubit] = (
                    duration_ns_per_qubit.get(qubit, 0.0) + duration * multiplier
                )
        else:
            (qubit,) = instruction.qubits
            error = calibration.qubit(qubit).single_qubit_error
            gate_success *= (1.0 - error)
            duration_ns_per_qubit[qubit] = (
                duration_ns_per_qubit.get(qubit, 0.0) + SINGLE_QUBIT_GATE_NS
            )

    if not measured_qubits:
        # Unmeasured circuits: readout applies to every active qubit.
        measured_qubits = {
            q for instr in circuit.instructions
            if instr.name not in NON_UNITARY_OPERATIONS
            for q in instr.qubits
        }

    readout_success = 1.0
    for qubit in measured_qubits:
        readout_success *= (1.0 - calibration.qubit(qubit).readout_error)

    # Decoherence: the critical-path duration compared to the effective
    # coherence time of the qubits actually used.
    active_qubits = set(duration_ns_per_qubit) | measured_qubits
    critical_ns = max(duration_ns_per_qubit.values(), default=0.0)
    if active_qubits:
        t_effective_us = min(
            min(calibration.qubit(q).t1_us, calibration.qubit(q).t2_us)
            for q in active_qubits
        )
    else:
        t_effective_us = calibration.average_t1_us()
    critical_us = critical_ns / 1000.0
    decoherence = math.exp(-critical_us / t_effective_us) if t_effective_us > 0 else 0.0

    probability = gate_success * readout_success * decoherence
    metrics = compute_cx_metrics(circuit, calibration)
    return SuccessEstimate(
        probability=probability,
        gate_factor=gate_success,
        readout_factor=readout_success,
        decoherence_factor=decoherence,
        estimated_duration_us=critical_us,
        cx_metrics=metrics,
    )
