"""Environment-variable helpers shared by the CLI and the bench harness."""

from __future__ import annotations

import os


def env_int(name: str, default: int) -> int:
    """The integer value of environment variable ``name``.

    Unset or malformed values fall back to ``default`` — the harness knobs
    (``REPRO_BENCH_JOBS`` and friends) should never crash a run over a typo.
    """
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default
