"""Time-unit helpers.

All simulator timestamps are kept in seconds (floats) from an arbitrary
epoch; the analysis layer converts to minutes/hours/days when reproducing the
paper's figures, which are reported in minutes.
"""

from __future__ import annotations

MINUTE_SECONDS = 60.0
HOUR_SECONDS = 60.0 * MINUTE_SECONDS
DAY_SECONDS = 24.0 * HOUR_SECONDS


def seconds_to_minutes(seconds: float) -> float:
    """Convert seconds to minutes."""
    return seconds / MINUTE_SECONDS


def minutes_to_seconds(minutes: float) -> float:
    """Convert minutes to seconds."""
    return minutes * MINUTE_SECONDS


def hours_to_seconds(hours: float) -> float:
    """Convert hours to seconds."""
    return hours * HOUR_SECONDS


def days_to_seconds(days: float) -> float:
    """Convert days to seconds."""
    return days * DAY_SECONDS


def format_duration(seconds: float) -> str:
    """Render a duration in a compact human-readable form.

    >>> format_duration(42)
    '42.0s'
    >>> format_duration(3600 * 2 + 120)
    '2h02m'
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < MINUTE_SECONDS:
        return f"{seconds:.1f}s"
    if seconds < HOUR_SECONDS:
        minutes = int(seconds // MINUTE_SECONDS)
        rem = int(seconds % MINUTE_SECONDS)
        return f"{minutes}m{rem:02d}s"
    if seconds < DAY_SECONDS:
        hours = int(seconds // HOUR_SECONDS)
        rem = int((seconds % HOUR_SECONDS) // MINUTE_SECONDS)
        return f"{hours}h{rem:02d}m"
    days = int(seconds // DAY_SECONDS)
    rem = int((seconds % DAY_SECONDS) // HOUR_SECONDS)
    return f"{days}d{rem:02d}h"
