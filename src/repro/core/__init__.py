"""Core primitives shared by every subsystem of the reproduction.

The :mod:`repro.core` package holds the small, dependency-free building
blocks used throughout the library: status enums, exception hierarchy,
time/unit helpers and seeded random-number handling.
"""

from repro.core.exceptions import (
    ReproError,
    CircuitError,
    TranspilerError,
    DeviceError,
    CloudError,
    AnalysisError,
    PredictionError,
    WorkloadError,
)
from repro.core.types import (
    AccessLevel,
    JobStatus,
    MachineGeneration,
    TERMINAL_STATUSES,
)
from repro.core.units import (
    MINUTE_SECONDS,
    HOUR_SECONDS,
    DAY_SECONDS,
    seconds_to_minutes,
    minutes_to_seconds,
    hours_to_seconds,
    days_to_seconds,
    format_duration,
)
from repro.core.env import env_int
from repro.core.rng import RandomSource, derive_seed

__all__ = [
    "ReproError",
    "CircuitError",
    "TranspilerError",
    "DeviceError",
    "CloudError",
    "AnalysisError",
    "PredictionError",
    "WorkloadError",
    "AccessLevel",
    "JobStatus",
    "MachineGeneration",
    "TERMINAL_STATUSES",
    "MINUTE_SECONDS",
    "HOUR_SECONDS",
    "DAY_SECONDS",
    "seconds_to_minutes",
    "minutes_to_seconds",
    "hours_to_seconds",
    "days_to_seconds",
    "format_duration",
    "RandomSource",
    "derive_seed",
    "env_int",
]
