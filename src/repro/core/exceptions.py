"""Exception hierarchy for the reproduction library.

Every package raises a subclass of :class:`ReproError` so callers can catch
library-originated failures with a single ``except`` clause while still being
able to discriminate the subsystem that failed.
"""


class ReproError(Exception):
    """Base class for every error raised by the reproduction library."""


class CircuitError(ReproError):
    """Raised for invalid circuit construction or manipulation."""


class TranspilerError(ReproError):
    """Raised when a transpiler pass cannot complete."""


class DeviceError(ReproError):
    """Raised for invalid device, topology or calibration requests."""


class CloudError(ReproError):
    """Raised by the cloud simulator (submission, queueing, execution)."""


class WorkloadError(ReproError):
    """Raised by workload/trace generation utilities."""


class TraceSchemaError(WorkloadError, ValueError):
    """Raised when a persisted trace was written under an incompatible schema.

    Subclasses ``ValueError`` for backward compatibility with callers that
    treated schema mismatches as generic load failures; the trace cache
    catches this type *specifically* so a mismatch is reported with the
    expected/found versions and the offending path instead of being
    silently regenerated.
    """


class ScenarioError(ReproError):
    """Raised by the scenario engine (invalid specs or perturbations)."""


class AnalysisError(ReproError):
    """Raised by the trace-analysis layer."""


class PredictionError(ReproError):
    """Raised by the runtime/queue prediction models."""
