"""Seeded random-number handling.

Reproducibility matters for the study: the synthetic two-year trace, the
calibration drift, and the stochastic transpiler passes must all be exactly
repeatable from a single seed.  :class:`RandomSource` wraps
``numpy.random.Generator`` and supports deterministic child-stream derivation
so independent subsystems do not perturb each other's streams.
"""

from __future__ import annotations

import hashlib
import math
from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, None, "RandomSource", np.random.Generator]


def derive_seed(base_seed: int, *names: object) -> int:
    """Derive a new deterministic seed from a base seed and a name path.

    The derivation hashes the textual path so that adding a new consumer of
    randomness does not shift the streams of existing consumers.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("utf-8"))
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little")


class RandomSource:
    """A named, seedable random stream with deterministic child streams."""

    def __init__(self, seed: SeedLike = 0, name: str = "root"):
        if isinstance(seed, RandomSource):
            self._seed = seed._seed
            self.name = seed.name
            self._generator = seed._generator
            return
        if isinstance(seed, np.random.Generator):
            self._seed = None
            self.name = name
            self._generator = seed
            return
        self._seed = 0 if seed is None else int(seed)
        self.name = name
        self._generator = np.random.default_rng(self._seed)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._generator

    @property
    def seed(self) -> Optional[int]:
        """The integer seed, if the source was seed-constructed."""
        return self._seed

    def child(self, *names: object) -> "RandomSource":
        """Create an independent child stream keyed by ``names``."""
        base = self._seed if self._seed is not None else 0
        child_seed = derive_seed(base, self.name, *names)
        label = self.name + "/" + "/".join(str(n) for n in names)
        return RandomSource(child_seed, name=label)

    def spawn_seed(self, key: object) -> int:
        """Derive the integer seed of the spawned stream for ``key``.

        Spawned seeds live in their own namespace, separate from
        :meth:`child`, so a shard runner that spawns per-shard streams can
        never collide with subsystem child streams of the same name.
        """
        base = self._seed if self._seed is not None else 0
        return derive_seed(base, self.name, "#spawn", key)

    def spawn(self, key: object) -> "RandomSource":
        """Create an independently seeded stream for a shard or worker.

        Unlike :meth:`child`, which is meant for named subsystems hanging off
        one generator tree, ``spawn`` is the entry point for *horizontal*
        parallelism: every shard/worker/job index gets a stream that is fully
        determined by ``(root seed, root name, key)`` and therefore identical
        no matter which process, worker count, or shard layout produced it.
        """
        return RandomSource(self.spawn_seed(key), name=f"{self.name}#{key}")

    # -- thin convenience wrappers -------------------------------------------------

    def random(self) -> float:
        return float(self._generator.random())

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._generator.uniform(low, high))

    def integers(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self._generator.integers(low, high))

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        return float(self._generator.normal(loc, scale))

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        return float(self._generator.lognormal(mean, sigma))

    def exponential(self, scale: float = 1.0) -> float:
        return float(self._generator.exponential(scale))

    def choice(self, options: Sequence, p: Optional[Sequence[float]] = None):
        """Choose one element of ``options`` (optionally weighted)."""
        index = self._generator.choice(len(options), p=p)
        return options[int(index)]

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._generator.shuffle(items)

    def __repr__(self) -> str:
        return f"RandomSource(name={self.name!r}, seed={self._seed!r})"


class BufferedDraws:
    """Block-buffered scalar draws for hot simulation loops.

    Drawing variates one at a time through :class:`RandomSource` pays
    numpy's fixed per-call dispatch cost on every draw; the discrete-event
    simulator samples the external backlog once per submission and once per
    dispatch, which makes those scalar draws a measurable fraction of the
    event loop.  ``BufferedDraws`` pre-draws fixed-size blocks (one
    vectorised generator call per block) from two dedicated child streams —
    one for standard normals, one for uniforms — and serves them back one
    value at a time.

    Refills happen lazily, so the sequence of returned values is a pure
    function of the source seed and the call sequence: the same per-machine
    event order produces the same draws no matter how the fleet is sharded
    across worker processes.
    """

    def __init__(self, source: RandomSource, block_size: int = 1024):
        if block_size < 1:
            raise ValueError("block_size must be at least 1")
        self._normal_generator = source.child("normal").generator
        self._uniform_generator = source.child("uniform").generator
        self._block_size = int(block_size)
        self._normals = np.empty(0)
        self._normal_next = 0
        self._uniforms = np.empty(0)
        self._uniform_next = 0

    def _next_normal(self) -> float:
        if self._normal_next >= self._normals.shape[0]:
            self._normals = self._normal_generator.standard_normal(
                self._block_size)
            self._normal_next = 0
        value = self._normals[self._normal_next]
        self._normal_next += 1
        return float(value)

    def _next_uniform(self) -> float:
        if self._uniform_next >= self._uniforms.shape[0]:
            self._uniforms = self._uniform_generator.random(self._block_size)
            self._uniform_next = 0
        value = self._uniforms[self._uniform_next]
        self._uniform_next += 1
        return float(value)

    # -- the RandomSource sampling subset the backlog model consumes ---------------

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        return loc + scale * self._next_normal()

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        # numpy's Generator.lognormal(mean, sigma) is exactly
        # exp(mean + sigma * z) over the generator's normal stream, so this
        # stays bit-identical to RandomSource.lognormal given the same z.
        return math.exp(mean + sigma * self._next_normal())

    def random(self) -> float:
        return self._next_uniform()

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return low + (high - low) * self._next_uniform()
