"""Shared enums describing job, access and machine classifications.

The vocabulary mirrors the terminology section of the paper (Section II-B):
jobs move through a queue into execution and finish in a terminal status of
``DONE``, ``ERROR`` or ``CANCELLED``; machines are either publicly accessible
or reserved for privileged (paid / hub) access.
"""

from __future__ import annotations

import enum


class JobStatus(enum.Enum):
    """Lifecycle status of a job submitted to the quantum cloud."""

    INITIALIZING = "INITIALIZING"
    QUEUED = "QUEUED"
    VALIDATING = "VALIDATING"
    RUNNING = "RUNNING"
    DONE = "DONE"
    ERROR = "ERROR"
    CANCELLED = "CANCELLED"

    @property
    def is_terminal(self) -> bool:
        """Whether the status is final (the job will not change further)."""
        return self in TERMINAL_STATUSES

    @property
    def is_successful(self) -> bool:
        """Whether the job completed execution on the machine.

        Note that, as the paper stresses, ``DONE`` only means the job ran to
        completion; it says nothing about the fidelity of the results.
        """
        return self is JobStatus.DONE


TERMINAL_STATUSES = frozenset(
    {JobStatus.DONE, JobStatus.ERROR, JobStatus.CANCELLED}
)


class AccessLevel(enum.Enum):
    """Access class of a machine on the quantum cloud."""

    PUBLIC = "public"
    PRIVILEGED = "privileged"

    @property
    def is_public(self) -> bool:
        return self is AccessLevel.PUBLIC


class MachineGeneration(enum.Enum):
    """Coarse processor family, used to group machines by size/technology."""

    CANARY = "canary"          # 1-5 qubits
    FALCON_SMALL = "falcon_small"    # 5-7 qubits
    FALCON_MEDIUM = "falcon_medium"  # 16-27 qubits
    HUMMINGBIRD = "hummingbird"      # 53-65 qubits

    @classmethod
    def for_qubit_count(cls, num_qubits: int) -> "MachineGeneration":
        """Classify a machine by its number of qubits."""
        if num_qubits <= 5:
            return cls.CANARY
        if num_qubits <= 7:
            return cls.FALCON_SMALL
        if num_qubits <= 28:
            return cls.FALCON_MEDIUM
        return cls.HUMMINGBIRD
