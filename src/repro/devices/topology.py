"""Coupling maps and topology metrics.

IBM superconducting devices restrict two-qubit gates to nearest-neighbour
pairs of a sparse coupling graph.  This module provides:

* :class:`CouplingMap` — the undirected connectivity graph with distance
  queries (used by routing) and the **bisection bandwidth** metric that
  Fig. 6 of the paper plots against machine size.
* Constructors for the topology families used by the machine catalog:
  lines, rings, grids, the 5-qubit T/bowtie layouts, the 16/27-qubit Falcon
  lattices and the 53/65-qubit Hummingbird heavy-hex lattices.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core.exceptions import DeviceError

Edge = Tuple[int, int]


class CouplingMap:
    """Undirected qubit-connectivity graph of a quantum machine."""

    def __init__(self, num_qubits: int, edges: Iterable[Edge]):
        if num_qubits < 1:
            raise DeviceError("a coupling map needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self._graph = nx.Graph()
        self._graph.add_nodes_from(range(self.num_qubits))
        for a, b in edges:
            if a == b:
                raise DeviceError(f"self-loop edge ({a}, {b}) is invalid")
            if not (0 <= a < num_qubits and 0 <= b < num_qubits):
                raise DeviceError(
                    f"edge ({a}, {b}) out of range for {num_qubits} qubits"
                )
            self._graph.add_edge(int(a), int(b))
        self._distance_cache: Optional[Dict[int, Dict[int, int]]] = None

    # -- basic structure -----------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    @property
    def edges(self) -> List[Edge]:
        return sorted(tuple(sorted(edge)) for edge in self._graph.edges)

    @property
    def num_edges(self) -> int:
        return self._graph.number_of_edges()

    def neighbors(self, qubit: int) -> List[int]:
        self._check_qubit(qubit)
        return sorted(self._graph.neighbors(qubit))

    def degree(self, qubit: int) -> int:
        self._check_qubit(qubit)
        return self._graph.degree(qubit)

    def are_connected(self, qubit_a: int, qubit_b: int) -> bool:
        self._check_qubit(qubit_a)
        self._check_qubit(qubit_b)
        return self._graph.has_edge(qubit_a, qubit_b)

    def is_connected_graph(self) -> bool:
        """Whether the device graph is a single connected component."""
        if self.num_qubits == 1:
            return True
        return nx.is_connected(self._graph)

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise DeviceError(
                f"qubit {qubit} out of range for {self.num_qubits}-qubit map"
            )

    # -- distances -----------------------------------------------------------------

    def _distances(self) -> Dict[int, Dict[int, int]]:
        if self._distance_cache is None:
            self._distance_cache = dict(nx.all_pairs_shortest_path_length(self._graph))
        return self._distance_cache

    def distance(self, qubit_a: int, qubit_b: int) -> int:
        """Shortest-path distance in the coupling graph."""
        self._check_qubit(qubit_a)
        self._check_qubit(qubit_b)
        try:
            return self._distances()[qubit_a][qubit_b]
        except KeyError:
            raise DeviceError(
                f"qubits {qubit_a} and {qubit_b} are not connected"
            ) from None

    def shortest_path(self, qubit_a: int, qubit_b: int) -> List[int]:
        self._check_qubit(qubit_a)
        self._check_qubit(qubit_b)
        try:
            return nx.shortest_path(self._graph, qubit_a, qubit_b)
        except nx.NetworkXNoPath:
            raise DeviceError(
                f"qubits {qubit_a} and {qubit_b} are not connected"
            ) from None

    def diameter(self) -> int:
        if not self.is_connected_graph():
            raise DeviceError("diameter undefined for disconnected coupling map")
        if self.num_qubits == 1:
            return 0
        return nx.diameter(self._graph)

    # -- bisection bandwidth (Fig. 6) ------------------------------------------------

    def bisection_bandwidth(self, exact_limit: int = 14) -> int:
        """Minimum number of edges crossing a balanced bipartition.

        For machines up to ``exact_limit`` qubits the exact optimum is found
        by enumerating balanced partitions; beyond that a Kernighan-Lin style
        heuristic (with several seeds) is used, which matches the accuracy
        needed to reproduce Fig. 6's qualitative claim that quantum devices
        have far lower bisection bandwidth than classical meshes.
        """
        if self.num_qubits == 1:
            return 0
        nodes = list(range(self.num_qubits))
        half = self.num_qubits // 2
        if self.num_qubits <= exact_limit:
            best = None
            anchored = nodes[0]
            others = nodes[1:]
            for combo in itertools.combinations(others, half - 1 if half >= 1 else 0):
                side = set(combo) | {anchored}
                if len(side) != half:
                    continue
                cut = self._cut_size(side)
                if best is None or cut < best:
                    best = cut
            if best is None:
                # num_qubits == 2 edge case: the only balanced split.
                best = self._cut_size({nodes[0]})
            return best
        return self._heuristic_bisection(half)

    def _cut_size(self, side: Set[int]) -> int:
        return sum(
            1 for a, b in self._graph.edges if (a in side) != (b in side)
        )

    def _heuristic_bisection(self, half: int) -> int:
        best = None
        for seed in range(5):
            try:
                partition = nx.algorithms.community.kernighan_lin_bisection(
                    self._graph, max_iter=20, seed=seed
                )
            except Exception:  # pragma: no cover - networkx internal failure
                continue
            side = set(itertools.islice(iter(partition[0]), len(partition[0])))
            cut = self._cut_size(side)
            if best is None or cut < best:
                best = cut
        if best is None:  # pragma: no cover - fallback
            best = self._cut_size(set(range(half)))
        return best

    def subgraph_is_connected(self, qubits: Sequence[int]) -> bool:
        """Whether the induced subgraph over ``qubits`` is connected."""
        if not qubits:
            return False
        sub = self._graph.subgraph(qubits)
        return nx.is_connected(sub)

    def __repr__(self) -> str:
        return f"CouplingMap(qubits={self.num_qubits}, edges={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CouplingMap):
            return NotImplemented
        return self.num_qubits == other.num_qubits and self.edges == other.edges


# ---------------------------------------------------------------------------
# Topology constructors
# ---------------------------------------------------------------------------

def line_topology(num_qubits: int) -> CouplingMap:
    """A 1-D chain of qubits."""
    return CouplingMap(num_qubits, [(i, i + 1) for i in range(num_qubits - 1)])


def ring_topology(num_qubits: int) -> CouplingMap:
    """A 1-D ring."""
    if num_qubits < 3:
        return line_topology(num_qubits)
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    return CouplingMap(num_qubits, edges)


def star_topology(num_qubits: int) -> CouplingMap:
    """Qubit 0 connected to every other qubit."""
    return CouplingMap(num_qubits, [(0, i) for i in range(1, num_qubits)])


def fully_connected_topology(num_qubits: int) -> CouplingMap:
    """All-to-all connectivity (used for fake/ideal comparisons)."""
    edges = list(itertools.combinations(range(num_qubits), 2))
    return CouplingMap(num_qubits, edges)


def grid_topology(rows: int, cols: int) -> CouplingMap:
    """A rows x cols 2-D mesh (the classical comparator in Fig. 6)."""
    if rows < 1 or cols < 1:
        raise DeviceError("grid dimensions must be positive")
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return CouplingMap(rows * cols, edges)


def t_topology() -> CouplingMap:
    """The 5-qubit "T" layout of ibmq_ourense / vigo / valencia."""
    return CouplingMap(5, [(0, 1), (1, 2), (1, 3), (3, 4)])


def bowtie_topology() -> CouplingMap:
    """The 5-qubit bowtie layout of ibmqx2 (yorktown)."""
    return CouplingMap(5, [(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)])


def falcon_topology(num_qubits: int) -> CouplingMap:
    """Falcon-family lattices (7, 16 or 27 qubits).

    These follow the heavy-hexagon fragments IBM used for the Falcon
    processors (casablanca/guadalupe/toronto/paris and peers).
    """
    if num_qubits == 7:
        edges = [(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)]
        return CouplingMap(7, edges)
    if num_qubits == 16:
        edges = [
            (0, 1), (1, 2), (2, 3), (3, 5), (4, 1), (5, 8), (6, 7), (7, 10),
            (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15), (13, 14),
        ]
        return CouplingMap(16, edges)
    if num_qubits == 27:
        edges = [
            (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
            (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
            (13, 14), (14, 16), (15, 18), (16, 19), (17, 18), (18, 21),
            (19, 20), (19, 22), (21, 23), (22, 25), (23, 24), (24, 25),
            (25, 26),
        ]
        return CouplingMap(27, edges)
    raise DeviceError(f"no Falcon layout defined for {num_qubits} qubits")


def heavy_hex_topology(rows: int, cols: int) -> CouplingMap:
    """A generic heavy-hexagon-like sparse lattice.

    Construction: take a ``rows x cols`` mesh and delete alternating vertical
    links so the average degree drops to ~2.3, which matches the sparsity of
    IBM heavy-hex devices closely enough for bisection-bandwidth and routing
    studies.
    """
    if rows < 1 or cols < 1:
        raise DeviceError("heavy-hex dimensions must be positive")
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows and (c % 4 == r % 2 * 2):
                edges.append((node, node + cols))
    cmap = CouplingMap(rows * cols, edges)
    if not cmap.is_connected_graph():
        # Guarantee connectivity by stitching rows at the left edge.
        extra = [(r * cols, (r + 1) * cols) for r in range(rows - 1)]
        cmap = CouplingMap(rows * cols, edges + extra)
    return cmap


def hummingbird_topology(num_qubits: int) -> CouplingMap:
    """Hummingbird-family lattices (53 or 65 qubits, heavy-hex)."""
    if num_qubits == 65:
        return heavy_hex_topology(5, 13)
    if num_qubits == 53:
        cmap = heavy_hex_topology(5, 11)
        # trim to 53 qubits by removing the two highest-index nodes' edges
        keep = 53
        edges = [(a, b) for a, b in cmap.edges if a < keep and b < keep]
        trimmed = CouplingMap(keep, edges)
        if not trimmed.is_connected_graph():
            edges.append((keep - 2, keep - 1))
            edges.append((keep - 12, keep - 1))
            trimmed = CouplingMap(keep, edges)
        return trimmed
    raise DeviceError(f"no Hummingbird layout defined for {num_qubits} qubits")
