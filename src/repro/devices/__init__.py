"""Device model: topologies, calibration data and the IBM machine catalog.

The paper's machine-side analyses (Figures 6-10, 12, 13) depend on three
device properties we model explicitly:

* **Topology** — coupling maps and the bisection bandwidth metric (Fig. 6).
* **Calibration** — per-qubit/per-gate error rates and coherence times with
  spatial variation, daily recalibration and intra-day drift (Fig. 7, 12).
* **Catalog** — the named fleet of 25 IBM machines in the study, with their
  qubit counts, access level and processor family (Figures 8-10, 13).
"""

from repro.devices.topology import (
    CouplingMap,
    line_topology,
    ring_topology,
    grid_topology,
    t_topology,
    bowtie_topology,
    falcon_topology,
    hummingbird_topology,
    heavy_hex_topology,
    star_topology,
    fully_connected_topology,
)
from repro.devices.calibration import (
    GateCalibration,
    QubitCalibration,
    CalibrationSnapshot,
    CalibrationModel,
    DriftModel,
)
from repro.devices.backend import Backend
from repro.devices.catalog import (
    MachineSpec,
    MACHINE_SPECS,
    MACHINE_NAMES,
    build_backend,
    build_fleet,
    fleet_in_study,
    fake_large_backend,
)

__all__ = [
    "CouplingMap",
    "line_topology",
    "ring_topology",
    "grid_topology",
    "t_topology",
    "bowtie_topology",
    "falcon_topology",
    "hummingbird_topology",
    "heavy_hex_topology",
    "star_topology",
    "fully_connected_topology",
    "GateCalibration",
    "QubitCalibration",
    "CalibrationSnapshot",
    "CalibrationModel",
    "DriftModel",
    "Backend",
    "MachineSpec",
    "MACHINE_SPECS",
    "MACHINE_NAMES",
    "build_backend",
    "build_fleet",
    "fleet_in_study",
    "fake_large_backend",
]
