"""Catalog of the IBM Quantum machines covered by the study.

The paper's fleet spans 25 machines from 1 to 65 qubits (plus the hosted
``ibmq_qasm_simulator``).  For each machine we record its qubit count, a
topology constructor approximating its real coupling map, its access level
(public vs privileged/paid), a baseline calibration quality, the month of the
two-year window in which it came online, and a *demand weight* that captures
how popular the machine was (public machines carry 10-100x the demand of
comparable privileged machines — Fig. 9).

Exact coupling maps of retired devices are not all publicly archived; the
approximations preserve qubit count, degree distribution and bisection
bandwidth, which is what the analyses consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.exceptions import DeviceError
from repro.core.types import AccessLevel
from repro.devices.backend import Backend
from repro.devices.calibration import CalibrationModel, CalibrationProfile
from repro.devices.topology import (
    CouplingMap,
    bowtie_topology,
    falcon_topology,
    fully_connected_topology,
    grid_topology,
    hummingbird_topology,
    line_topology,
    t_topology,
)


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one machine in the study fleet."""

    name: str
    num_qubits: int
    topology_factory: Callable[[], CouplingMap]
    access: AccessLevel
    #: relative share of submitted jobs routed to this machine by user choice
    demand_weight: float
    #: median two-qubit error of a fresh calibration (machine quality)
    median_cx_error: float = 1.2e-2
    #: fixed per-job overhead (seconds); grows with machine size
    base_overhead_seconds: float = 20.0
    is_simulator: bool = False
    online_since_month: int = 0
    retired_after_month: Optional[int] = None

    def build_topology(self) -> CouplingMap:
        topology = self.topology_factory()
        if topology.num_qubits != self.num_qubits:
            raise DeviceError(
                f"topology for {self.name} has {topology.num_qubits} qubits, "
                f"expected {self.num_qubits}"
            )
        return topology


def _melbourne_topology() -> CouplingMap:
    """15-qubit ladder approximating ibmq_16_melbourne."""
    edges = []
    top = list(range(0, 7))
    bottom = list(range(7, 14))
    for i in range(6):
        edges.append((top[i], top[i + 1]))
        edges.append((bottom[i], bottom[i + 1]))
    for i in range(7):
        edges.append((top[i], bottom[6 - i] if i < 7 else bottom[i]))
    edges.append((13, 14))
    edges.append((6, 14))
    return CouplingMap(15, sorted(set(tuple(sorted(e)) for e in edges)))


def _tokyo_topology() -> CouplingMap:
    """20-qubit grid with diagonals approximating ibmq_20_tokyo et al."""
    base = grid_topology(4, 5)
    edges = list(base.edges)
    extra = [(1, 7), (3, 9), (5, 11), (8, 12), (11, 17), (13, 19)]
    edges.extend(extra)
    return CouplingMap(20, sorted(set(tuple(sorted(e)) for e in edges)))


def _simulator_topology() -> CouplingMap:
    return fully_connected_topology(32)


#: Study window: month 0 = January 2019 ... month 27 = April 2021.
STUDY_MONTHS = 28

MACHINE_SPECS: Dict[str, MachineSpec] = {
    spec.name: spec
    for spec in [
        # 1-qubit
        MachineSpec("ibmq_armonk", 1, lambda: line_topology(1),
                    AccessLevel.PUBLIC, demand_weight=1.0,
                    median_cx_error=0.0, base_overhead_seconds=10.0,
                    online_since_month=9),
        # 5-qubit public (canary / falcon r4)
        MachineSpec("ibmqx2", 5, bowtie_topology, AccessLevel.PUBLIC,
                    demand_weight=6.0, median_cx_error=2.2e-2,
                    base_overhead_seconds=12.0, online_since_month=0),
        MachineSpec("ibmqx4", 5, bowtie_topology, AccessLevel.PUBLIC,
                    demand_weight=2.0, median_cx_error=2.6e-2,
                    base_overhead_seconds=12.0, online_since_month=0,
                    retired_after_month=10),
        MachineSpec("ibmq_ourense", 5, t_topology, AccessLevel.PUBLIC,
                    demand_weight=5.0, median_cx_error=1.1e-2,
                    base_overhead_seconds=12.0, online_since_month=5,
                    retired_after_month=24),
        MachineSpec("ibmq_vigo", 5, t_topology, AccessLevel.PUBLIC,
                    demand_weight=5.0, median_cx_error=1.0e-2,
                    base_overhead_seconds=12.0, online_since_month=5,
                    retired_after_month=24),
        MachineSpec("ibmq_valencia", 5, t_topology, AccessLevel.PUBLIC,
                    demand_weight=4.0, median_cx_error=1.2e-2,
                    base_overhead_seconds=12.0, online_since_month=6,
                    retired_after_month=24),
        MachineSpec("ibmq_london", 5, t_topology, AccessLevel.PUBLIC,
                    demand_weight=3.5, median_cx_error=1.3e-2,
                    base_overhead_seconds=12.0, online_since_month=6,
                    retired_after_month=22),
        MachineSpec("ibmq_burlington", 5, t_topology, AccessLevel.PUBLIC,
                    demand_weight=3.0, median_cx_error=1.5e-2,
                    base_overhead_seconds=12.0, online_since_month=6,
                    retired_after_month=22),
        MachineSpec("ibmq_essex", 5, t_topology, AccessLevel.PUBLIC,
                    demand_weight=3.0, median_cx_error=1.4e-2,
                    base_overhead_seconds=12.0, online_since_month=6,
                    retired_after_month=22),
        MachineSpec("ibmq_athens", 5, lambda: line_topology(5),
                    AccessLevel.PUBLIC, demand_weight=10.0,
                    median_cx_error=8.5e-3, base_overhead_seconds=12.0,
                    online_since_month=16),
        MachineSpec("ibmq_santiago", 5, lambda: line_topology(5),
                    AccessLevel.PUBLIC, demand_weight=8.0,
                    median_cx_error=7.5e-3, base_overhead_seconds=12.0,
                    online_since_month=18),
        MachineSpec("ibmq_lima", 5, t_topology, AccessLevel.PUBLIC,
                    demand_weight=6.0, median_cx_error=9.5e-3,
                    base_overhead_seconds=12.0, online_since_month=24),
        MachineSpec("ibmq_belem", 5, t_topology, AccessLevel.PUBLIC,
                    demand_weight=6.0, median_cx_error=1.0e-2,
                    base_overhead_seconds=12.0, online_since_month=24),
        MachineSpec("ibmq_quito", 5, t_topology, AccessLevel.PUBLIC,
                    demand_weight=5.0, median_cx_error=1.0e-2,
                    base_overhead_seconds=12.0, online_since_month=25),
        # 5-qubit privileged (falcon r4L)
        MachineSpec("ibmq_rome", 5, lambda: line_topology(5),
                    AccessLevel.PRIVILEGED, demand_weight=1.2,
                    median_cx_error=8.0e-3, base_overhead_seconds=12.0,
                    online_since_month=15),
        MachineSpec("ibmq_bogota", 5, lambda: line_topology(5),
                    AccessLevel.PRIVILEGED, demand_weight=1.2,
                    median_cx_error=7.8e-3, base_overhead_seconds=12.0,
                    online_since_month=18),
        # 7-16 qubits
        MachineSpec("ibmq_casablanca", 7, lambda: falcon_topology(7),
                    AccessLevel.PRIVILEGED, demand_weight=1.5,
                    median_cx_error=9.0e-3, base_overhead_seconds=15.0,
                    online_since_month=19),
        MachineSpec("ibmq_guadalupe", 16, lambda: falcon_topology(16),
                    AccessLevel.PRIVILEGED, demand_weight=1.2,
                    median_cx_error=1.0e-2, base_overhead_seconds=18.0,
                    online_since_month=22),
        MachineSpec("ibmq_16_melbourne", 15, _melbourne_topology,
                    AccessLevel.PUBLIC, demand_weight=7.0,
                    median_cx_error=2.4e-2, base_overhead_seconds=18.0,
                    online_since_month=0),
        # 20-qubit privileged
        MachineSpec("ibmq_20_tokyo", 20, _tokyo_topology,
                    AccessLevel.PRIVILEGED, demand_weight=1.0,
                    median_cx_error=1.8e-2, base_overhead_seconds=22.0,
                    online_since_month=0, retired_after_month=9),
        MachineSpec("ibmq_poughkeepsie", 20, _tokyo_topology,
                    AccessLevel.PRIVILEGED, demand_weight=0.9,
                    median_cx_error=1.7e-2, base_overhead_seconds=22.0,
                    online_since_month=0, retired_after_month=15),
        MachineSpec("ibmq_johannesburg", 20, _tokyo_topology,
                    AccessLevel.PRIVILEGED, demand_weight=1.0,
                    median_cx_error=1.5e-2, base_overhead_seconds=22.0,
                    online_since_month=4, retired_after_month=20),
        MachineSpec("ibmq_boeblingen", 20, _tokyo_topology,
                    AccessLevel.PRIVILEGED, demand_weight=1.0,
                    median_cx_error=1.4e-2, base_overhead_seconds=22.0,
                    online_since_month=6, retired_after_month=22),
        # 27-qubit falcon
        MachineSpec("ibmq_paris", 27, lambda: falcon_topology(27),
                    AccessLevel.PRIVILEGED, demand_weight=2.0,
                    median_cx_error=1.1e-2, base_overhead_seconds=26.0,
                    online_since_month=15),
        MachineSpec("ibmq_toronto", 27, lambda: falcon_topology(27),
                    AccessLevel.PRIVILEGED, demand_weight=2.2,
                    median_cx_error=1.2e-2, base_overhead_seconds=26.0,
                    online_since_month=18),
        # 53-65 qubit hummingbird
        MachineSpec("ibmq_rochester", 53, lambda: hummingbird_topology(53),
                    AccessLevel.PRIVILEGED, demand_weight=0.8,
                    median_cx_error=3.4e-2, base_overhead_seconds=32.0,
                    online_since_month=9, retired_after_month=22),
        MachineSpec("ibmq_manhattan", 65, lambda: hummingbird_topology(65),
                    AccessLevel.PRIVILEGED, demand_weight=1.8,
                    median_cx_error=2.4e-2, base_overhead_seconds=38.0,
                    online_since_month=20),
        # hosted simulator
        MachineSpec("ibmq_qasm_simulator", 32, _simulator_topology,
                    AccessLevel.PUBLIC, demand_weight=2.0,
                    median_cx_error=0.0, base_overhead_seconds=6.0,
                    is_simulator=True, online_since_month=0),
    ]
}

MACHINE_NAMES: List[str] = sorted(MACHINE_SPECS)


def build_backend(name: str, seed: int = 0) -> Backend:
    """Instantiate the :class:`Backend` for a named machine in the catalog."""
    try:
        spec = MACHINE_SPECS[name]
    except KeyError:
        raise DeviceError(
            f"unknown machine {name!r}; known machines: {MACHINE_NAMES}"
        ) from None
    topology = spec.build_topology()
    # Readout errors historically degrade with machine size (larger devices of
    # the study window had noticeably worse measurement fidelity).
    readout_error = 2.2e-2 * (1.0 + topology.num_qubits / 50.0)
    profile = CalibrationProfile(
        median_cx_error=max(spec.median_cx_error, 1e-6),
        median_readout_error=readout_error,
    )
    if spec.is_simulator:
        profile = CalibrationProfile(
            median_cx_error=1e-6, median_sx_error=1e-7,
            median_readout_error=1e-6, cx_error_cov=0.0,
            coherence_cov=0.0, readout_cov=0.0, daily_jitter_sigma=0.0,
        )
    calibration = CalibrationModel(
        machine=name, coupling_map=topology, profile=profile, seed=seed,
    )
    overhead_scale = 1.0 + 0.35 * (topology.num_qubits / 65.0)
    return Backend(
        name=name,
        coupling_map=topology,
        calibration_model=calibration,
        access=spec.access,
        is_simulator=spec.is_simulator,
        base_overhead_seconds=spec.base_overhead_seconds,
        per_circuit_overhead_seconds=1.2 + 0.02 * topology.num_qubits,
        per_shot_seconds=1.8e-3 * overhead_scale,
        online_since_month=spec.online_since_month,
        retired_after_month=spec.retired_after_month,
        metadata={"demand_weight": spec.demand_weight},
    )


def build_fleet(names: Optional[Sequence[str]] = None,
                seed: int = 0) -> Dict[str, Backend]:
    """Build backends for the requested machines (default: the whole catalog)."""
    selected = list(names) if names is not None else MACHINE_NAMES
    return {name: build_backend(name, seed=seed) for name in selected}


def fleet_in_study(seed: int = 0, include_simulator: bool = True) -> Dict[str, Backend]:
    """The full study fleet keyed by machine name."""
    fleet = build_fleet(seed=seed)
    if not include_simulator:
        fleet = {k: v for k, v in fleet.items() if not v.is_simulator}
    return fleet


def fake_large_backend(num_qubits: int = 1000, seed: int = 0,
                       name: Optional[str] = None) -> Backend:
    """A fake large device (e.g. 1000 qubits) for the Fig. 5 compile-scaling study.

    The topology is a heavy-hex-like sparse lattice sized to ``num_qubits``.
    """
    from repro.devices.topology import heavy_hex_topology

    if num_qubits < 2:
        raise DeviceError("fake large backend needs at least 2 qubits")
    cols = max(2, int(round((num_qubits / 5) ** 0.5 * 2.3)))
    rows = max(2, (num_qubits + cols - 1) // cols)
    lattice = heavy_hex_topology(rows, cols)
    # Trim to exactly num_qubits by keeping the first num_qubits nodes.
    edges = [(a, b) for a, b in lattice.edges if a < num_qubits and b < num_qubits]
    topology = CouplingMap(num_qubits, edges)
    if not topology.is_connected_graph():
        stitched = list(edges)
        stitched.extend((i, i + 1) for i in range(num_qubits - 1))
        topology = CouplingMap(num_qubits, sorted(set(stitched)))
    backend_name = name or f"fake_{num_qubits}q"
    calibration = CalibrationModel(
        machine=backend_name, coupling_map=topology,
        profile=CalibrationProfile(), seed=seed,
    )
    return Backend(
        name=backend_name,
        coupling_map=topology,
        calibration_model=calibration,
        access=AccessLevel.PRIVILEGED,
        base_overhead_seconds=60.0,
        per_circuit_overhead_seconds=2.0,
        per_shot_seconds=4.0e-4,
        metadata={"demand_weight": 0.0, "fake": True},
    )
