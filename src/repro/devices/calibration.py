"""Calibration data and the spatial/temporal variation model.

The paper (Section IV-B, citing Tannu & Qureshi's 52-day study of a 20-qubit
IBM machine) characterises NISQ devices by:

* spatial variation: coefficient of variation (CoV) of 30-40 % on T1/T2
  coherence times and ~75 % on two-qubit error rates across a machine;
* temporal variation: day-to-day error-rate averages that can differ by more
  than 2x, driven by the daily recalibration plus drift between calibrations.

:class:`CalibrationModel` generates per-epoch :class:`CalibrationSnapshot`
objects with exactly those variation levels; :class:`DriftModel` degrades a
snapshot continuously between calibrations.  The fidelity estimator, the
noise-adaptive layout pass and the calibration-crossover analysis all consume
these snapshots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.exceptions import DeviceError
from repro.core.rng import RandomSource
from repro.core.units import DAY_SECONDS, HOUR_SECONDS
from repro.devices.topology import CouplingMap


@dataclass(frozen=True)
class QubitCalibration:
    """Calibrated properties of a single physical qubit."""

    t1_us: float
    t2_us: float
    readout_error: float
    single_qubit_error: float
    frequency_ghz: float = 5.0

    def __post_init__(self):
        if self.t1_us <= 0 or self.t2_us <= 0:
            raise DeviceError("coherence times must be positive")
        if not 0 <= self.readout_error < 1:
            raise DeviceError("readout error must be in [0, 1)")
        if not 0 <= self.single_qubit_error < 1:
            raise DeviceError("single-qubit error must be in [0, 1)")


@dataclass(frozen=True)
class GateCalibration:
    """Calibrated properties of a two-qubit gate on a coupling edge."""

    error: float
    duration_ns: float

    def __post_init__(self):
        if not 0 <= self.error < 1:
            raise DeviceError("gate error must be in [0, 1)")
        if self.duration_ns <= 0:
            raise DeviceError("gate duration must be positive")


@dataclass
class CalibrationSnapshot:
    """Full calibration state of a machine at a point in time."""

    machine: str
    epoch: int
    timestamp: float
    qubits: List[QubitCalibration]
    gates: Dict[Tuple[int, int], GateCalibration]

    def qubit(self, index: int) -> QubitCalibration:
        if not 0 <= index < len(self.qubits):
            raise DeviceError(f"qubit {index} out of range")
        return self.qubits[index]

    def gate(self, qubit_a: int, qubit_b: int) -> GateCalibration:
        key = (min(qubit_a, qubit_b), max(qubit_a, qubit_b))
        try:
            return self.gates[key]
        except KeyError:
            raise DeviceError(
                f"no calibrated two-qubit gate between {qubit_a} and {qubit_b}"
            ) from None

    def has_gate(self, qubit_a: int, qubit_b: int) -> bool:
        key = (min(qubit_a, qubit_b), max(qubit_a, qubit_b))
        return key in self.gates

    # -- aggregate statistics ------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    def average_cx_error(self) -> float:
        if not self.gates:
            return 0.0
        return sum(g.error for g in self.gates.values()) / len(self.gates)

    def average_readout_error(self) -> float:
        return sum(q.readout_error for q in self.qubits) / len(self.qubits)

    def average_t1_us(self) -> float:
        return sum(q.t1_us for q in self.qubits) / len(self.qubits)

    def average_t2_us(self) -> float:
        return sum(q.t2_us for q in self.qubits) / len(self.qubits)

    def cx_error_cov(self) -> float:
        """Coefficient of variation of two-qubit errors (spatial variation)."""
        errors = [g.error for g in self.gates.values()]
        if len(errors) < 2:
            return 0.0
        mean = sum(errors) / len(errors)
        if mean == 0:
            return 0.0
        variance = sum((e - mean) ** 2 for e in errors) / len(errors)
        return math.sqrt(variance) / mean

    def best_qubits(self, count: int) -> List[int]:
        """Indices of the ``count`` qubits with the lowest combined error."""
        scored = sorted(
            range(self.num_qubits),
            key=lambda q: (
                self.qubits[q].single_qubit_error + self.qubits[q].readout_error
            ),
        )
        return scored[:count]


class DriftModel:
    """Continuous degradation of calibration between recalibrations.

    Error rates inflate multiplicatively with the hours elapsed since the
    epoch's calibration; coherence times shrink correspondingly.  The default
    rates produce the "up to ~2x day-to-day variation" the paper reports when
    combined with fresh-calibration randomness.
    """

    def __init__(self, error_growth_per_hour: float = 0.012,
                 coherence_decay_per_hour: float = 0.006):
        if error_growth_per_hour < 0 or coherence_decay_per_hour < 0:
            raise DeviceError("drift rates must be non-negative")
        self.error_growth_per_hour = error_growth_per_hour
        self.coherence_decay_per_hour = coherence_decay_per_hour

    def apply(self, snapshot: CalibrationSnapshot,
              at_time: float) -> CalibrationSnapshot:
        """Return a drifted copy of ``snapshot`` as of ``at_time``."""
        elapsed_hours = max(0.0, (at_time - snapshot.timestamp) / HOUR_SECONDS)
        if elapsed_hours == 0:
            return snapshot
        error_factor = 1.0 + self.error_growth_per_hour * elapsed_hours
        coherence_factor = 1.0 / (1.0 + self.coherence_decay_per_hour * elapsed_hours)
        qubits = [
            QubitCalibration(
                t1_us=q.t1_us * coherence_factor,
                t2_us=q.t2_us * coherence_factor,
                readout_error=min(0.5, q.readout_error * error_factor),
                single_qubit_error=min(0.5, q.single_qubit_error * error_factor),
                frequency_ghz=q.frequency_ghz,
            )
            for q in snapshot.qubits
        ]
        gates = {
            edge: GateCalibration(
                error=min(0.75, g.error * error_factor),
                duration_ns=g.duration_ns,
            )
            for edge, g in snapshot.gates.items()
        }
        return CalibrationSnapshot(
            machine=snapshot.machine,
            epoch=snapshot.epoch,
            timestamp=snapshot.timestamp,
            qubits=qubits,
            gates=gates,
        )


@dataclass
class CalibrationProfile:
    """Machine-level average error characteristics around which qubits vary."""

    median_cx_error: float = 1.2e-2
    median_sx_error: float = 3.5e-4
    median_readout_error: float = 2.5e-2
    median_t1_us: float = 90.0
    median_t2_us: float = 75.0
    cx_duration_ns: float = 380.0
    #: spatial coefficient of variation targets (paper Section IV-B)
    cx_error_cov: float = 0.75
    coherence_cov: float = 0.35
    readout_cov: float = 0.45
    #: day-to-day multiplicative jitter on the machine-wide averages
    daily_jitter_sigma: float = 0.28


class CalibrationModel:
    """Generates daily calibration snapshots for one machine.

    Machines are calibrated once per day (the paper estimates 12am-2am);
    epoch ``k`` covers ``[start + k*period, start + (k+1)*period)``.  Within
    an epoch the returned snapshot can optionally be drifted to the query
    time via the :class:`DriftModel`.
    """

    def __init__(
        self,
        machine: str,
        coupling_map: CouplingMap,
        profile: Optional[CalibrationProfile] = None,
        seed: int = 0,
        calibration_period: float = DAY_SECONDS,
        calibration_hour: float = 1.0,
        drift: Optional[DriftModel] = None,
    ):
        self.machine = machine
        self.coupling_map = coupling_map
        self.profile = profile or CalibrationProfile()
        self.calibration_period = float(calibration_period)
        if self.calibration_period <= 0:
            raise DeviceError("calibration period must be positive")
        self.calibration_offset = float(calibration_hour) * HOUR_SECONDS
        self.drift = drift or DriftModel()
        self._rng_root = RandomSource(seed, name=f"calibration/{machine}")
        self._snapshot_cache: Dict[int, CalibrationSnapshot] = {}

    # -- epoch arithmetic ----------------------------------------------------------

    def epoch_for_time(self, timestamp: float) -> int:
        """Index of the calibration epoch containing ``timestamp``."""
        return int(math.floor((timestamp - self.calibration_offset)
                              / self.calibration_period))

    def epoch_start(self, epoch: int) -> float:
        """Timestamp at which calibration epoch ``epoch`` begins."""
        return epoch * self.calibration_period + self.calibration_offset

    def crosses_calibration(self, submit_time: float, run_time: float) -> bool:
        """Whether a job compiled at ``submit_time`` runs in a later epoch.

        This is the Fig. 12a "calibration crossover" condition.
        """
        return self.epoch_for_time(run_time) > self.epoch_for_time(submit_time)

    # -- snapshot generation -------------------------------------------------------

    def snapshot_for_epoch(self, epoch: int) -> CalibrationSnapshot:
        """The freshly calibrated snapshot at the start of ``epoch``."""
        cached = self._snapshot_cache.get(epoch)
        if cached is not None:
            return cached
        rng = self._rng_root.child("epoch", epoch)
        profile = self.profile
        daily_factor = rng.lognormal(0.0, profile.daily_jitter_sigma)
        readout_factor = rng.lognormal(0.0, profile.daily_jitter_sigma * 0.6)
        coherence_factor = rng.lognormal(0.0, profile.daily_jitter_sigma * 0.4)

        qubits: List[QubitCalibration] = []
        for index in range(self.coupling_map.num_qubits):
            qubit_rng = rng.child("qubit", index)
            t1 = _positive_lognormal(
                qubit_rng, profile.median_t1_us * coherence_factor,
                profile.coherence_cov
            )
            t2 = min(
                2.0 * t1,
                _positive_lognormal(
                    qubit_rng, profile.median_t2_us * coherence_factor,
                    profile.coherence_cov
                ),
            )
            readout = _bounded_lognormal(
                qubit_rng, profile.median_readout_error * readout_factor,
                profile.readout_cov, upper=0.4
            )
            sq_error = _bounded_lognormal(
                qubit_rng, profile.median_sx_error * daily_factor,
                profile.cx_error_cov * 0.6, upper=0.1
            )
            qubits.append(
                QubitCalibration(
                    t1_us=t1, t2_us=t2, readout_error=readout,
                    single_qubit_error=sq_error,
                    frequency_ghz=4.8 + 0.4 * qubit_rng.random(),
                )
            )

        gates: Dict[Tuple[int, int], GateCalibration] = {}
        for a, b in self.coupling_map.edges:
            edge_rng = rng.child("edge", a, b)
            error = _bounded_lognormal(
                edge_rng, profile.median_cx_error * daily_factor,
                profile.cx_error_cov, upper=0.6
            )
            duration = _positive_lognormal(
                edge_rng, profile.cx_duration_ns, 0.15
            )
            gates[(a, b)] = GateCalibration(error=error, duration_ns=duration)

        snapshot = CalibrationSnapshot(
            machine=self.machine,
            epoch=epoch,
            timestamp=self.epoch_start(epoch),
            qubits=qubits,
            gates=gates,
        )
        self._snapshot_cache[epoch] = snapshot
        return snapshot

    def snapshot_at(self, timestamp: float,
                    apply_drift: bool = True) -> CalibrationSnapshot:
        """The calibration state effective at ``timestamp``."""
        snapshot = self.snapshot_for_epoch(self.epoch_for_time(timestamp))
        if apply_drift:
            return self.drift.apply(snapshot, timestamp)
        return snapshot


def _positive_lognormal(rng: RandomSource, median: float, cov: float) -> float:
    """Sample a positive value with the given median and coefficient of variation."""
    sigma = math.sqrt(math.log(1.0 + cov * cov)) if cov > 0 else 0.0
    return median * math.exp(rng.normal(0.0, sigma)) if sigma > 0 else median


def _bounded_lognormal(rng: RandomSource, median: float, cov: float,
                       upper: float) -> float:
    return min(upper, _positive_lognormal(rng, median, cov))
