"""The :class:`Backend` object: one quantum machine on the cloud.

A backend bundles everything the rest of the library needs to know about a
machine: its identity and access level, its coupling map, its calibration
model, and the operational limits (batch size, maximum shots) that IBM
imposed during the study period (900 circuits per job, 8192 shots per
circuit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.exceptions import DeviceError
from repro.core.types import AccessLevel, MachineGeneration
from repro.devices.calibration import CalibrationModel, CalibrationSnapshot
from repro.devices.topology import CouplingMap

#: Operational limits of IBM Quantum backends during the study period.
DEFAULT_MAX_BATCH_SIZE = 900
DEFAULT_MAX_SHOTS = 8192


@dataclass
class Backend:
    """A quantum machine available on the cloud."""

    name: str
    coupling_map: CouplingMap
    calibration_model: CalibrationModel
    access: AccessLevel = AccessLevel.PUBLIC
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE
    max_shots: int = DEFAULT_MAX_SHOTS
    is_simulator: bool = False
    basis_gates: tuple = ("id", "rz", "sx", "x", "cx")
    #: fixed per-job machine overhead in seconds (load/initialise/readout path);
    #: larger machines carry larger overheads (Section VI-A observation).
    base_overhead_seconds: float = 20.0
    #: per-circuit overhead in seconds (program load + binary upload).
    per_circuit_overhead_seconds: float = 0.8
    #: per-shot duration in seconds (gate time + reset + readout).
    per_shot_seconds: float = 2.2e-4
    online_since_month: int = 0
    retired_after_month: Optional[int] = None
    #: study months in which the machine is temporarily out of service
    #: (scenario outage windows); jobs are not routed to it in those months.
    offline_months: Tuple[int, ...] = ()
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise DeviceError("max_batch_size must be at least 1")
        if self.max_shots < 1:
            raise DeviceError("max_shots must be at least 1")
        if self.coupling_map.num_qubits < 1:
            raise DeviceError("backend must have at least one qubit")

    @property
    def num_qubits(self) -> int:
        return self.coupling_map.num_qubits

    @property
    def generation(self) -> MachineGeneration:
        return MachineGeneration.for_qubit_count(self.num_qubits)

    @property
    def is_public(self) -> bool:
        return self.access.is_public

    def calibration_at(self, timestamp: float,
                       apply_drift: bool = True) -> CalibrationSnapshot:
        """Calibration snapshot effective at ``timestamp``."""
        return self.calibration_model.snapshot_at(timestamp, apply_drift=apply_drift)

    def is_online_in_month(self, month_index: int) -> bool:
        """Whether the machine was part of the fleet in a given study month."""
        if month_index < self.online_since_month:
            return False
        if self.retired_after_month is not None and month_index > self.retired_after_month:
            return False
        return month_index not in self.offline_months

    def validate_job_shape(self, batch_size: int, shots: int) -> None:
        """Raise if a job exceeds the backend's operational limits."""
        if batch_size < 1:
            raise DeviceError("a job must contain at least one circuit")
        if batch_size > self.max_batch_size:
            raise DeviceError(
                f"batch of {batch_size} circuits exceeds the "
                f"{self.max_batch_size}-circuit limit of {self.name}"
            )
        if shots < 1:
            raise DeviceError("shots must be at least 1")
        if shots > self.max_shots:
            raise DeviceError(
                f"{shots} shots exceeds the {self.max_shots}-shot limit "
                f"of {self.name}"
            )

    def bisection_bandwidth(self) -> int:
        """Topology bisection bandwidth (Fig. 6)."""
        return self.coupling_map.bisection_bandwidth()

    def __repr__(self) -> str:
        return (
            f"Backend(name={self.name!r}, qubits={self.num_qubits}, "
            f"access={self.access.value})"
        )
