"""A dependency-free client for the study-service gateway.

:class:`StudyServiceClient` talks to :mod:`repro.service.gateway` over
stdlib ``urllib`` — submit suites, follow their NDJSON event streams,
fetch finished traces by fingerprint and comparisons by key.  The CLI's
``submit`` / ``jobs`` / ``fetch`` subcommands and the CI smoke benchmark
are built on it; it is also the reference consumer of the HTTP API.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.service.jobs import ServiceError

__all__ = ["GatewayError", "StudyServiceClient"]


class GatewayError(ServiceError):
    """An HTTP error from the gateway, with its status and JSON message."""

    def __init__(self, status: int, message: str):
        super().__init__(f"gateway returned {status}: {message}")
        self.status = status
        self.message = message


class StudyServiceClient:
    """Talks to one study-service gateway on behalf of one tenant."""

    def __init__(self, base_url: str, tenant: str = "default",
                 timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, object]] = None,
                 timeout: Optional[float] = None):
        url = f"{self.base_url}{path}"
        data = None
        headers = {"X-Repro-Tenant": self.tenant}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = Request(url, data=data, headers=headers, method=method)
        try:
            return urlopen(request,
                           timeout=timeout if timeout is not None
                           else self.timeout)
        except HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8"))
                message = message.get("error", str(message))
            except Exception:
                message = exc.reason
            raise GatewayError(exc.code, str(message)) from None
        except URLError as exc:
            raise ServiceError(
                f"cannot reach study service at {url}: {exc.reason}"
            ) from None

    def _json(self, method: str, path: str,
              payload: Optional[Dict[str, object]] = None
              ) -> Dict[str, object]:
        with self._request(method, path, payload) as response:
            return json.loads(response.read().decode("utf-8"))

    # -- submissions -------------------------------------------------------------------

    def submit(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Submit a study/suite/sweep payload; returns the job snapshot."""
        payload = dict(payload)
        payload.setdefault("tenant", self.tenant)
        return self._json("POST", "/jobs", payload)

    def job(self, job_id: str) -> Dict[str, object]:
        return self._json("GET", f"/jobs/{job_id}")

    def jobs(self, tenant: Optional[str] = None) -> List[Dict[str, object]]:
        path = "/jobs" if tenant is None else f"/jobs?tenant={tenant}"
        return self._json("GET", path)["jobs"]

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    # -- event streams -----------------------------------------------------------------

    def events(self, job_id: str, since: int = 0,
               heartbeats: bool = False,
               timeout: Optional[float] = None
               ) -> Iterator[Dict[str, object]]:
        """Stream the job's NDJSON events until it reaches a terminal state.

        ``since`` skips events below that sequence number (resume a
        dropped stream without replaying).  Heartbeat lines keep the
        socket alive through long quiet stretches and are filtered out
        unless ``heartbeats=True``.
        """
        stream_timeout = timeout if timeout is not None \
            else max(self.timeout, 3600.0)
        with self._request("GET", f"/jobs/{job_id}/events?since={since}",
                           timeout=stream_timeout) as response:
            for raw in response:
                line = raw.strip()
                if not line:
                    continue
                event = json.loads(line.decode("utf-8"))
                if event.get("event") == "heartbeat" and not heartbeats:
                    continue
                yield event

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Dict[str, object]:
        """Follow the event stream to completion; returns the final
        snapshot.  Raises :class:`GatewayError` on a failed job."""
        for _ in self.events(job_id, timeout=timeout):
            pass
        snapshot = self.job(job_id)
        if snapshot.get("state") == "failed":
            raise GatewayError(
                500, f"job {job_id} failed: {snapshot.get('error')}")
        return snapshot

    # -- results -----------------------------------------------------------------------

    def result(self, job_id: str) -> Dict[str, object]:
        """The finished job's snapshot incl. its result summary (409
        until the job completes)."""
        return self._json("GET", f"/jobs/{job_id}/result")

    def fetch_trace(self, fingerprint: str) -> bytes:
        """The finished trace's exact cached bytes (the ``.npz`` dump).

        Buffers the whole body; prefer :meth:`fetch_trace_to` when the
        destination is a file — multi-month traces run to hundreds of
        megabytes, and holding them in one bytes object defeats the
        out-of-core data plane the service sits in front of.
        """
        with self._request("GET", f"/results/{fingerprint}") as response:
            return response.read()

    def fetch_trace_to(self, fingerprint: str, path: Union[str, Path],
                       chunk_size: int = 1 << 20) -> int:
        """Stream the finished trace's bytes straight to ``path``.

        Chunks of ``chunk_size`` bytes go from the socket to the file
        without ever accumulating the body in memory.  The bytes written
        are exactly what :meth:`fetch_trace` would return.  Returns the
        number of bytes written.
        """
        path = Path(path)
        written = 0
        with self._request("GET", f"/results/{fingerprint}") as response:
            with open(path, "wb") as sink:
                while True:
                    chunk = response.read(chunk_size)
                    if not chunk:
                        break
                    sink.write(chunk)
                    written += len(chunk)
        return written

    def fetch_comparison(self, key: str) -> Dict[str, object]:
        return self._json("GET", f"/comparisons/{key}")

    # -- telemetry ---------------------------------------------------------------------

    def health(self) -> Dict[str, object]:
        return self._json("GET", "/healthz")

    def stats(self) -> Dict[str, object]:
        return self._json("GET", "/stats")

    def metrics(self) -> str:
        """The gateway's ``/metrics`` Prometheus text exposition, raw."""
        with self._request("GET", "/metrics") as response:
            return response.read().decode("utf-8")
