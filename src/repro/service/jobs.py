"""The gateway's job registry: multi-tenant submission tracking.

Every submission becomes a :class:`ServiceJob` that moves through
``queued → running → done / failed / cancelled``.  The registry enforces a
per-tenant *active* quota (queued + running jobs) and hands queued jobs to
the executor threads in FIFO order *per tenant* with round-robin rotation
*across* tenants — a tenant that dumps fifty suites into the queue delays
its own later jobs, not another tenant's first one.

Each job carries an append-only event log (monotonic ``seq`` numbers) fed
by the scheduler and the suite runner's structured progress events; a
condition variable lets any number of NDJSON streams block until the next
event lands instead of polling.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional

from repro.core.exceptions import ReproError
from repro.telemetry import get_registry

__all__ = [
    "JobQuotaExceeded",
    "JobRegistry",
    "ServiceError",
    "ServiceJob",
    "TERMINAL_STATES",
    "UnknownJobError",
]

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


class ServiceError(ReproError):
    """Raised by the study-service gateway (registry, store, routing)."""


class JobQuotaExceeded(ServiceError):
    """A tenant's queued+running jobs already fill its quota (HTTP 429)."""


class UnknownJobError(ServiceError):
    """No job with the requested id exists (HTTP 404)."""


@dataclass
class ServiceJob:
    """One tracked submission and its event log."""

    job_id: str
    tenant: str
    payload: Dict[str, object]
    state: str = QUEUED
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    error: Optional[str] = None
    #: result summary once done — the JSON projection of the suite's
    #: per-scenario :class:`~repro.runner.executor.StudyResult` handles
    #: (scenario names, fingerprints, cache hits) plus the comparison key
    #: when a comparison was requested
    result: Optional[Dict[str, object]] = None
    cancel_requested: bool = False
    events: List[Dict[str, object]] = field(default_factory=list)
    _condition: threading.Condition = field(
        default_factory=threading.Condition, repr=False)
    _seq: "itertools.count" = field(default_factory=lambda: itertools.count(),
                                    repr=False)

    def emit(self, event_kind: str, **detail: object) -> Dict[str, object]:
        """Append one event to the log and wake every blocked stream.

        ``detail`` keys are merged flat into the NDJSON line (a ``kind``
        key is fine — it carries the suite-runner event kind, while
        ``event`` is the job-level type).
        """
        now = time.time()
        queue_depth = int(get_registry().value("repro_pool_queue_depth"))
        with self._condition:
            event = {
                "seq": next(self._seq),
                "ts": round(now, 3),
                "elapsed": round(now - self.created, 3),
                "queue_depth": queue_depth,
                "job": self.job_id,
                "event": event_kind,
                **detail,
            }
            self.events.append(event)
            self._condition.notify_all()
        return event

    def stream(self, since: int = 0, idle: Optional[float] = None
               ) -> Iterator[Optional[Dict[str, object]]]:
        """Yield events from ``seq >= since``, blocking until terminal.

        The iterator ends once the job has reached a terminal state *and*
        every event logged up to that point has been yielded — a consumer
        that reads to exhaustion has therefore seen the ``done`` /
        ``failed`` / ``cancelled`` event.  When no event lands within
        ``idle`` seconds, ``None`` is yielded instead (the NDJSON handler
        turns it into a heartbeat line that keeps the connection alive);
        ``idle=None`` blocks indefinitely.
        """
        index = 0
        while True:
            with self._condition:
                while index >= len(self.events):
                    if self.state in TERMINAL_STATES:
                        return
                    if not self._condition.wait(timeout=idle):
                        break  # idle: surface a heartbeat, keep streaming
                batch = self.events[index:]
                index = len(self.events)
            if not batch:
                yield None
                continue
            for event in batch:
                if event["seq"] >= since:
                    yield event

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while self.state not in TERMINAL_STATES:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._condition.wait(timeout=remaining)
        return True

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready status view of the job."""
        payload: Dict[str, object] = {
            "job": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "created": round(self.created, 3),
            "events": len(self.events),
        }
        if self.started is not None:
            payload["started"] = round(self.started, 3)
        if self.finished is not None:
            payload["finished"] = round(self.finished, 3)
        if self.error is not None:
            payload["error"] = self.error
        if self.result is not None:
            payload["result"] = self.result
        if self.cancel_requested and self.state not in TERMINAL_STATES:
            payload["cancel_requested"] = True
        return payload


class JobRegistry:
    """Submission queue + state store with per-tenant quotas and fairness."""

    def __init__(self, tenant_quota: int = 8):
        if tenant_quota < 1:
            raise ServiceError(
                f"tenant_quota must be >= 1, got {tenant_quota}")
        self.tenant_quota = tenant_quota
        self._jobs: Dict[str, ServiceJob] = {}
        self._queues: Dict[str, Deque[ServiceJob]] = {}
        #: round-robin rotation of tenants with queued work
        self._tenant_order: Deque[str] = deque()
        self._lock = threading.Condition()
        self._ids = itertools.count(1)
        self._closed = False

    # -- submission --------------------------------------------------------------------

    def submit(self, tenant: str, payload: Dict[str, object]) -> ServiceJob:
        """Register and enqueue a submission; raises over quota."""
        tenant = tenant or "default"
        with self._lock:
            if self._closed:
                raise ServiceError("the study service is shutting down")
            active = sum(
                1 for job in self._jobs.values()
                if job.tenant == tenant and job.state in (QUEUED, RUNNING))
            if active >= self.tenant_quota:
                raise JobQuotaExceeded(
                    f"tenant {tenant!r} already has {active} active jobs "
                    f"(quota {self.tenant_quota}); wait for one to finish "
                    f"or cancel it")
            job = ServiceJob(job_id=f"job-{next(self._ids):06d}",
                             tenant=tenant, payload=payload)
            self._jobs[job.job_id] = job
            queue = self._queues.setdefault(tenant, deque())
            queue.append(job)
            if tenant not in self._tenant_order:
                self._tenant_order.append(tenant)
            self._lock.notify()
        registry = get_registry()
        registry.counter(
            "repro_jobs_submitted_total", tenant=tenant,
            help="Jobs accepted by the gateway, by tenant.").inc()
        registry.gauge(
            "repro_jobs_active", tenant=tenant,
            help="Queued plus running gateway jobs, by tenant.").inc()
        job.emit("queued", tenant=tenant)
        return job

    # -- the executor side -------------------------------------------------------------

    def take(self, timeout: Optional[float] = None) -> Optional[ServiceJob]:
        """Pop the next job fairly (round-robin across tenants, FIFO within).

        Blocks up to ``timeout`` for work; returns None when none arrived
        or the registry was closed.  The returned job is already marked
        ``running``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                job = self._pop_fair_locked()
                if job is not None:
                    job.state = RUNNING
                    job.started = time.time()
                    break
                if self._closed:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._lock.wait(timeout=remaining)
        get_registry().counter(
            "repro_jobs_dispatched_total", tenant=job.tenant,
            help="Jobs handed to an executor thread, by tenant.").inc()
        job.emit("started", tenant=job.tenant)
        return job

    def _pop_fair_locked(self) -> Optional[ServiceJob]:
        for _ in range(len(self._tenant_order)):
            tenant = self._tenant_order[0]
            queue = self._queues.get(tenant)
            if queue:
                job = queue.popleft()
                # Rotate: the tenant we just served goes to the back even
                # if it still has queued jobs, so other tenants interleave.
                self._tenant_order.rotate(-1)
                if not queue:
                    self._remove_from_order(tenant)
                return job
            self._remove_from_order(tenant)
        return None

    def _remove_from_order(self, tenant: str) -> None:
        try:
            self._tenant_order.remove(tenant)
        except ValueError:
            pass

    def finish(self, job: ServiceJob, state: str,
               error: Optional[str] = None,
               result: Optional[Dict[str, object]] = None) -> None:
        """Move a running job to a terminal state and wake waiters."""
        if state not in TERMINAL_STATES:
            raise ServiceError(f"{state!r} is not a terminal job state")
        with self._lock:
            job.state = state
            job.finished = time.time()
            job.error = error
            if result is not None:
                job.result = result
        self._note_terminal(job.tenant, state)
        detail: Dict[str, object] = {}
        if error is not None:
            detail["error"] = error
        if result is not None:
            detail["result"] = result
        job.emit(state, **detail)
        # emit() notified the job's own condition; wake job.wait() callers.
        with job._condition:
            job._condition.notify_all()

    # -- queries and cancellation ------------------------------------------------------

    def get(self, job_id: str) -> ServiceJob:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(f"no job {job_id!r}") from None

    def jobs(self, tenant: Optional[str] = None) -> List[ServiceJob]:
        with self._lock:
            found = [job for job in self._jobs.values()
                     if tenant is None or job.tenant == tenant]
        return sorted(found, key=lambda job: job.job_id)

    def cancel(self, job_id: str) -> ServiceJob:
        """Cancel a job: dequeued immediately if still queued (freeing the
        tenant's quota slot), flagged for the runner to abort if running."""
        job = self.get(job_id)
        with self._lock:
            if job.state == QUEUED:
                queue = self._queues.get(job.tenant)
                if queue is not None:
                    try:
                        queue.remove(job)
                    except ValueError:
                        pass
                    if not queue:
                        self._remove_from_order(job.tenant)
                job.state = CANCELLED
                job.finished = time.time()
                self._note_terminal(job.tenant, CANCELLED)
                job.emit("cancelled", while_state=QUEUED)
                return job
            if job.state == RUNNING:
                job.cancel_requested = True
        if job.state == RUNNING:
            job.emit("cancel-requested")
        return job

    def _note_terminal(self, tenant: str, state: str) -> None:
        """Record one job reaching a terminal state on the shared registry."""
        registry = get_registry()
        registry.counter(
            "repro_jobs_completed_total", tenant=tenant, state=state,
            help="Jobs reaching a terminal state, by tenant and state.").inc()
        registry.gauge("repro_jobs_active", tenant=tenant).dec()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            by_state: Dict[str, int] = {}
            per_tenant: Dict[str, Dict[str, int]] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
                bucket = per_tenant.setdefault(
                    job.tenant, {"active": 0, "completed": 0})
                if job.state in TERMINAL_STATES:
                    bucket["completed"] += 1
                else:
                    bucket["active"] += 1
            return {
                "jobs": len(self._jobs),
                "tenants": len(per_tenant),
                "tenant_quota": self.tenant_quota,
                "by_state": dict(sorted(by_state.items())),
                "queued": sum(len(q) for q in self._queues.values()),
                "per_tenant": dict(sorted(per_tenant.items())),
            }

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop handing out work; executor threads drain on take()=None."""
        with self._lock:
            self._closed = True
            self._lock.notify_all()
