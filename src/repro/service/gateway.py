"""The study-service gateway: a long-lived multi-tenant HTTP server.

:class:`StudyService` wraps one process-wide
:class:`~repro.runner.pool.SharedWorkerPool` plus a content-addressed
:class:`~repro.service.store.ResultStore` behind a small stdlib
(``http.server``) JSON API, turning the batch what-if CLI into submitted,
multiplexed, streamed workloads:

* ``POST /jobs`` — submit a study/suite/sweep as JSON (the scenario spec
  payload of :func:`repro.scenarios.spec.parse_suite`, or catalog names),
  per-tenant quota enforced, FIFO-fair across tenants;
* ``GET /jobs`` / ``GET /jobs/<id>`` — list / inspect submissions;
* ``POST /jobs/<id>/cancel`` — dequeue a queued job (freeing its quota
  slot) or abort a running one between studies;
* ``GET /jobs/<id>/events`` — the job's progress log as an NDJSON stream:
  queueing, per-shard progress with ETA, partial per-scenario results,
  and the terminal event;
* ``GET /results/<fingerprint>`` — the finished trace, byte-identical to
  what the batch ``run-scenarios`` path caches under the same key;
* ``GET /comparisons/<key>`` — a suite's stored delta report;
* ``GET /stats`` / ``GET /healthz`` — pool, store and registry telemetry;
* ``GET /metrics`` — the process-wide metrics registry in Prometheus text
  exposition format (counters, gauges, histograms across every layer).

Executor threads (``executors``, default 2) pull jobs from the registry
and run each through a :class:`~repro.scenarios.engine.ScenarioEngine`
scheduled onto the *shared* pool, so concurrent tenants interleave their
synthesis shards and simulations on one set of workers — determinism is
the runner's: every study is a pure function of its config fingerprint,
whoever submitted it and whatever ran alongside.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro import __version__
from repro.analysis.compare import compare_suite
from repro.runner.cache import config_fingerprint
from repro.runner.executor import SuiteCancelled, SuiteEvent
from repro.runner.pool import SharedWorkerPool
from repro.scenarios import (
    ScenarioEngine,
    builtin_scenarios,
    expand_sweeps,
    parse_suite,
    replicate_scenarios,
    resolve_scenarios,
    sweep_from_flags,
)
from repro.scenarios.scenario import Scenario
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JobQuotaExceeded,
    JobRegistry,
    ServiceError,
    ServiceJob,
    UnknownJobError,
)
from repro.service.store import ResultStore, comparison_key
from repro.telemetry import get_registry, get_tracer, render_prometheus
from repro.workloads.generator import TraceGeneratorConfig

__all__ = ["StudyService", "resolve_submission", "serve"]

#: top-level keys a submission payload may carry
_SUBMISSION_KEYS = frozenset({
    "tenant", "study", "suite", "scenarios", "sweep", "replicates",
    "compare", "use_cache",
})

#: ``study`` override keys (mirrors the spec loader's ``[study]`` table)
_STUDY_FIELDS = ("total_jobs", "months", "growth_ratio", "seed",
                 "include_simulator")


def resolve_submission(
    payload: Dict[str, object],
    default_config: Optional[TraceGeneratorConfig] = None,
) -> Tuple[TraceGeneratorConfig, List[Scenario]]:
    """Turn a submission payload into ``(base config, concrete scenarios)``.

    The payload reuses the batch spec format end to end: an inline
    ``suite`` object is parsed by :func:`~repro.scenarios.spec.parse_suite`
    (its ``[study]`` table applies first), ``study`` overrides the baseline
    knobs on top, ``scenarios`` selects names from the suite (or the
    built-in catalog when no suite is given), ``sweep`` takes the CLI's
    ``kind.field=v1,v2`` axis strings, and ``replicates`` adds seed
    re-rolls.  Sweep templates are expanded here, so the returned list is
    exactly what will run — the same resolution order as the CLI.
    """
    if not isinstance(payload, dict):
        raise ServiceError("submission payload must be a JSON object")
    unknown = set(payload) - _SUBMISSION_KEYS
    if unknown:
        raise ServiceError(
            f"submission has unknown keys {sorted(unknown)}; "
            f"supported: {sorted(_SUBMISSION_KEYS)}")
    base = default_config if default_config is not None \
        else TraceGeneratorConfig()

    suite_payload = payload.get("suite")
    if suite_payload is not None:
        spec = parse_suite(suite_payload)
        catalog = spec.catalog()
        base = spec.base_config(base)
    else:
        catalog = builtin_scenarios()

    study = payload.get("study") or {}
    if not isinstance(study, dict):
        raise ServiceError("'study' must be an object of baseline overrides")
    bad = set(study) - set(_STUDY_FIELDS)
    if bad:
        raise ServiceError(
            f"'study' has unknown keys {sorted(bad)}; "
            f"supported: {list(_STUDY_FIELDS)}")
    if study:
        base = dataclasses.replace(base, **study)

    names = payload.get("scenarios")
    if names is not None:
        if (not isinstance(names, list)
                or not all(isinstance(name, str) for name in names)):
            raise ServiceError("'scenarios' must be a list of names")
        names = tuple(names)
    scenarios = list(resolve_scenarios(names, catalog))

    sweep_flags = payload.get("sweep")
    if sweep_flags:
        if (not isinstance(sweep_flags, list)
                or not all(isinstance(flag, str) for flag in sweep_flags)):
            raise ServiceError(
                "'sweep' must be a list of kind.field=v1,v2,... strings")
        scenarios.append(sweep_from_flags(sweep_flags))
    scenarios = expand_sweeps(scenarios)

    replicates = int(payload.get("replicates", 1))
    if replicates != 1:
        scenarios = replicate_scenarios(scenarios, replicates,
                                        base_seed=base.seed)
    return base, list(scenarios)


class StudyService:
    """The long-lived multi-tenant study service over one shared pool."""

    def __init__(
        self,
        base_config: Optional[TraceGeneratorConfig] = None,
        *,
        workers: Optional[int] = None,
        num_shards: Optional[int] = None,
        cache_dir: Union[str, Path] = ".repro-cache",
        max_cache_bytes: Optional[int] = None,
        tenant_quota: int = 8,
        executors: int = 2,
        stream_idle_seconds: float = 15.0,
    ):
        self.base_config = base_config or TraceGeneratorConfig()
        self.num_shards = num_shards
        self.pool = SharedWorkerPool(workers)
        self.store = ResultStore(cache_dir, max_bytes=max_cache_bytes)
        self.registry = JobRegistry(tenant_quota=tenant_quota)
        self.executors = max(1, int(executors))
        self.stream_idle_seconds = stream_idle_seconds
        self._threads: List[threading.Thread] = []
        self._started = False
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------------

    def start(self) -> "StudyService":
        """Start the executor threads (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            self._threads = [
                threading.Thread(target=self._executor_loop,
                                 name=f"study-exec-{index}", daemon=True)
                for index in range(self.executors)
            ]
            for thread in self._threads:
                thread.start()
        return self

    def stop(self) -> None:
        """Stop taking work, drain the executors, release the pool."""
        self.registry.close()
        for thread in self._threads:
            thread.join(timeout=60)
        self.pool.close()

    def __enter__(self) -> "StudyService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- the executor side -------------------------------------------------------------

    def _executor_loop(self) -> None:
        while True:
            job = self.registry.take(timeout=0.5)
            if job is None:
                if self.registry.closed:
                    return
                continue
            self._run_job(job)

    def _run_job(self, job: ServiceJob) -> None:
        try:
            base, scenarios = resolve_submission(job.payload,
                                                 self.base_config)
        except Exception as exc:
            self.registry.finish(job, FAILED, error=str(exc))
            return
        if job.cancel_requested:
            self.registry.finish(job, CANCELLED)
            return

        # Fingerprint → scenario names, so shard events and partial
        # results can be labelled for the stream while the suite runs.
        names_by_fingerprint: Dict[str, List[str]] = {}
        for scenario in scenarios:
            fingerprint = config_fingerprint(scenario.apply_to(base))
            names_by_fingerprint.setdefault(fingerprint,
                                            []).append(scenario.name)

        def forward(event: SuiteEvent) -> None:
            detail = event.as_dict()
            kind = detail.pop("kind")
            job.emit("progress", kind=kind, **detail)
            if kind in ("study-done", "cache-hit") and event.key is not None:
                for name in names_by_fingerprint.get(event.key, ()):
                    job.emit("scenario-done", scenario=name,
                             fingerprint=event.key,
                             cache_hit=(kind == "cache-hit"),
                             **{k: v for k, v in detail.items()
                                if k in ("jobs", "seconds")})

        engine = ScenarioEngine(
            base,
            num_shards=self.num_shards,
            cache=self.store.cache,
            pool=self.pool,
            lazy_cache=True,
            on_event=forward,
            should_stop=lambda: job.cancel_requested,
        )
        use_cache = bool(job.payload.get("use_cache", True))
        try:
            suite = engine.run(scenarios, use_cache=use_cache)
        except SuiteCancelled:
            self.registry.finish(job, CANCELLED)
            return
        except Exception as exc:
            self.registry.finish(job, FAILED, error=str(exc))
            return

        # The on-wire summary is derived from the suite's StudyResult
        # handles (name → fingerprint/cache-hit), keeping the JSON bytes
        # exactly what earlier releases emitted.
        result: Dict[str, object] = {
            "scenarios": [run.summary() for run in suite],
            "fingerprints": suite.fingerprints(),
            "cache_hits": sum(1 for run in suite if run.cache_hit),
            "total_seconds": round(suite.total_seconds, 3),
        }
        if bool(job.payload.get("compare", True)):
            try:
                report = compare_suite(suite)
            except Exception as exc:
                self.registry.finish(job, FAILED,
                                     error=f"comparison failed: {exc}")
                return
            key = comparison_key([
                (run.name, run.fingerprint, run.scenario.replicate_of)
                for run in suite])
            self.store.put_comparison(key, {
                "comparison_key": key,
                "suite": suite.summary(),
                "comparison": report.as_dict(),
            })
            result["comparison_key"] = key
        self.store.prune()
        self.registry.finish(job, DONE, result=result)

    # -- the HTTP surface --------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        from repro.transpiler.cache import TranspileCache

        metrics = get_registry()
        kinds = ("transpile", "synthesis", "simulation", "task")
        transpile_cache = TranspileCache(self.store.root)
        transpile_entries = transpile_cache.entries()
        return {
            "service": "repro-study-service",
            "version": __version__,
            "workers": self.pool.workers,
            "executors": self.executors,
            "registry": self.registry.stats(),
            "store": self.store.stats(),
            "transpile_cache": {
                "entries": len(transpile_entries),
                "total_bytes": sum(entry.size_bytes
                                   for entry in transpile_entries),
                # Process-wide counters (summed over every TranspileCache
                # instance): the caches the runner opened did the probing,
                # not the throwaway instance scanning the directory here.
                "hits": int(metrics.value(
                    "repro_transpile_cache_hits_total")),
                "misses": int(metrics.value(
                    "repro_transpile_cache_misses_total")),
                "evictions": int(metrics.value(
                    "repro_transpile_cache_evictions_total")),
            },
            "pool": {
                "workers": self.pool.workers,
                "queue_depth": int(
                    metrics.value("repro_pool_queue_depth")),
                "tasks_submitted": int(sum(
                    metrics.value("repro_pool_tasks_total", kind=kind)
                    for kind in kinds)),
                "tasks_completed": int(sum(
                    metrics.value("repro_pool_tasks_completed_total",
                                  kind=kind)
                    for kind in kinds)),
            },
        }

    def make_server(self, host: str = "127.0.0.1",
                    port: int = 8765) -> ThreadingHTTPServer:
        """An HTTP server bound to this service (``port=0`` picks a free
        one).  Call :meth:`start` first; ``serve_forever`` is the caller's."""
        service = self

        class Handler(_GatewayHandler):
            pass

        Handler.service = service
        server = ThreadingHTTPServer((host, port), Handler)
        server.daemon_threads = True
        return server


class _GatewayHandler(BaseHTTPRequestHandler):
    """Routes the gateway's HTTP surface onto a :class:`StudyService`."""

    service: StudyService  # bound by StudyService.make_server
    server_version = "repro-study-service"
    protocol_version = "HTTP/1.0"  # streams end at connection close

    # -- plumbing ----------------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the service is quiet; telemetry lives under /stats

    def _send_json(self, code: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_json(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ServiceError("request body must be a JSON object")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        return payload

    # -- routing -----------------------------------------------------------------------

    @contextmanager
    def _observed(self, method: str, parts: List[str]):
        """Count the request, time it, and span it (bounded route labels)."""
        route = "/" + parts[0] if parts else "/"
        registry = get_registry()
        registry.counter(
            "repro_gateway_requests_total", method=method, route=route,
            help="HTTP requests served by the gateway.").inc()
        histogram = registry.histogram(
            "repro_gateway_request_seconds",
            help="Gateway request handling latency in seconds.")
        start = time.perf_counter()
        with get_tracer().span("gateway.request", method=method,
                               route=route):
            try:
                yield
            finally:
                histogram.observe(time.perf_counter() - start)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        with self._observed("GET", parts):
            self._handle_get(url, parts)

    def _handle_get(self, url, parts: List[str]) -> None:
        query = parse_qs(url.query)
        try:
            if parts == ["healthz"]:
                self._send_json(200, {"status": "ok",
                                      "version": __version__})
            elif parts == ["stats"]:
                self._send_json(200, self.service.stats())
            elif parts == ["jobs"]:
                tenant = query.get("tenant", [None])[0]
                self._send_json(200, {"jobs": [
                    job.snapshot()
                    for job in self.service.registry.jobs(tenant)]})
            elif len(parts) == 2 and parts[0] == "jobs":
                job = self.service.registry.get(parts[1])
                self._send_json(200, job.snapshot())
            elif len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "events":
                since = int(query.get("since", ["0"])[0])
                self._stream_events(self.service.registry.get(parts[1]),
                                    since)
            elif len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "result":
                self._send_result(self.service.registry.get(parts[1]))
            elif len(parts) == 2 and parts[0] == "results":
                self._send_trace(parts[1])
            elif len(parts) == 2 and parts[0] == "comparisons":
                payload = self.service.store.get_comparison(parts[1])
                if payload is None:
                    self._send_error_json(
                        404, f"no comparison {parts[1]!r}")
                else:
                    self._send_json(200, payload)
            elif parts == ["metrics"]:
                self._send_metrics()
            else:
                self._send_error_json(404, f"no route GET {url.path}")
        except UnknownJobError as exc:
            self._send_error_json(404, str(exc))
        except ServiceError as exc:
            self._send_error_json(400, str(exc))
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        with self._observed("POST", parts):
            self._handle_post(url, parts)

    def _handle_post(self, url, parts: List[str]) -> None:
        try:
            if parts == ["jobs"]:
                payload = self._read_json()
                tenant = str(
                    payload.get("tenant")
                    or self.headers.get("X-Repro-Tenant")
                    or "default")
                # Fail fast on malformed submissions: resolution errors
                # surface as HTTP 400 instead of a failed job.
                resolve_submission(payload, self.service.base_config)
                job = self.service.registry.submit(tenant, payload)
                self._send_json(202, job.snapshot())
            elif len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "cancel":
                job = self.service.registry.cancel(parts[1])
                self._send_json(200, job.snapshot())
            else:
                self._send_error_json(404, f"no route POST {url.path}")
        except JobQuotaExceeded as exc:
            self._send_error_json(429, str(exc))
        except UnknownJobError as exc:
            self._send_error_json(404, str(exc))
        except ServiceError as exc:
            self._send_error_json(400, str(exc))
        except Exception as exc:  # malformed payloads must not kill threads
            self._send_error_json(400, str(exc))

    # -- responses ---------------------------------------------------------------------

    def _send_metrics(self) -> None:
        body = render_prometheus(get_registry()).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _stream_events(self, job: ServiceJob, since: int) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        for event in job.stream(since=since,
                                idle=self.service.stream_idle_seconds):
            if event is None:
                line = json.dumps({"event": "heartbeat", "job": job.job_id})
            else:
                line = json.dumps(event)
            self.wfile.write(line.encode("utf-8") + b"\n")
            self.wfile.flush()

    def _send_result(self, job: ServiceJob) -> None:
        if job.result is None:
            self._send_error_json(
                409, f"job {job.job_id} is {job.state}; no result yet"
                if job.state not in ("failed", "cancelled")
                else f"job {job.job_id} finished {job.state} "
                     f"without a result")
            return
        self._send_json(200, job.snapshot())

    def _send_trace(self, fingerprint: str) -> None:
        data = self.service.store.trace_bytes(fingerprint)
        if data is None:
            self._send_error_json(
                404, f"no trace for fingerprint {fingerprint!r}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(data)))
        self.send_header("X-Repro-Fingerprint", fingerprint)
        self.end_headers()
        self.wfile.write(data)


def serve(
    service: StudyService,
    host: str = "127.0.0.1",
    port: int = 8765,
) -> None:
    """Run the gateway until interrupted (the blocking CLI entry point)."""
    service.start()
    server = service.make_server(host, port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop()
