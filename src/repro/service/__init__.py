"""The study-service gateway: studies as submitted, streamed workloads.

Everything below ``repro.service`` turns the batch what-if pipeline into a
long-lived multi-tenant server over the one shared worker pool:

* :mod:`repro.service.jobs` — the job registry (``queued → running →
  done/failed/cancelled``), per-tenant quotas, FIFO fairness across
  tenants, and per-job event logs with blocking streams.
* :mod:`repro.service.store` — :class:`ResultStore`, the content-addressed
  result surface over the trace cache: traces by config fingerprint,
  comparisons by suite hash, hit accounting, max-bytes LRU eviction.
* :mod:`repro.service.gateway` — :class:`StudyService` and the stdlib
  HTTP server (`python -m repro serve`): JSON submissions, NDJSON event
  streams, result fetches.
* :mod:`repro.service.client` — :class:`StudyServiceClient`, the
  dependency-free ``urllib`` client the CLI subcommands and the CI smoke
  benchmark use.
"""

from repro.service.client import GatewayError, StudyServiceClient
from repro.service.gateway import StudyService, resolve_submission, serve
from repro.service.jobs import (
    JobQuotaExceeded,
    JobRegistry,
    ServiceError,
    ServiceJob,
    UnknownJobError,
)
from repro.service.store import ResultStore, comparison_key

__all__ = [
    "GatewayError",
    "JobQuotaExceeded",
    "JobRegistry",
    "ResultStore",
    "ServiceError",
    "ServiceJob",
    "StudyService",
    "StudyServiceClient",
    "UnknownJobError",
    "comparison_key",
    "resolve_submission",
    "serve",
]
