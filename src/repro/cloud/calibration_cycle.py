"""Calibration-crossover detection (Fig. 12a).

A job is compiled against the machine's calibration at (or shortly before)
submission time; if it only reaches the head of the queue after the next
daily recalibration, the device-aware compilation decisions are stale.  The
detector compares the calibration epoch at compile time against the epoch at
execution-start time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.job import Job
from repro.core.exceptions import CloudError
from repro.devices.backend import Backend


@dataclass(frozen=True)
class CrossoverRecord:
    """Outcome of checking one job for a calibration crossover."""

    job_id: str
    backend_name: str
    compile_epoch: int
    execution_epoch: int

    @property
    def crossed(self) -> bool:
        return self.execution_epoch > self.compile_epoch

    @property
    def epochs_stale(self) -> int:
        return max(0, self.execution_epoch - self.compile_epoch)


class CalibrationCrossoverDetector:
    """Checks jobs for compile-vs-run calibration epoch mismatches."""

    def __init__(self, fleet: Dict[str, Backend]):
        self._fleet = dict(fleet)

    def check(self, job: Job, compile_time: Optional[float] = None) -> CrossoverRecord:
        """Classify one finished (or at least started) job."""
        backend = self._fleet.get(job.backend_name)
        if backend is None:
            raise CloudError(f"unknown backend {job.backend_name!r}")
        if job.start_time is None:
            raise CloudError("job has not started; cannot check crossover")
        compiled_at = compile_time if compile_time is not None else job.submit_time
        model = backend.calibration_model
        return CrossoverRecord(
            job_id=job.job_id,
            backend_name=job.backend_name,
            compile_epoch=model.epoch_for_time(compiled_at),
            execution_epoch=model.epoch_for_time(job.start_time),
        )

    def crossover_fraction(self, jobs: List[Job]) -> float:
        """Fraction of jobs whose execution crossed a calibration boundary."""
        checked = [self.check(job) for job in jobs if job.start_time is not None]
        if not checked:
            return 0.0
        crossed = sum(1 for record in checked if record.crossed)
        return crossed / len(checked)
