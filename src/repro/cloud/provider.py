"""Providers (hubs/groups) and access privileges.

IBM Quantum organises users into providers; the open (public) provider has a
small fair-share weight while paid/academic hubs have larger shares and
access to privileged machines.  The study's jobs came through a mix of both
(Fig. 3 caption).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.exceptions import CloudError
from repro.core.types import AccessLevel


@dataclass(frozen=True)
class Provider:
    """A hub/group/project through which jobs are submitted."""

    name: str
    access: AccessLevel
    fair_share: float = 1.0

    def __post_init__(self):
        if self.fair_share <= 0:
            raise CloudError("fair_share must be positive")

    @property
    def can_use_privileged(self) -> bool:
        return self.access is AccessLevel.PRIVILEGED

    def allowed_machines(self, fleet: Dict[str, object]) -> List[str]:
        """Names of machines this provider may target."""
        allowed = []
        for name, backend in fleet.items():
            is_public = getattr(backend, "is_public", True)
            if is_public or self.can_use_privileged:
                allowed.append(name)
        return sorted(allowed)


#: Providers used by the synthetic study trace: an open/public project plus a
#: privileged academic hub, mirroring the paper's "mix of public and
#: privileged jobs".
DEFAULT_PROVIDERS: Dict[str, Provider] = {
    "open": Provider(name="open", access=AccessLevel.PUBLIC, fair_share=1.0),
    "academic-hub": Provider(name="academic-hub", access=AccessLevel.PRIVILEGED,
                             fair_share=3.0),
}
