"""Job and result objects.

Terminology follows Section II-B of the paper: a *job* encapsulates a batch
of circuits submitted together to one machine; each circuit is executed for
a number of *shots*; the *results* are per-circuit bitstring counts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.exceptions import CloudError
from repro.core.types import JobStatus

_JOB_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class CircuitSpec:
    """Structural description of one circuit inside a job.

    The cloud simulator and the analysis layer work from these structural
    features (the same features the paper's runtime predictor uses), not
    from full instruction lists, which keeps two-year traces lightweight.
    """

    name: str
    width: int
    depth: int
    num_gates: int
    cx_count: int
    cx_depth: int
    family: str = "unknown"

    def __post_init__(self):
        if self.width < 1:
            raise CloudError("circuit width must be at least 1 qubit")
        if self.depth < 0 or self.num_gates < 0:
            raise CloudError("circuit depth and gate count must be non-negative")
        if self.cx_count < 0 or self.cx_depth < 0:
            raise CloudError("CX metrics must be non-negative")


def circuit_spec_from_circuit(circuit, family: Optional[str] = None) -> CircuitSpec:
    """Build a :class:`CircuitSpec` from a :class:`~repro.circuits.QuantumCircuit`."""
    summary = circuit.summary()
    return CircuitSpec(
        name=str(summary["name"]),
        width=int(summary["width"]),
        depth=int(summary["depth"]),
        num_gates=int(summary["num_gates"]),
        cx_count=int(summary["cx_count"]),
        cx_depth=int(summary["cx_depth"]),
        family=str(family or circuit.metadata.get("family", "unknown")),
    )


@dataclass
class Job:
    """A batch of circuits submitted to one machine."""

    provider: str
    backend_name: str
    circuits: List[CircuitSpec]
    shots: int
    submit_time: float
    compile_seconds: float = 0.0
    job_id: str = field(default_factory=lambda: f"job-{next(_JOB_COUNTER):06d}")
    status: JobStatus = JobStatus.INITIALIZING
    queue_enter_time: Optional[float] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    pending_ahead: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if not self.circuits:
            raise CloudError("a job must contain at least one circuit")
        if self.shots < 1:
            raise CloudError("shots must be at least 1")

    @property
    def batch_size(self) -> int:
        return len(self.circuits)

    @property
    def total_trials(self) -> int:
        """Total machine trials contributed by the job (batch x shots)."""
        return self.batch_size * self.shots

    @property
    def max_width(self) -> int:
        return max(spec.width for spec in self.circuits)

    @property
    def mean_depth(self) -> float:
        return sum(spec.depth for spec in self.circuits) / self.batch_size

    @property
    def total_gates(self) -> int:
        return sum(spec.num_gates for spec in self.circuits)

    @property
    def total_cx(self) -> int:
        return sum(spec.cx_count for spec in self.circuits)

    @property
    def queue_seconds(self) -> Optional[float]:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def run_seconds(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def mark_queued(self, time: float) -> None:
        self.status = JobStatus.QUEUED
        self.queue_enter_time = time

    def mark_running(self, time: float) -> None:
        self.status = JobStatus.RUNNING
        self.start_time = time

    def mark_finished(self, time: float, status: JobStatus) -> None:
        if not status.is_terminal:
            raise CloudError(f"{status} is not a terminal status")
        self.status = status
        self.end_time = time


@dataclass
class JobResult:
    """Classical results returned to the client once a job completes."""

    job_id: str
    backend_name: str
    status: JobStatus
    per_circuit_counts: List[Dict[str, int]] = field(default_factory=list)
    queue_seconds: float = 0.0
    run_seconds: float = 0.0

    @property
    def success(self) -> bool:
        return self.status is JobStatus.DONE

    def counts(self, index: int = 0) -> Dict[str, int]:
        if not self.per_circuit_counts:
            raise CloudError("job returned no counts")
        if not 0 <= index < len(self.per_circuit_counts):
            raise CloudError(
                f"circuit index {index} out of range "
                f"({len(self.per_circuit_counts)} circuits)"
            )
        return self.per_circuit_counts[index]
