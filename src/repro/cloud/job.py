"""Job and result objects.

Terminology follows Section II-B of the paper: a *job* encapsulates a batch
of circuits submitted together to one machine; each circuit is executed for
a number of *shots*; the *results* are per-circuit bitstring counts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.exceptions import CloudError
from repro.core.types import JobStatus

_JOB_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class CircuitSpec:
    """Structural description of one circuit inside a job.

    The cloud simulator and the analysis layer work from these structural
    features (the same features the paper's runtime predictor uses), not
    from full instruction lists, which keeps two-year traces lightweight.
    """

    name: str
    width: int
    depth: int
    num_gates: int
    cx_count: int
    cx_depth: int
    family: str = "unknown"

    def __post_init__(self):
        if self.width < 1:
            raise CloudError("circuit width must be at least 1 qubit")
        if self.depth < 0 or self.num_gates < 0:
            raise CloudError("circuit depth and gate count must be non-negative")
        if self.cx_count < 0 or self.cx_depth < 0:
            raise CloudError("CX metrics must be non-negative")


def circuit_spec_from_circuit(circuit, family: Optional[str] = None) -> CircuitSpec:
    """Build a :class:`CircuitSpec` from a :class:`~repro.circuits.QuantumCircuit`."""
    summary = circuit.summary()
    return CircuitSpec(
        name=str(summary["name"]),
        width=int(summary["width"]),
        depth=int(summary["depth"]),
        num_gates=int(summary["num_gates"]),
        cx_count=int(summary["cx_count"]),
        cx_depth=int(summary["cx_depth"]),
        family=str(family or circuit.metadata.get("family", "unknown")),
    )


class CircuitBatch:
    """Columnar description of one job's batch of circuits.

    Study jobs batch up to 900 circuits, but only the first
    ``min(16, batch_size)`` structurally differ (per-variant metric jitter);
    every other circuit shares the job's base metrics exactly.  Storing one
    :class:`CircuitSpec` object per circuit is therefore pure overhead at
    ~600k circuits per study.  A batch instead keeps the base metric row
    plus a small ``(variants x 5)`` int64 array, materialises
    :class:`CircuitSpec` rows lazily on indexing/iteration, and answers the
    aggregate questions of the execution model and the trace recorder in
    O(variants) instead of O(batch).
    """

    #: metric columns, in storage order
    METRIC_FIELDS: Tuple[str, ...] = ("width", "depth", "num_gates",
                                      "cx_count", "cx_depth")

    __slots__ = ("name_prefix", "family", "batch_size", "base", "variants",
                 "_width_column", "_depth_column")

    def __init__(self, name_prefix: str, family: str, batch_size: int,
                 base: Sequence[int], variants: np.ndarray):
        if batch_size < 1:
            raise CloudError("a job must contain at least one circuit")
        base_row = tuple(int(v) for v in base)
        if len(base_row) != len(self.METRIC_FIELDS):
            raise CloudError("base metrics must have one value per column")
        variant_rows = np.asarray(variants, dtype=np.int64)
        if variant_rows.ndim != 2 or \
                variant_rows.shape[1] != len(self.METRIC_FIELDS):
            raise CloudError("variant metrics must be a (k, 5) array")
        if not 1 <= variant_rows.shape[0] <= batch_size:
            raise CloudError(
                "a batch needs between 1 and batch_size metric variants")
        widths = np.concatenate([variant_rows[:, 0], [base_row[0]]])
        others = np.concatenate([variant_rows[:, 1:].ravel(),
                                 list(base_row[1:])])
        if int(widths.min()) < 1:
            raise CloudError("circuit width must be at least 1 qubit")
        if int(others.min()) < 0:
            raise CloudError("circuit metrics must be non-negative")
        self.name_prefix = name_prefix
        self.family = family
        self.batch_size = int(batch_size)
        self.base = base_row
        self.variants = variant_rows
        self._width_column: Optional[np.ndarray] = None
        self._depth_column: Optional[np.ndarray] = None

    @classmethod
    def from_metrics(cls, name_prefix: str, family: str, batch_size: int,
                     base, variants: Sequence) -> "CircuitBatch":
        """Build a batch from metric objects exposing the five metric fields."""
        rows = np.asarray(
            [[getattr(m, field_name) for field_name in cls.METRIC_FIELDS]
             for m in variants],
            dtype=np.int64,
        ).reshape(-1, len(cls.METRIC_FIELDS))
        base_row = [getattr(base, field_name)
                    for field_name in cls.METRIC_FIELDS]
        return cls(name_prefix, family, batch_size, base_row, rows)

    # -- sequence protocol ---------------------------------------------------------

    @property
    def num_variants(self) -> int:
        return int(self.variants.shape[0])

    def __len__(self) -> int:
        return self.batch_size

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self.batch_size))]
        i = int(index)
        if i < 0:
            i += self.batch_size
        if not 0 <= i < self.batch_size:
            raise IndexError("circuit index out of range")
        if i < self.num_variants:
            row = tuple(int(v) for v in self.variants[i])
        else:
            row = self.base
        return CircuitSpec(
            name=f"{self.name_prefix}{i}",
            width=row[0],
            depth=row[1],
            num_gates=row[2],
            cx_count=row[3],
            cx_depth=row[4],
            family=self.family,
        )

    def __iter__(self) -> Iterator[CircuitSpec]:
        return (self[i] for i in range(self.batch_size))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CircuitBatch):
            return NotImplemented
        return (self.name_prefix == other.name_prefix
                and self.family == other.family
                and self.batch_size == other.batch_size
                and self.base == other.base
                and np.array_equal(self.variants, other.variants))

    def __repr__(self) -> str:
        return (f"CircuitBatch(family={self.family!r}, "
                f"batch_size={self.batch_size}, "
                f"variants={self.num_variants})")

    # -- aggregates (exact integer arithmetic) -------------------------------------

    @property
    def max_width(self) -> int:
        widest_variant = int(self.variants[:, 0].max())
        if self.batch_size > self.num_variants:
            return max(widest_variant, self.base[0])
        return widest_variant

    def totals(self) -> Tuple[int, int, int, int]:
        """(depth, gates, cx, cx_depth) summed over the whole batch."""
        tail = self.batch_size - self.num_variants
        sums = self.variants[:, 1:].sum(axis=0)
        return tuple(int(sums[j]) + self.base[j + 1] * tail
                     for j in range(4))  # type: ignore[return-value]

    # -- per-circuit metric columns (for the vectorised execution model) -----------

    def width_column(self) -> np.ndarray:
        """Per-circuit widths as a float64 column of length ``batch_size``."""
        if self._width_column is None:
            column = np.full(self.batch_size, float(self.base[0]))
            column[:self.num_variants] = self.variants[:, 0]
            self._width_column = column
        return self._width_column

    def depth_column(self) -> np.ndarray:
        """Per-circuit depths as a float64 column of length ``batch_size``."""
        if self._depth_column is None:
            column = np.full(self.batch_size, float(self.base[1]))
            column[:self.num_variants] = self.variants[:, 1]
            self._depth_column = column
        return self._depth_column


#: What a job may carry as its circuits: an explicit spec list (hand-built
#: jobs, scheduling experiments) or the compact columnar batch produced by
#: the study synthesiser.
CircuitsLike = Union[List[CircuitSpec], CircuitBatch]


@dataclass
class Job:
    """A batch of circuits submitted to one machine."""

    provider: str
    backend_name: str
    circuits: CircuitsLike
    shots: int
    submit_time: float
    compile_seconds: float = 0.0
    job_id: str = field(default_factory=lambda: f"job-{next(_JOB_COUNTER):06d}")
    status: JobStatus = JobStatus.INITIALIZING
    queue_enter_time: Optional[float] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    pending_ahead: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if not self.circuits:
            raise CloudError("a job must contain at least one circuit")
        if self.shots < 1:
            raise CloudError("shots must be at least 1")

    @property
    def batch_size(self) -> int:
        return len(self.circuits)

    @property
    def total_trials(self) -> int:
        """Total machine trials contributed by the job (batch x shots)."""
        return self.batch_size * self.shots

    @property
    def max_width(self) -> int:
        if isinstance(self.circuits, CircuitBatch):
            return self.circuits.max_width
        return max(spec.width for spec in self.circuits)

    @property
    def mean_depth(self) -> float:
        if isinstance(self.circuits, CircuitBatch):
            return self.circuits.totals()[0] / self.batch_size
        return sum(spec.depth for spec in self.circuits) / self.batch_size

    @property
    def total_gates(self) -> int:
        if isinstance(self.circuits, CircuitBatch):
            return self.circuits.totals()[1]
        return sum(spec.num_gates for spec in self.circuits)

    @property
    def total_cx(self) -> int:
        if isinstance(self.circuits, CircuitBatch):
            return self.circuits.totals()[2]
        return sum(spec.cx_count for spec in self.circuits)

    @property
    def queue_seconds(self) -> Optional[float]:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def run_seconds(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def mark_queued(self, time: float) -> None:
        self.status = JobStatus.QUEUED
        self.queue_enter_time = time

    def mark_running(self, time: float) -> None:
        self.status = JobStatus.RUNNING
        self.start_time = time

    def mark_finished(self, time: float, status: JobStatus) -> None:
        if not status.is_terminal:
            raise CloudError(f"{status} is not a terminal status")
        self.status = status
        self.end_time = time


@dataclass
class JobResult:
    """Classical results returned to the client once a job completes."""

    job_id: str
    backend_name: str
    status: JobStatus
    per_circuit_counts: List[Dict[str, int]] = field(default_factory=list)
    queue_seconds: float = 0.0
    run_seconds: float = 0.0

    @property
    def success(self) -> bool:
        return self.status is JobStatus.DONE

    def counts(self, index: int = 0) -> Dict[str, int]:
        if not self.per_circuit_counts:
            raise CloudError("job returned no counts")
        if not 0 <= index < len(self.per_circuit_counts):
            raise CloudError(
                f"circuit index {index} out of range "
                f"({len(self.per_circuit_counts)} circuits)"
            )
        return self.per_circuit_counts[index]
