"""Per-machine job queues: FIFO and fair-share.

IBM Quantum orders pending jobs with a fair-share algorithm so no provider
can monopolise a system (Section II-B, definition 5): the next job to run is
taken from the provider that has consumed the least machine time relative to
its share.  Within a provider, jobs run in submission order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cloud.job import Job
from repro.core.exceptions import CloudError


@dataclass(order=True)
class QueuedEntry:
    """A job waiting in a machine queue."""

    sort_key: float
    sequence: int
    job: Job = field(compare=False)


class FifoQueue:
    """Plain first-in-first-out queue."""

    def __init__(self):
        self._entries: List[QueuedEntry] = []
        self._sequence = 0

    def push(self, job: Job, now: float) -> None:
        self._entries.append(QueuedEntry(now, self._sequence, job))
        self._sequence += 1

    def pop(self, now: float) -> Job:
        if not self._entries:
            raise CloudError("queue is empty")
        entry = min(self._entries, key=lambda e: (e.sort_key, e.sequence))
        self._entries.remove(entry)
        return entry.job

    def __len__(self) -> int:
        return len(self._entries)

    def peek_jobs(self) -> List[Job]:
        return [e.job for e in sorted(self._entries,
                                      key=lambda e: (e.sort_key, e.sequence))]


class FairShareQueue:
    """Fair-share queue across providers.

    Each provider has a *share*; the scheduler tracks machine seconds
    consumed per provider and always serves the provider with the smallest
    ``consumed / share`` ratio that has a pending job.  This reproduces the
    paper's observation that completion order is not submission order.
    """

    def __init__(self, shares: Optional[Dict[str, float]] = None,
                 default_share: float = 1.0):
        if default_share <= 0:
            raise CloudError("default_share must be positive")
        self._shares: Dict[str, float] = dict(shares or {})
        self._default_share = default_share
        self._consumed: Dict[str, float] = {}
        self._pending: Dict[str, List[QueuedEntry]] = {}
        self._sequence = 0

    def set_share(self, provider: str, share: float) -> None:
        if share <= 0:
            raise CloudError("share must be positive")
        self._shares[provider] = share

    def share_of(self, provider: str) -> float:
        return self._shares.get(provider, self._default_share)

    def push(self, job: Job, now: float) -> None:
        entry = QueuedEntry(now, self._sequence, job)
        self._sequence += 1
        self._pending.setdefault(job.provider, []).append(entry)

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._pending.values())

    def pending_providers(self) -> List[str]:
        return sorted(p for p, entries in self._pending.items() if entries)

    def _priority(self, provider: str) -> float:
        return self._consumed.get(provider, 0.0) / self.share_of(provider)

    def pop(self, now: float) -> Job:
        """Pop the next job according to fair-share ordering."""
        candidates = self.pending_providers()
        if not candidates:
            raise CloudError("queue is empty")
        provider = min(candidates, key=lambda p: (self._priority(p), p))
        entries = self._pending[provider]
        entry = min(entries, key=lambda e: (e.sort_key, e.sequence))
        entries.remove(entry)
        return entry.job

    def record_usage(self, provider: str, machine_seconds: float) -> None:
        """Charge consumed machine time to a provider after a job runs."""
        if machine_seconds < 0:
            raise CloudError("machine_seconds must be non-negative")
        self._consumed[provider] = self._consumed.get(provider, 0.0) + machine_seconds

    def consumed(self, provider: str) -> float:
        return self._consumed.get(provider, 0.0)

    def peek_jobs(self) -> List[Job]:
        """All pending jobs in (approximate) service order."""
        ordered: List[Job] = []
        snapshot = {p: list(e) for p, e in self._pending.items()}
        consumed = dict(self._consumed)
        while any(snapshot.values()):
            provider = min(
                (p for p, entries in snapshot.items() if entries),
                key=lambda p: (consumed.get(p, 0.0) / self.share_of(p), p),
            )
            entries = snapshot[provider]
            entry = min(entries, key=lambda e: (e.sort_key, e.sequence))
            entries.remove(entry)
            ordered.append(entry.job)
            consumed[provider] = consumed.get(provider, 0.0) + 60.0
        return ordered
