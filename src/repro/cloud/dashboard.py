"""A client-facing dashboard over the simulated cloud.

Mirrors what the IBM Quantum dashboard showed users during the study period:
per-machine status (qubits, access, pending jobs, average CX/readout error
of the current calibration) plus helpers for the two questions users ask
before submitting — "which machine is least busy?" and "which machine is
best calibrated right now?".  The workload generator's queue-dodging and
fidelity-seeking user classes are modelled on exactly this information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.backlog import ExternalLoadModel
from repro.cloud.service import QuantumCloudService
from repro.core.exceptions import CloudError
from repro.devices.backend import Backend


@dataclass(frozen=True)
class MachineStatus:
    """One row of the dashboard."""

    machine: str
    qubits: int
    access: str
    online: bool
    pending_jobs: float
    average_cx_error: float
    average_readout_error: float
    basis_gates: tuple

    def as_dict(self) -> Dict[str, object]:
        return {
            "machine": self.machine,
            "qubits": self.qubits,
            "access": self.access,
            "online": self.online,
            "pending_jobs": round(self.pending_jobs, 1),
            "average_cx_error": self.average_cx_error,
            "average_readout_error": self.average_readout_error,
            "basis_gates": ",".join(self.basis_gates),
        }


class CloudDashboard:
    """Read-only view over a fleet (optionally backed by a live service)."""

    def __init__(self, fleet: Dict[str, Backend],
                 service: Optional[QuantumCloudService] = None, seed: int = 0):
        if not fleet:
            raise CloudError("dashboard needs at least one machine")
        self.fleet = dict(fleet)
        self.service = service
        self._load_models = {
            name: ExternalLoadModel(backend=backend, seed=seed)
            for name, backend in self.fleet.items()
        }

    def _pending_jobs(self, name: str, at_time: float) -> float:
        if self.service is not None:
            return self.service.pending_jobs_estimate(name, at_time)
        return self._load_models[name].mean_pending_jobs(at_time)

    def status(self, at_time: float = 0.0,
               month_index: Optional[int] = None) -> List[MachineStatus]:
        """Dashboard rows for every machine, sorted by size then name."""
        rows: List[MachineStatus] = []
        for name, backend in self.fleet.items():
            calibration = backend.calibration_at(at_time)
            online = True
            if month_index is not None:
                online = backend.is_online_in_month(month_index)
            rows.append(MachineStatus(
                machine=name,
                qubits=backend.num_qubits,
                access=backend.access.value,
                online=online,
                pending_jobs=self._pending_jobs(name, at_time),
                average_cx_error=calibration.average_cx_error(),
                average_readout_error=calibration.average_readout_error(),
                basis_gates=tuple(backend.basis_gates),
            ))
        return sorted(rows, key=lambda r: (r.qubits, r.machine))

    def least_busy(self, at_time: float = 0.0, min_qubits: int = 1,
                   public_only: bool = False) -> MachineStatus:
        """The machine with the fewest pending jobs that satisfies the filters."""
        candidates = [
            row for row in self.status(at_time)
            if row.qubits >= min_qubits
            and (not public_only or row.access == "public")
        ]
        if not candidates:
            raise CloudError(
                f"no machine with at least {min_qubits} qubits matches the filter"
            )
        return min(candidates, key=lambda r: (r.pending_jobs, r.machine))

    def best_calibrated(self, at_time: float = 0.0,
                        min_qubits: int = 1) -> MachineStatus:
        """The machine with the lowest average CX error among those that fit."""
        candidates = [row for row in self.status(at_time)
                      if row.qubits >= min_qubits]
        if not candidates:
            raise CloudError(
                f"no machine with at least {min_qubits} qubits is available"
            )
        hardware = [row for row in candidates
                    if not self.fleet[row.machine].is_simulator]
        pool = hardware or candidates
        return min(pool, key=lambda r: (r.average_cx_error, r.machine))

    def render(self, at_time: float = 0.0) -> str:
        """Plain-text dashboard table."""
        from repro.analysis.report import render_table

        rows = [row.as_dict() for row in self.status(at_time)]
        return render_table("quantum cloud dashboard", rows)
