"""External-load model: the rest of the world's jobs.

The studied trace covers one research group's ~6000 jobs, but the queue a
job experiences is dominated by *everyone else's* jobs on the shared IBM
machines (Fig. 9 shows tens to thousands of pending jobs).  Simulating every
external user individually over two years is unnecessary for reproducing the
distributions; instead each machine carries a stationary stochastic backlog
model:

* the expected pending-job count scales with the machine's demand weight and
  is 10-100x higher on public machines (Fig. 9),
* the instantaneous backlog is lognormally distributed around that mean with
  heavy upper tails (queues of a day or more — Fig. 3/10),
* a diurnal/weekly modulation makes load time-dependent, and demand grows
  over the two-year window (Fig. 2a's accelerating usage).

Privileged (paid) access sees a reduced effective backlog because fair-share
weighting favours those providers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.exceptions import CloudError
from repro.core.rng import BufferedDraws, RandomSource
from repro.core.types import AccessLevel
from repro.core.units import DAY_SECONDS, MINUTE_SECONDS
from repro.devices.backend import Backend


#: Scalar or float64 array of timestamps (the model is vectorised over time).
TimeLike = Union[float, np.ndarray]

#: A scalar draw source: a full random stream or block-buffered draws.
DrawSource = Union[RandomSource, BufferedDraws]


def diurnal_factor(timestamp: TimeLike) -> TimeLike:
    """Smooth daily + weekly demand modulation (1.0 on average).

    Accepts a scalar or an ndarray of timestamps; the scalar path keeps the
    exact ``math``-library arithmetic the simulator has always used.
    """
    if isinstance(timestamp, np.ndarray):
        day_phase = 2.0 * np.pi * ((timestamp % DAY_SECONDS) / DAY_SECONDS)
        week_phase = 2.0 * np.pi * ((timestamp % (7 * DAY_SECONDS))
                                    / (7 * DAY_SECONDS))
        daily = 1.0 + 0.35 * np.sin(day_phase - 0.8)
        weekly = 1.0 + 0.15 * np.sin(week_phase)
        return np.maximum(0.25, daily * weekly)
    day_phase = 2.0 * math.pi * ((timestamp % DAY_SECONDS) / DAY_SECONDS)
    week_phase = 2.0 * math.pi * ((timestamp % (7 * DAY_SECONDS)) / (7 * DAY_SECONDS))
    daily = 1.0 + 0.35 * math.sin(day_phase - 0.8)
    weekly = 1.0 + 0.15 * math.sin(week_phase)
    return max(0.25, daily * weekly)


def growth_factor(timestamp: TimeLike,
                  doubling_period: float = 420 * DAY_SECONDS) -> TimeLike:
    """Exponential demand growth over the study window (starts at 1.0)."""
    if isinstance(timestamp, np.ndarray):
        return np.exp2(np.maximum(timestamp, 0.0) / doubling_period)
    return 2.0 ** (max(timestamp, 0.0) / doubling_period)


@dataclass
class ExternalLoadModel:
    """Stationary backlog/pending-jobs model for one machine."""

    backend: Backend
    #: mean pending jobs on a *reference* public 5-qubit machine at t=0
    reference_pending_jobs: float = 30.0
    #: mean service seconds of an external job (used to convert jobs <-> work)
    mean_external_job_seconds: float = 150.0
    #: lognormal sigma of the instantaneous backlog around its mean
    backlog_sigma: float = 0.95
    #: multiplier applied to the backlog experienced by privileged submissions
    privileged_discount: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.reference_pending_jobs <= 0:
            raise CloudError("reference_pending_jobs must be positive")
        if self.mean_external_job_seconds <= 0:
            raise CloudError("mean_external_job_seconds must be positive")
        self._rng = RandomSource(self.seed, name=f"load/{self.backend.name}")
        weight = float(self.backend.metadata.get("demand_weight", 1.0))
        access_boost = 1.0 if self.backend.is_public else 0.28
        if self.backend.is_simulator:
            access_boost = 0.02
        size_penalty = 1.0 + 0.004 * self.backend.num_qubits
        # Scenario hook: a regime shift multiplies the machine's external
        # demand (2x backlog_scale => the rest of the world queues twice the
        # work on this machine).  Neutral (absent or 1.0) leaves the
        # baseline model bit-identical.
        regime_scale = float(self.backend.metadata.get("backlog_scale", 1.0))
        if regime_scale <= 0:
            raise CloudError("backlog_scale must be positive")
        self._base_pending = (
            self.reference_pending_jobs * weight * access_boost / size_penalty
            * regime_scale
        )
        # Hot-path constants: the lognormal mean-compensation factors
        # exp(-sigma^2/2) are pure functions of the sigmas, so paying
        # math.exp on every sample would recompute the same two values
        # millions of times per study.  (math.exp is deterministic, so the
        # precomputed values are bit-identical to the inline calls.)
        pending_sigma = self.backlog_sigma * 0.6
        self._pending_compensation = math.exp(-pending_sigma ** 2 / 2)
        self._backlog_compensation = math.exp(-self.backlog_sigma ** 2 / 2)
        if self.backend.is_simulator:
            self._idle_p = 0.6
        elif not self.backend.is_public:
            self._idle_p = 0.10
        else:
            # Busier public machines are rarely idle.
            self._idle_p = max(0.02, 0.15 / (1.0 + self._base_pending / 30.0))

    # -- pending jobs (Fig. 9) -------------------------------------------------------

    def mean_pending_jobs(self, timestamp: TimeLike) -> TimeLike:
        """Expected pending-job count at a point in time.

        Vectorised: an ndarray of timestamps yields an ndarray of expected
        counts (one model evaluation for a whole sampling window).
        """
        if isinstance(timestamp, np.ndarray):
            return np.maximum(
                0.2,
                self._base_pending * diurnal_factor(timestamp)
                * growth_factor(timestamp),
            )
        return max(
            0.2,
            self._base_pending * diurnal_factor(timestamp) * growth_factor(timestamp),
        )

    def sample_pending_jobs(self, timestamp: float,
                            rng: Optional[DrawSource] = None) -> int:
        """Sample an instantaneous pending-job count."""
        rng = rng or self._rng
        mean = self.mean_pending_jobs(timestamp)
        sigma = self.backlog_sigma * 0.6
        sampled = mean * math.exp(rng.normal(0.0, sigma)) \
            * self._pending_compensation
        return max(0, int(round(sampled)))

    # -- backlog seconds (queue wait contribution) -------------------------------------

    def sample_backlog_seconds(
        self,
        timestamp: float,
        access: AccessLevel = AccessLevel.PUBLIC,
        rng: Optional[DrawSource] = None,
    ) -> float:
        """Sample the external work (seconds) ahead of a new submission."""
        rng = rng or self._rng
        mean_jobs = self.mean_pending_jobs(timestamp)
        mean_backlog = mean_jobs * self.mean_external_job_seconds
        sigma = self.backlog_sigma
        backlog = mean_backlog * math.exp(rng.normal(0.0, sigma)) \
            * self._backlog_compensation
        if access is AccessLevel.PRIVILEGED or not self.backend.is_public:
            backlog *= self.privileged_discount
        # A fraction of submissions hit an idle machine (sub-minute waits).
        if rng.random() < self._idle_p:
            backlog = rng.uniform(0.0, MINUTE_SECONDS)
        return max(0.0, backlog)

    def _idle_probability(self) -> float:
        """Probability a submission finds the machine (nearly) idle."""
        return self._idle_p
