"""A minimal discrete-event simulation engine.

The cloud service schedules job state transitions (validation complete, run
start, run end) as events on a single global clock.  The engine is a plain
priority queue with deterministic tie-breaking by insertion order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.exceptions import CloudError


@dataclass(order=True)
class Event:
    """A scheduled callback."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """Time-ordered event queue with a monotonically advancing clock."""

    def __init__(self, start_time: float = 0.0):
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._now = float(start_time)

    @property
    def now(self) -> float:
        return self._now

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(self, time: float, callback: Callable[[], None],
                 label: str = "") -> Event:
        """Schedule ``callback`` at absolute ``time`` (>= current clock)."""
        if time < self._now - 1e-9:
            raise CloudError(
                f"cannot schedule an event at {time} before the current "
                f"clock {self._now}"
            )
        event = Event(time=max(time, self._now), sequence=next(self._counter),
                      callback=callback, label=label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, delay: float, callback: Callable[[], None],
                       label: str = "") -> Event:
        if delay < 0:
            raise CloudError("delay must be non-negative")
        return self.schedule(self._now + delay, callback, label)

    def step(self) -> Optional[Event]:
        """Run the next pending event; returns it (or None when empty)."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            return event
        return None

    def run_until(self, time: float) -> int:
        """Run events up to and including ``time``; returns how many ran."""
        executed = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > time:
                break
            self.step()
            executed += 1
        self._now = max(self._now, time)
        return executed

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely; returns how many events ran."""
        executed = 0
        while self.step() is not None:
            executed += 1
            if executed > max_events:
                raise CloudError("event budget exceeded; possible scheduling loop")
        return executed
