"""A minimal discrete-event simulation engine.

The cloud service schedules job state transitions (validation complete, run
start, run end) as events on a single global clock.  Two event stores back
the same :class:`EventQueue` surface:

* a binary heap — the general-purpose default, and
* a **calendar queue** (bucketed by time, Brown '88) for the common
  homogeneous-horizon case: when pending events cluster within a known lead
  time (machine backlogs and run times span minutes to a few days),
  scheduling is an O(1) append into the bucket of the event's "day" and
  popping scans forward from the current day, instead of paying the heap's
  log-N sift on every operation.

Both stores pop in the identical total order — ``(time, sequence)`` with
deterministic tie-breaking by insertion order — so the engine's behaviour is
byte-identical whichever store backs it (tested).

The queue keeps a live count of pending (non-cancelled) events, so
``len(queue)`` is O(1), and compacts the store whenever cancelled entries
outnumber live ones, so cancel-heavy runs cannot grow the store unboundedly.
"""

from __future__ import annotations

import heapq
import itertools
from bisect import insort
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.exceptions import CloudError

#: Lazily bound cumulative event counter — one registry lookup ever, so
#: the per-batch ``inc`` on the hot run loop stays a single locked add.
_EVENTS_COUNTER_CACHE = None


def _events_counter():
    global _EVENTS_COUNTER_CACHE
    if _EVENTS_COUNTER_CACHE is None:
        from repro.telemetry import get_registry
        _EVENTS_COUNTER_CACHE = get_registry().counter(
            "repro_sim_events_total",
            help="Discrete events executed by the event-loop engine.")
    return _EVENTS_COUNTER_CACHE


@dataclass(order=True)
class Event:
    """A scheduled callback."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: the queue that owns this event, so cancellation can keep the queue's
    #: live-event counter exact without an O(heap) recount
    owner: Optional["EventQueue"] = field(default=None, compare=False,
                                          repr=False)

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._note_cancelled()


class _HeapStore:
    """The classic binary-heap event store."""

    def __init__(self):
        self._heap: List[Event] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)

    def peek_min(self) -> Optional[Event]:
        return self._heap[0] if self._heap else None

    def pop_min(self) -> Optional[Event]:
        return heapq.heappop(self._heap) if self._heap else None

    def compact(self) -> int:
        """Drop cancelled entries; returns how many were removed."""
        kept = [event for event in self._heap if not event.cancelled]
        removed = len(self._heap) - len(kept)
        heapq.heapify(kept)
        self._heap = kept
        return removed


class CalendarQueue:
    """A bucketed (calendar) event store for homogeneous event horizons.

    Time is divided into "days" of ``bucket_seconds``; each day maps onto
    one of ``num_buckets`` sorted buckets (days wrap around the calendar in
    laps).  An event of the current day is always the global minimum,
    because any event of a later day is strictly later in time, so popping
    drains the current day's bucket in sorted order and then advances.  When
    the calendar is sparse (a whole lap holds nothing eligible) the scan
    jumps straight to the earliest pending event.

    The bucket count doubles when occupancy exceeds two events per bucket,
    keeping buckets short as the population grows.
    """

    def __init__(self, bucket_seconds: float, start_time: float = 0.0,
                 num_buckets: int = 64):
        if bucket_seconds <= 0:
            raise CloudError("bucket_seconds must be positive")
        if num_buckets < 1:
            raise CloudError("num_buckets must be at least 1")
        self._width = float(bucket_seconds)
        self._buckets: List[List[Event]] = [[] for _ in range(num_buckets)]
        self._size = 0
        self._day = int(start_time // self._width)

    def __len__(self) -> int:
        return self._size

    def push(self, event: Event) -> None:
        day = int(event.time // self._width)
        if day < self._day:
            # The scan position had advanced past a lull; fall back so the
            # earlier event is seen before anything later.
            self._day = day
        insort(self._buckets[day % len(self._buckets)], event)
        self._size += 1
        if self._size > 2 * len(self._buckets):
            self._rebuild(2 * len(self._buckets))

    def _rebuild(self, num_buckets: int) -> None:
        events = [event for bucket in self._buckets for event in bucket]
        self._buckets = [[] for _ in range(num_buckets)]
        for event in events:
            insort(self._buckets[int(event.time // self._width)
                                 % num_buckets], event)

    def peek_min(self) -> Optional[Event]:
        if self._size == 0:
            return None
        count = len(self._buckets)
        width = self._width
        day = self._day
        for _ in range(count):
            bucket = self._buckets[day % count]
            # The bucket is sorted, so its head is its earliest event; it is
            # eligible only if it belongs to this day (not a later lap).
            if bucket and int(bucket[0].time // width) == day:
                self._day = day
                return bucket[0]
            day += 1
        # Sparse calendar: nothing within one lap — jump to the minimum.
        head = min(bucket[0] for bucket in self._buckets if bucket)
        self._day = int(head.time // width)
        return head

    def pop_min(self) -> Optional[Event]:
        head = self.peek_min()
        if head is None:
            return None
        bucket = self._buckets[int(head.time // self._width)
                               % len(self._buckets)]
        bucket.pop(0)
        self._size -= 1
        return head

    def compact(self) -> int:
        """Drop cancelled entries; returns how many were removed."""
        removed = 0
        for bucket in self._buckets:
            kept = [event for event in bucket if not event.cancelled]
            removed += len(bucket) - len(kept)
            bucket[:] = kept
        self._size -= removed
        return removed


class EventQueue:
    """Time-ordered event queue with a monotonically advancing clock.

    Pass ``bucket_seconds`` to back the queue with a :class:`CalendarQueue`
    sized for that event horizon; without it the queue uses a binary heap.
    Pop order — and therefore simulation behaviour — is identical either
    way.
    """

    def __init__(self, start_time: float = 0.0,
                 bucket_seconds: Optional[float] = None):
        self._store = (CalendarQueue(bucket_seconds, start_time)
                       if bucket_seconds is not None else _HeapStore())
        self._counter = itertools.count()
        self._now = float(start_time)
        #: live (non-cancelled) events in the store — maintained on
        #: schedule/cancel/pop so ``len`` never walks the store
        self._pending = 0
        #: cancelled events still occupying store slots
        self._cancelled = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        """Live scheduled events (O(1) — a counter, not a store walk)."""
        return self._pending

    def __len__(self) -> int:
        return self._pending

    def _note_cancelled(self) -> None:
        """Event.cancel() hook: move one event from live to cancelled."""
        self._pending -= 1
        self._cancelled += 1
        # Compact once cancelled entries exceed half the store, so
        # cancel-heavy runs cannot grow it unboundedly.
        if self._cancelled > self._pending:
            self._cancelled -= self._store.compact()

    def schedule(self, time: float, callback: Callable[[], None],
                 label: str = "") -> Event:
        """Schedule ``callback`` at absolute ``time`` (>= current clock)."""
        if time < self._now - 1e-9:
            raise CloudError(
                f"cannot schedule an event at {time} before the current "
                f"clock {self._now}"
            )
        event = Event(time=max(time, self._now), sequence=next(self._counter),
                      callback=callback, label=label, owner=self)
        self._store.push(event)
        self._pending += 1
        return event

    def schedule_after(self, delay: float, callback: Callable[[], None],
                       label: str = "") -> Event:
        if delay < 0:
            raise CloudError("delay must be non-negative")
        return self.schedule(self._now + delay, callback, label)

    def _peek_live(self) -> Optional[Event]:
        """The earliest live event, skimming cancelled entries off the top."""
        while True:
            head = self._store.peek_min()
            if head is None:
                return None
            if head.cancelled:
                self._store.pop_min()
                self._cancelled -= 1
                continue
            return head

    def step(self) -> Optional[Event]:
        """Run the next pending event; returns it (or None when empty)."""
        event = self._peek_live()
        if event is None:
            return None
        self._store.pop_min()
        self._pending -= 1
        # A popped event no longer occupies a store slot; cancelling it
        # later (harmless in itself) must not touch the counters.
        event.owner = None
        self._now = event.time
        event.callback()
        return event

    def run_until(self, time: float) -> int:
        """Run events up to and including ``time``; returns how many ran."""
        executed = 0
        while True:
            head = self._peek_live()
            if head is None or head.time > time:
                break
            self.step()
            executed += 1
        self._now = max(self._now, time)
        if executed:
            _events_counter().inc(executed)
        return executed

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely; returns how many events ran."""
        executed = 0
        while self.step() is not None:
            executed += 1
            if executed > max_events:
                raise CloudError("event budget exceeded; possible scheduling loop")
        if executed:
            _events_counter().inc(executed)
        return executed
