"""Quantum-cloud simulator: jobs, queues, execution and calibration cycles.

This package is the substrate standing in for the IBM Quantum cloud whose
telemetry the paper analyses.  It models:

* the job lifecycle (submit → queue → run → DONE/ERROR/CANCELLED),
* per-machine queues with fair-share ordering and an external-load model
  that reproduces the pending-job counts and queue-time distributions of
  Figures 3, 9, 10 and 11,
* an execution-time model in which machine overheads dominate and run time
  grows with batch size and shots (Figures 13-16),
* daily calibration cycles and the compile-vs-run calibration crossover of
  Fig. 12.
"""

from repro.cloud.events import Event, EventQueue
from repro.cloud.job import (
    CircuitBatch,
    CircuitSpec,
    Job,
    JobResult,
    circuit_spec_from_circuit,
)
from repro.cloud.execution_model import ExecutionTimeModel
from repro.cloud.backlog import ExternalLoadModel, diurnal_factor
from repro.cloud.queues import FairShareQueue, FifoQueue, QueuedEntry
from repro.cloud.calibration_cycle import CalibrationCrossoverDetector
from repro.cloud.dashboard import CloudDashboard, MachineStatus
from repro.cloud.provider import Provider, DEFAULT_PROVIDERS
from repro.cloud.service import QuantumCloudService

__all__ = [
    "Event",
    "EventQueue",
    "CircuitBatch",
    "CircuitSpec",
    "Job",
    "JobResult",
    "circuit_spec_from_circuit",
    "ExecutionTimeModel",
    "ExternalLoadModel",
    "diurnal_factor",
    "FairShareQueue",
    "FifoQueue",
    "QueuedEntry",
    "CalibrationCrossoverDetector",
    "CloudDashboard",
    "MachineStatus",
    "Provider",
    "DEFAULT_PROVIDERS",
    "QuantumCloudService",
]
