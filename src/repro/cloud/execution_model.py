"""Execution-time model.

Section VI of the paper finds that NISQ-era job run times are dominated by
*machine overheads* rather than circuit contents: run time grows nearly
linearly with batch size, sub-linearly with shots, and only weakly with
depth/width.  The model here encodes exactly that structure:

``run = base_overhead(machine)
       + sum over circuits [ per_circuit_overhead(machine, width)
                             + shots^alpha * per_shot(machine) * duty(depth) ]``

with ``alpha < 1`` (shots are executed back-to-back with very little
per-shot control overhead) and a mild dependence of the per-circuit cost on
width/depth.  A multiplicative lognormal jitter models run-to-run variation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.cloud.job import CircuitBatch, Job
from repro.core.exceptions import CloudError
from repro.core.rng import BufferedDraws, RandomSource
from repro.devices.backend import Backend

#: A scalar draw source for the jitter: a full random stream or pre-drawn
#: block-buffered draws (the simulation hot path uses the latter).
DrawSource = Union[RandomSource, BufferedDraws]


@dataclass(frozen=True)
class ExecutionTimeBreakdown:
    """Decomposition of a predicted/simulated job run time (seconds)."""

    base_overhead: float
    circuit_overhead: float
    shot_time: float
    jitter_factor: float

    @property
    def total(self) -> float:
        return (self.base_overhead + self.circuit_overhead + self.shot_time) \
            * self.jitter_factor


class ExecutionTimeModel:
    """Simulates (or deterministically estimates) job execution times."""

    def __init__(self, shots_exponent: float = 0.88,
                 depth_reference: float = 60.0,
                 jitter_sigma: float = 0.12):
        if not 0 < shots_exponent <= 1:
            raise CloudError("shots_exponent must be in (0, 1]")
        if depth_reference <= 0:
            raise CloudError("depth_reference must be positive")
        self.shots_exponent = shots_exponent
        self.depth_reference = depth_reference
        self.jitter_sigma = jitter_sigma

    # -- deterministic expectation ---------------------------------------------------

    def expected_breakdown(self, job: Job, backend: Backend) -> ExecutionTimeBreakdown:
        """Expected run-time breakdown without random jitter."""
        base = backend.base_overhead_seconds
        circuit_overhead = 0.0
        shot_time = 0.0
        shots_factor = job.shots ** self.shots_exponent
        circuits = job.circuits
        if isinstance(circuits, CircuitBatch):
            width_factors = 1.0 + 0.004 * circuits.width_column()
            depth_factors = 1.0 + 0.3 * (circuits.depth_column()
                                         / self.depth_reference)
            overhead_terms = backend.per_circuit_overhead_seconds * width_factors
            shot_terms = (shots_factor * backend.per_shot_seconds) * depth_factors
            # cumsum reproduces the sequential left-to-right addition of the
            # spec loop bit for bit (np.sum's pairwise reduction would not),
            # keeping simulated run times identical to the row-at-a-time path.
            circuit_overhead = float(np.cumsum(overhead_terms)[-1])
            shot_time = float(np.cumsum(shot_terms)[-1])
        else:
            for spec in circuits:
                width_factor = 1.0 + 0.004 * spec.width
                depth_factor = 1.0 + 0.3 * (spec.depth / self.depth_reference)
                circuit_overhead += backend.per_circuit_overhead_seconds \
                    * width_factor
                shot_time += shots_factor * backend.per_shot_seconds \
                    * depth_factor
        return ExecutionTimeBreakdown(
            base_overhead=base,
            circuit_overhead=circuit_overhead,
            shot_time=shot_time,
            jitter_factor=1.0,
        )

    def expected_seconds(self, job: Job, backend: Backend) -> float:
        return self.expected_breakdown(job, backend).total

    # -- stochastic simulation -------------------------------------------------------

    def simulate_seconds(self, job: Job, backend: Backend,
                         rng: Optional[DrawSource] = None) -> float:
        """Run time with run-to-run jitter applied."""
        breakdown = self.expected_breakdown(job, backend)
        if rng is None or self.jitter_sigma == 0:
            return breakdown.total
        jitter = rng.lognormal(0.0, self.jitter_sigma)
        return ExecutionTimeBreakdown(
            base_overhead=breakdown.base_overhead,
            circuit_overhead=breakdown.circuit_overhead,
            shot_time=breakdown.shot_time,
            jitter_factor=jitter,
        ).total

    # -- convenience -----------------------------------------------------------------

    def per_circuit_seconds(self, job: Job, backend: Backend) -> float:
        """Average execution time attributed to one circuit of the job."""
        return self.expected_seconds(job, backend) / job.batch_size
