"""The batched simulation engine: vectorised epochs, byte-identical traces.

:class:`~repro.cloud.service.QuantumCloudService` drives every job state
transition through one Python callback per event — an :class:`Event`
allocation, a closure, a store push and pop, a per-job NumPy execution
breakdown and several layers of model method calls, tens of microseconds
per job.  This module replays the *identical* per-machine state machine
without any of that machinery:

* **Pre-drawn RNG blocks.**  Every stochastic draw on the simulation path —
  backlog lognormal factors and idle coin-flips, failure coin-flips, cancel
  delays, execution jitter, error fractions — comes from the same four
  child streams the event loop's :class:`~repro.core.rng.BufferedDraws`
  consume (``machine_rng.child("backlog"/"dispatch").child("normal"/
  "uniform")``).  numpy generators produce the same underlying value
  sequence for any request chunking, so the replay can draw its own blocks
  of any ``block_size`` and still see bit-identical values.
* **Vectorised duration epochs.**  The deterministic part of every job's
  run time — the cumulative per-circuit overhead and shot-time sums of
  :class:`~repro.cloud.execution_model.ExecutionTimeModel` — is computed
  for a machine's whole job block in one padded-matrix ``np.cumsum`` pass
  up front (sequential per row, hence bit-identical to the scalar loop),
  instead of one NumPy round-trip per dispatched job.  The dispatch epoch
  then only applies the jitter factor to the pre-summed totals.
* **An inlined replay loop.**  Per-machine dynamics are independent of the
  rest of the fleet (each machine draws from its own spawned streams), so
  each machine is replayed on its own tiny ``(time, seq, kind, job)``
  tuple heap — no global store, no Event objects, no closures — with the
  backlog-model arithmetic and the fair-share pop inlined as straight-line
  scalar math (the exact operation sequence of the model methods; see the
  invariant notes in :func:`simulate_machine`).

The contract is *byte-identical traces*: for every scenario perturbation
and any worker/shard count, a study simulated through this engine produces
the same ``.npz`` bytes as the event-loop engine
(``tests/test_fastsim_golden.py`` enforces it).

The event loop remains the golden reference — and the only engine usable
for *live* interaction (e.g. :class:`~repro.workloads.generator.
TraceGenerator`'s queue-sensitive users, which probe the service's pending
estimate mid-stream); this engine requires the full submission list up
front.
"""

from __future__ import annotations

import math
from collections import deque
from heapq import heappop, heappush
from operator import attrgetter
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cloud.backlog import ExternalLoadModel
from repro.cloud.execution_model import ExecutionTimeModel
from repro.cloud.job import CircuitBatch, Job
from repro.cloud.provider import DEFAULT_PROVIDERS, Provider
from repro.cloud.service import FailureModel
from repro.core.exceptions import CloudError, DeviceError
from repro.telemetry import get_registry, get_tracer
from repro.core.rng import RandomSource
from repro.core.types import AccessLevel, JobStatus
from repro.core.units import DAY_SECONDS, MINUTE_SECONDS
from repro.devices.backend import Backend

__all__ = ["expected_totals", "simulate_fleet", "simulate_machine"]

#: Event kinds of the per-machine replay heap.  Tuples compare as
#: ``(time, seq, ...)`` and ``seq`` is unique, so kinds never compare —
#: they exist purely to dispatch the handler.
#: Start and cancel transitions are applied inline at dispatch time (their
#: fields are unobservable until the finish handler / end of the replay),
#: so only dispatch and finish events ever reach the heap.
_DISPATCH = 0
_FINISH_DONE = 2
_FINISH_ERROR = 3


def expected_totals(jobs: Sequence[Job], backend: Backend,
                    model: ExecutionTimeModel) -> np.ndarray:
    """Deterministic run-time totals for a machine's whole job block.

    One padded-matrix pass over every :class:`CircuitBatch` job replaces
    the per-dispatch ``expected_breakdown`` calls of the event loop.  Each
    row's ``np.cumsum`` reproduces the sequential left-to-right addition of
    the scalar path bit for bit (trailing zero padding is exact:
    ``s + 0.0 == s`` for the non-negative terms), and the final
    ``(base + circuit_overhead) + shot_time`` keeps the association order
    of :class:`ExecutionTimeBreakdown.total`.
    """
    totals = np.empty(len(jobs), dtype=np.float64)
    base = backend.base_overhead_seconds
    per_circuit = backend.per_circuit_overhead_seconds
    per_shot = backend.per_shot_seconds
    rows: List[int] = []
    for index, job in enumerate(jobs):
        if isinstance(job.circuits, CircuitBatch):
            rows.append(index)
        else:
            # Spec-list jobs (rare outside the synthesiser) keep the
            # scalar reference path.
            totals[index] = model.expected_breakdown(job, backend).total
    if not rows:
        return totals
    rows_arr = np.asarray(rows)
    batches = [jobs[i].circuits for i in rows]
    sizes = np.array([batch.batch_size for batch in batches])
    base_w = np.array([float(b.base[0]) for b in batches])
    base_d = np.array([float(b.base[1]) for b in batches])
    # Python-float power and product per job, exactly like the scalar
    # ``job.shots ** alpha`` path (np.power may differ in the last ulp).
    shot_scale = np.array([(jobs[i].shots ** model.shots_exponent) * per_shot
                           for i in rows])
    # A batch is one base metric row repeated batch_size times with the
    # first num_variants rows overridden, so within a row every term past
    # the variants is the *same* float.  The per-circuit terms are
    # therefore computed on small vectors first — one base term per job,
    # one term per variant circuit — and only then broadcast into the
    # padded matrices.  Every op keeps the reference's IEEE sequence
    # (multiplications reordered only across exact commutations).
    base_overhead_term = base_w * 0.004
    base_overhead_term += 1.0
    base_overhead_term *= per_circuit
    base_shot_term = base_d / model.depth_reference
    base_shot_term *= 0.3
    base_shot_term += 1.0
    base_shot_term *= shot_scale
    # Batch sizes range from one circuit to several hundred, so padding
    # every row to the global maximum would multiply the element count
    # severalfold.  Rows are processed in size-sorted chunks instead, each
    # padded only to its own maximum, with a chunk boundary wherever the
    # size grows past 1.5x the chunk's smallest (padding stays bounded on
    # long-tailed mixes) and a row cap that bounds the buffers.
    order = np.argsort(sizes, kind="stable")
    sizes_sorted = sizes[order].tolist()
    row_cap = 512
    starts = [0]
    threshold = sizes_sorted[0] * 3 // 2 + 8
    start = 0
    for i in range(1, len(sizes_sorted)):
        if sizes_sorted[i] > threshold or i - start >= row_cap:
            starts.append(i)
            start = i
            threshold = sizes_sorted[i] * 3 // 2 + 8
    starts.append(len(sizes_sorted))
    # The variant terms are computed once on the flat concatenation (in
    # sorted-row order) and sliced per chunk.
    ordered_variants = [batches[i].variants for i in order]
    counts_all = np.array([v.shape[0] for v in ordered_variants])
    flat = np.concatenate(ordered_variants)
    bounds = np.concatenate(([0], np.cumsum(counts_all)))
    variant_scale = np.repeat(shot_scale[order], counts_all)
    flat_overhead = flat[:, 0] * 0.004
    flat_overhead += 1.0
    flat_overhead *= per_circuit
    flat_shot = flat[:, 1] / model.depth_reference
    flat_shot *= 0.3
    flat_shot += 1.0
    flat_shot *= variant_scale
    # One buffer per matrix, allocated for the widest chunk and sliced —
    # the loop itself allocates nothing matrix-sized.
    max_width = sizes_sorted[-1]
    max_rows = max(hi - lo for lo, hi in zip(starts, starts[1:]))
    valid_buf = np.empty((max_rows, max_width), dtype=bool)
    width_buf = np.empty((max_rows, max_width))
    depth_buf = np.empty((max_rows, max_width))
    for lo, hi in zip(starts, starts[1:]):
        pick = order[lo:hi]
        rows_n = hi - lo
        sub_sizes = sizes[pick]
        width = sizes_sorted[hi - 1]
        counts = counts_all[lo:hi]
        row_idx = np.repeat(np.arange(rows_n), counts)
        ends = np.cumsum(counts)
        col_idx = np.arange(int(ends[-1])) - np.repeat(ends - counts, counts)
        # ``valid * term`` builds each padded matrix in one pass straight
        # into the reused buffer: ``True * t == t`` and ``False * t ==
        # +0.0`` exactly (the terms are positive finite floats), and the
        # trailing zero padding is exact under the row cumsum
        # (``s + 0.0 == s``).  A fancy-indexed scatter then overrides the
        # variant cells and the in-place row cumsum reproduces the
        # sequential left-to-right addition bit for bit.
        valid = valid_buf[:rows_n, :width]
        np.greater.outer(sub_sizes, np.arange(width), out=valid)
        widths = width_buf[:rows_n, :width]
        np.multiply(valid, base_overhead_term[pick][:, None], out=widths)
        widths[row_idx, col_idx] = flat_overhead[bounds[lo]:bounds[hi]]
        np.cumsum(widths, axis=1, out=widths)
        depths = depth_buf[:rows_n, :width]
        np.multiply(valid, base_shot_term[pick][:, None], out=depths)
        depths[row_idx, col_idx] = flat_shot[bounds[lo]:bounds[hi]]
        np.cumsum(depths, axis=1, out=depths)
        totals[rows_arr[pick]] = (base + widths[:, -1]) + depths[:, -1]
    return totals


def _validate(job: Job, backend: Backend, providers: Dict[str, Provider],
              start_time: float) -> None:
    """The submission checks of ``QuantumCloudService.submit``."""
    provider = providers.get(job.provider)
    if provider is None:
        raise CloudError(f"unknown provider {job.provider!r}")
    if not backend.is_public and not provider.can_use_privileged:
        raise CloudError(
            f"provider {provider.name!r} cannot access privileged machine "
            f"{backend.name!r}"
        )
    try:
        backend.validate_job_shape(job.batch_size, job.shots)
    except DeviceError as exc:
        raise CloudError(str(exc)) from exc
    if job.submit_time < start_time - 1e-9:
        raise CloudError(
            f"job submitted at {job.submit_time} which is in the past "
            f"(clock is at {start_time})"
        )


def _validate_all(jobs: Sequence[Job], backend: Backend,
                  providers: Dict[str, Provider], start_time: float) -> None:
    """Screen every submission check in bulk; raise like the first submit.

    The happy path is a handful of vectorised comparisons; only when a
    check fails does the per-job reference path rerun to raise the exact
    error the event engine's first failing ``submit`` would raise
    (``jobs`` is in submission order, so the first offender here is the
    first offender there).
    """
    privileged_blocked = not backend.is_public and any(
        not p.can_use_privileged for p in providers.values())
    seen = set()
    for job in jobs:
        name = job.provider
        if name not in seen:
            if name not in providers or (
                    privileged_blocked
                    and not providers[name].can_use_privileged):
                break
            seen.add(name)
    else:
        batch_sizes = np.array([len(job.circuits) for job in jobs])
        shots = np.array([job.shots for job in jobs])
        shape_ok = (
            bool(batch_sizes.size == 0)
            or (int(batch_sizes.min()) >= 1
                and int(batch_sizes.max()) <= backend.max_batch_size
                and int(shots.min()) >= 1
                and int(shots.max()) <= backend.max_shots)
        )
        # jobs are sorted by submit time, so only the head can be early.
        if shape_ok and (not jobs
                         or jobs[0].submit_time >= start_time - 1e-9):
            return
    for job in jobs:
        _validate(job, backend, providers, start_time)


def simulate_machine(
    backend: Backend,
    jobs: Sequence[Job],
    machine_rng: RandomSource,
    load_seed: int,
    *,
    providers: Optional[Dict[str, Provider]] = None,
    execution_model: Optional[ExecutionTimeModel] = None,
    failure_model: Optional[FailureModel] = None,
    start_time: float = 0.0,
    block_size: int = 1024,
) -> None:
    """Replay one machine's event loop over pre-sorted ``jobs`` in place.

    ``jobs`` must be sorted by ``(submit_time, job_id)`` — the submission
    order of the event-loop engine.  Every job ends in the same terminal
    state (status, start/end times, pending_ahead) the event loop would
    give it; the draws are consumed from the identical child streams in
    the identical order.

    The loop body inlines the scalar arithmetic of
    :meth:`ExternalLoadModel.sample_pending_jobs` /
    :meth:`~ExternalLoadModel.sample_backlog_seconds`, the jitter factor
    of :meth:`ExecutionTimeModel.simulate_seconds` and the
    :class:`~repro.cloud.queues.FairShareQueue` pop.  Bit-exactness rests
    on three invariants, each exercised by the golden tests:

    * every inlined expression keeps the reference operation sequence
      (same ``math`` calls, same left-to-right association, precomputed
      constants only where the reference computes the same constant);
    * numpy generators are chunking-invariant, so drawing local blocks of
      any size yields the values ``BufferedDraws`` would serve;
    * fair-share entries of one provider are pushed in nondecreasing
      ``(sort_key, sequence)`` order (submissions are processed in time
      order), so the reference ``min`` over a provider's entries is its
      head and a deque ``popleft`` pops the identical job.
    """
    providers = dict(providers or DEFAULT_PROVIDERS)
    execution_model = execution_model or ExecutionTimeModel()
    failure_model = failure_model or FailureModel()
    _validate_all(jobs, backend, providers, start_time)

    # -- per-machine constants (identical values to the reference models) --
    load = ExternalLoadModel(backend=backend, seed=load_seed)
    base_pending = load._base_pending
    pending_sigma = load.backlog_sigma * 0.6
    backlog_sigma = load.backlog_sigma
    pending_comp = load._pending_compensation
    backlog_comp = load._backlog_compensation
    idle_p = load._idle_p
    mean_job_seconds = load.mean_external_job_seconds
    discount = load.privileged_discount
    # A submission sees the discounted backlog when it is privileged or the
    # machine is not public — resolved per provider up front.
    discounted_of = {
        name: provider.access is AccessLevel.PRIVILEGED or not backend.is_public
        for name, provider in providers.items()
    }
    two_pi = 2.0 * math.pi
    week_seconds = 7 * DAY_SECONDS
    doubling = 420 * DAY_SECONDS
    idle_span = MINUTE_SECONDS - 0.0
    cancel_span = 3600.0 - 30.0
    error_span = 0.9 - 0.1
    sin = math.sin
    exp = math.exp

    jitter_sigma = execution_model.jitter_sigma
    cancel_p = failure_model.cancel_probability
    failure_p = cancel_p + failure_model.error_probability
    totals = expected_totals(jobs, backend, execution_model)
    total_of = {id(job): total
                for job, total in zip(jobs, totals.tolist())}

    # -- fair-share queue state (push order == sorted order per provider) --
    # One flat row per provider, in the reference's sorted scan order, so
    # the per-dispatch fair-share scan touches no dicts: [name, deque,
    # share, consumed_seconds, discounted].
    provider_rows = [
        [name, deque(), providers[name].fair_share, 0.0, discounted_of[name]]
        for name in sorted(providers)
    ]
    row_of = {row[0]: row for row in provider_rows}
    queue_size = 0

    # -- local draw blocks (chunking-invariant == BufferedDraws values) --
    backlog_source = machine_rng.child("backlog")
    dispatch_source = machine_rng.child("dispatch")
    bn_gen = backlog_source.child("normal").generator
    bu_gen = backlog_source.child("uniform").generator
    dn_gen = dispatch_source.child("normal").generator
    du_gen = dispatch_source.child("uniform").generator
    bn: List[float] = []
    bu: List[float] = []
    dn: List[float] = []
    du: List[float] = []
    bn_i = bu_i = dn_i = du_i = 0

    queued = JobStatus.QUEUED
    running = JobStatus.RUNNING
    cancelled = JobStatus.CANCELLED
    done = JobStatus.DONE
    error = JobStatus.ERROR

    heap: List[tuple] = []
    seq = 0
    busy_until = 0.0
    mean_jobs = 0.0
    mean_jobs_at = None  # timestamp the cached mean_jobs was computed at
    submit_index = 0
    total_jobs = len(jobs)
    next_submit = jobs[0].submit_time if jobs else 0.0

    while submit_index < total_jobs or heap:
        if heap and (submit_index >= total_jobs or heap[0][0] <= next_submit):
            # ``run_until(t)`` executes events with time <= t before the
            # submission at t, ties included — mirrored by the <= above.
            now, _, kind, job = heappop(heap)
            if kind != _DISPATCH:  # _FINISH_DONE / _FINISH_ERROR
                job.status = done if kind == _FINISH_DONE else error
                job.end_time = now
                run_seconds = now - job.start_time
                if run_seconds:
                    row_of[job.provider][3] += run_seconds
                # The chained dispatch at ``now`` would be the very next
                # pop (heap entries are >= now) unless another event
                # shares its timestamp with a smaller sequence number, so
                # the common case falls through to the dispatch code
                # below and only the tie goes through the heap.
                if heap and heap[0][0] <= now:
                    heappush(heap, (now, seq, _DISPATCH, None))
                    seq += 1
                    continue
        else:
            job = jobs[submit_index]
            submit_index += 1
            if submit_index < total_jobs:
                next_submit = jobs[submit_index].submit_time
            now = job.submit_time
            job.status = queued
            job.queue_enter_time = now
            # sample_pending_jobs(now, rng=backlog_draws):
            day_phase = two_pi * ((now % DAY_SECONDS) / DAY_SECONDS)
            week_phase = two_pi * ((now % week_seconds) / week_seconds)
            daily = 1.0 + 0.35 * sin(day_phase - 0.8)
            weekly = 1.0 + 0.15 * sin(week_phase)
            diurnal = daily * weekly
            if diurnal < 0.25:
                diurnal = 0.25
            growth = 2.0 ** ((now if now > 0.0 else 0.0) / doubling)
            mean_jobs = base_pending * diurnal * growth
            if mean_jobs < 0.2:
                mean_jobs = 0.2
            mean_jobs_at = now
            if bn_i == len(bn):
                bn = bn_gen.standard_normal(block_size).tolist()
                bn_i = 0
            sampled = mean_jobs * exp(0.0 + pending_sigma * bn[bn_i]) \
                * pending_comp
            bn_i += 1
            job.pending_ahead = max(0, int(round(sampled))) + queue_size
            row_of[job.provider][1].append(job)
            queue_size += 1
            # The dispatch scheduled at the submission time would be the
            # heap minimum (the submit branch only runs when every heap
            # entry is strictly later), so it is the next pop and runs
            # inline by falling through.
        # ---- dispatch at time ``now`` (popped, post-finish or post-submit)
        if queue_size == 0:
            continue
        if busy_until > now + 1e-9:
            # Machine still busy; a dispatch is already scheduled
            # at its completion.
            continue
        best_row = None
        best_priority = 0.0
        for row in provider_rows:
            if row[1]:
                priority = row[3] / row[2]
                if best_row is None or priority < best_priority:
                    best_row = row
                    best_priority = priority
        job = best_row[1].popleft()
        queue_size -= 1
        # sample_backlog_seconds(now, access, rng=backlog_draws).
        # Conditionals replace the reference's max() calls: the
        # quantities are positive and finite, so the clamped
        # values are identical.  ``mean_jobs`` is a pure function of
        # ``now``, so the value the submit branch just computed is reused
        # when the inline dispatch runs at the same timestamp.
        if mean_jobs_at != now:
            day_phase = two_pi * ((now % DAY_SECONDS) / DAY_SECONDS)
            week_phase = two_pi * ((now % week_seconds) / week_seconds)
            daily = 1.0 + 0.35 * sin(day_phase - 0.8)
            weekly = 1.0 + 0.15 * sin(week_phase)
            diurnal = daily * weekly
            if diurnal < 0.25:
                diurnal = 0.25
            growth = 2.0 ** ((now if now > 0.0 else 0.0) / doubling)
            mean_jobs = base_pending * diurnal * growth
            if mean_jobs < 0.2:
                mean_jobs = 0.2
            mean_jobs_at = now
        if bn_i == len(bn):
            bn = bn_gen.standard_normal(block_size).tolist()
            bn_i = 0
        backlog = (mean_jobs * mean_job_seconds) \
            * exp(0.0 + backlog_sigma * bn[bn_i]) * backlog_comp
        bn_i += 1
        if best_row[4]:
            backlog *= discount
        if bu_i == len(bu):
            bu = bu_gen.random(block_size).tolist()
            bu_i = 0
        idle_draw = bu[bu_i]
        bu_i += 1
        if idle_draw < idle_p:
            if bu_i == len(bu):
                bu = bu_gen.random(block_size).tolist()
                bu_i = 0
            backlog = 0.0 + idle_span * bu[bu_i]
            bu_i += 1
        if backlog < 0.0:
            backlog = 0.0
        run_start = (now if now >= busy_until else busy_until) \
            + backlog
        # The terminal-status coin of the dispatch stream:
        if du_i == len(du):
            du = du_gen.random(block_size).tolist()
            du_i = 0
        draw = du[du_i]
        du_i += 1
        if draw < cancel_p:
            if du_i == len(du):
                du = du_gen.random(block_size).tolist()
                du_i = 0
            delay = 30.0 + cancel_span * du[du_i]
            du_i += 1
            cancel_at = now + min(backlog, delay)
            # The terminal state is fully determined here and no
            # event between now and cancel_at can observe the job
            # (it left the queue), so the cancel event is elided
            # and only the chained dispatch is scheduled.
            job.status = cancelled
            job.end_time = cancel_at
            heappush(heap, (cancel_at, seq, _DISPATCH, None))
            seq += 1
            continue
        run_seconds = total_of[id(job)]
        if jitter_sigma:
            if dn_i == len(dn):
                dn = dn_gen.standard_normal(block_size).tolist()
                dn_i = 0
            run_seconds *= exp(0.0 + jitter_sigma * dn[dn_i])
            dn_i += 1
        is_error = draw < failure_p
        if is_error:
            if du_i == len(du):
                du = du_gen.random(block_size).tolist()
                du_i = 0
            run_seconds *= 0.1 + error_span * du[du_i]
            du_i += 1
        run_end = run_start + run_seconds
        busy_until = run_end
        # The start event only records fields nothing reads until
        # the finish handler, so it is applied here instead of
        # through the heap (the finish overwrites the status).
        job.status = running
        job.start_time = run_start
        heappush(heap, (run_end, seq,
                        _FINISH_ERROR if is_error else _FINISH_DONE,
                        job))
        seq += 1


def simulate_fleet(
    fleet: Dict[str, Backend],
    jobs: Sequence[Job],
    *,
    seed: int = 0,
    providers: Optional[Dict[str, Provider]] = None,
    execution_model: Optional[ExecutionTimeModel] = None,
    failure_model: Optional[FailureModel] = None,
    start_time: float = 0.0,
    block_size: int = 1024,
) -> List[Job]:
    """Simulate ``jobs`` over ``fleet`` machine by machine, in place.

    The batched counterpart of building a
    :class:`~repro.cloud.service.QuantumCloudService`, submitting every job
    in ``(submit_time, job_id)`` order and draining it: machines are
    seeded from the same spawned streams (``RandomSource(seed,
    "cloud_service").spawn(name)`` and the ``load`` child tree), so the
    terminal job states are identical byte for byte.  Returns the jobs in
    submission order.
    """
    if not fleet:
        raise CloudError("the fleet must contain at least one machine")
    providers = dict(providers or DEFAULT_PROVIDERS)
    execution_model = execution_model or ExecutionTimeModel()
    failure_model = failure_model or FailureModel()
    service_rng = RandomSource(seed, name="cloud_service")
    load_rng = RandomSource(seed, "load")
    ordered = sorted(jobs, key=attrgetter("submit_time", "job_id"))
    by_machine: Dict[str, List[Job]] = {}
    for job in ordered:
        if job.backend_name not in fleet:
            raise CloudError(f"unknown backend {job.backend_name!r}")
        by_machine.setdefault(job.backend_name, []).append(job)
    tracer = get_tracer()
    for name, machine_jobs in by_machine.items():
        with tracer.span("sim.machine", machine=name,
                         jobs=len(machine_jobs), engine="batched"):
            simulate_machine(
                fleet[name],
                machine_jobs,
                machine_rng=service_rng.spawn(name),
                load_seed=load_rng.child(name).seed or 0,
                providers=providers,
                execution_model=execution_model,
                failure_model=failure_model,
                start_time=start_time,
                block_size=block_size,
            )
    get_registry().counter(
        "repro_sim_jobs_total", engine="batched",
        help="Jobs simulated to a terminal state, by engine.").inc(
        len(ordered))
    return ordered
