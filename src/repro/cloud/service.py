"""The cloud service façade: submission, queueing, execution, completion.

:class:`QuantumCloudService` is the simulated counterpart of the IBM Quantum
cloud.  Clients (the workload generator, the examples, the schedulers)
submit :class:`~repro.cloud.job.Job` objects; the service queues them per
machine under fair-share ordering, delays them behind the machine's external
backlog, runs them through the execution-time model, and finishes them with
a DONE / ERROR / CANCELLED status.  Completed jobs retain all the timestamps
the analysis layer needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.backlog import ExternalLoadModel
from repro.cloud.calibration_cycle import CalibrationCrossoverDetector
from repro.cloud.events import EventQueue
from repro.cloud.execution_model import ExecutionTimeModel
from repro.cloud.job import Job, JobResult
from repro.cloud.provider import DEFAULT_PROVIDERS, Provider
from repro.cloud.queues import FairShareQueue
from repro.core.exceptions import CloudError, DeviceError
from repro.core.rng import BufferedDraws, RandomSource
from repro.core.types import JobStatus
from repro.devices.backend import Backend
from repro.telemetry import get_registry, get_tracer


@dataclass
class _MachineState:
    """Mutable per-machine simulation state."""

    backend: Backend
    queue: FairShareQueue
    load_model: ExternalLoadModel
    rng: RandomSource
    #: block-buffered draws feeding the backlog sampling (the hot path of the
    #: event loop): the lognormal factors and idle checks are pre-drawn in
    #: vectorised blocks per machine instead of one scalar call per event.
    backlog_draws: BufferedDraws = None  # type: ignore[assignment]
    #: block-buffered draws feeding the dispatch path (failure coin-flips,
    #: cancel delays, execution jitter, error fractions) — every stochastic
    #: draw on the simulation path comes from a pre-drawn block stream, so
    #: the batched engine (:mod:`repro.cloud.fastsim`) can consume the very
    #: same values in the very same order.
    dispatch_draws: BufferedDraws = None  # type: ignore[assignment]
    busy_until: float = 0.0
    jobs_completed: int = 0
    busy_seconds: float = 0.0


#: Calendar-queue bucket width of the service's event store: pending events
#: land within a horizon of minutes (chained dispatches) to a few days
#: (heavy public-machine backlogs), so quarter-day buckets keep them spread
#: across the calendar without long empty-bucket scans.
EVENT_BUCKET_SECONDS = 6 * 3600.0


@dataclass(frozen=True)
class FailureModel:
    """Probabilities of the non-DONE terminal statuses (Fig. 2b)."""

    error_probability: float = 0.035
    cancel_probability: float = 0.018

    def __post_init__(self):
        total = self.error_probability + self.cancel_probability
        if not 0 <= total < 1:
            raise CloudError("failure probabilities must sum to less than 1")


class QuantumCloudService:
    """Discrete-event simulation of a quantum cloud over a machine fleet."""

    def __init__(
        self,
        fleet: Dict[str, Backend],
        providers: Optional[Dict[str, Provider]] = None,
        execution_model: Optional[ExecutionTimeModel] = None,
        failure_model: Optional[FailureModel] = None,
        seed: int = 0,
        start_time: float = 0.0,
    ):
        if not fleet:
            raise CloudError("the fleet must contain at least one machine")
        self.fleet = dict(fleet)
        self.providers = dict(providers or DEFAULT_PROVIDERS)
        self.execution_model = execution_model or ExecutionTimeModel()
        self.failure_model = failure_model or FailureModel()
        self._rng = RandomSource(seed, name="cloud_service")
        # Pending events cluster within a backlog-plus-run-time horizon of
        # minutes to a few days, the homogeneous-horizon case the calendar
        # store is built for; pop order is identical to the heap's.
        self.events = EventQueue(start_time, bucket_seconds=EVENT_BUCKET_SECONDS)
        self._machines: Dict[str, _MachineState] = {}
        for name, backend in self.fleet.items():
            shares = {p.name: p.fair_share for p in self.providers.values()}
            # Every machine draws from its own spawned stream, keyed only by
            # (service seed, machine name).  Per-machine dynamics are then
            # independent of the rest of the fleet, so a simulation sharded
            # across sub-fleet services reproduces the single-service run
            # machine for machine.
            machine_rng = self._rng.spawn(name)
            self._machines[name] = _MachineState(
                backend=backend,
                queue=FairShareQueue(shares=shares),
                load_model=ExternalLoadModel(
                    backend=backend,
                    seed=RandomSource(seed, "load").child(name).seed or 0,
                ),
                rng=machine_rng,
                backlog_draws=BufferedDraws(machine_rng.child("backlog")),
                dispatch_draws=BufferedDraws(machine_rng.child("dispatch")),
            )
        self._completed: List[Job] = []
        self.crossover_detector = CalibrationCrossoverDetector(self.fleet)

    # -- public API -----------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.events.now

    @property
    def completed_jobs(self) -> List[Job]:
        return list(self._completed)

    def machine_state(self, backend_name: str) -> _MachineState:
        try:
            return self._machines[backend_name]
        except KeyError:
            raise CloudError(f"unknown backend {backend_name!r}") from None

    def provider_for(self, name: str) -> Provider:
        try:
            return self.providers[name]
        except KeyError:
            raise CloudError(f"unknown provider {name!r}") from None

    def submit(self, job: Job) -> Job:
        """Submit a job; its lifecycle is simulated via scheduled events."""
        state = self.machine_state(job.backend_name)
        provider = self.provider_for(job.provider)
        if not state.backend.is_public and not provider.can_use_privileged:
            raise CloudError(
                f"provider {provider.name!r} cannot access privileged machine "
                f"{state.backend.name!r}"
            )
        try:
            state.backend.validate_job_shape(job.batch_size, job.shots)
        except DeviceError as exc:
            raise CloudError(str(exc)) from exc
        if job.submit_time < self.now - 1e-9:
            raise CloudError(
                f"job submitted at {job.submit_time} which is in the past "
                f"(clock is at {self.now})"
            )
        self.events.run_until(job.submit_time)
        job.mark_queued(job.submit_time)
        job.pending_ahead = (
            state.load_model.sample_pending_jobs(job.submit_time,
                                                 state.backlog_draws)
            + len(state.queue)
        )
        state.queue.push(job, job.submit_time)
        self.events.schedule(
            job.submit_time,
            lambda name=job.backend_name: self._try_dispatch(name),
            label=f"dispatch:{job.backend_name}",
        )
        return job

    def run_until(self, time: float) -> int:
        """Advance the simulation clock, executing pending events."""
        return self.events.run_until(time)

    def drain(self) -> List[Job]:
        """Run every remaining event and return all completed jobs."""
        completed_before = len(self._completed)
        with get_tracer().span("sim.drain", machines=len(self._machines),
                               engine="event"):
            self.events.run_all()
        get_registry().counter(
            "repro_sim_jobs_total", engine="event",
            help="Jobs simulated to a terminal state, by engine.").inc(
            len(self._completed) - completed_before)
        return self.completed_jobs

    def pending_jobs_estimate(self, backend_name: str, timestamp: float) -> float:
        """Expected pending-job count on a machine at ``timestamp`` (Fig. 9)."""
        state = self.machine_state(backend_name)
        return state.load_model.mean_pending_jobs(timestamp) + len(state.queue)

    def utilization_of(self, backend_name: str, horizon: Optional[float] = None) -> float:
        """Fraction of wall-clock time the machine spent running studied jobs."""
        state = self.machine_state(backend_name)
        horizon = horizon if horizon is not None else max(self.now, 1e-9)
        if horizon <= 0:
            return 0.0
        return min(1.0, state.busy_seconds / horizon)

    def result_for(self, job: Job) -> JobResult:
        """Build the client-visible result object for a completed job."""
        if not job.status.is_terminal:
            raise CloudError("job has not finished")
        return JobResult(
            job_id=job.job_id,
            backend_name=job.backend_name,
            status=job.status,
            per_circuit_counts=[],
            queue_seconds=job.queue_seconds or 0.0,
            run_seconds=job.run_seconds or 0.0,
        )

    # -- internal event handlers -------------------------------------------------------

    def _try_dispatch(self, backend_name: str) -> None:
        state = self._machines[backend_name]
        now = self.events.now
        if len(state.queue) == 0:
            return
        if state.busy_until > now + 1e-9:
            # Machine still busy with an earlier studied job; a dispatch event
            # is already scheduled at its completion.
            return
        job = state.queue.pop(now)
        provider = self.provider_for(job.provider)
        backlog = state.load_model.sample_backlog_seconds(
            now, access=provider.access, rng=state.backlog_draws
        )
        start_time = max(now, state.busy_until) + backlog

        # Decide the terminal status up front.
        draw = state.dispatch_draws.random()
        if draw < self.failure_model.cancel_probability:
            # Cancelled while waiting: it never runs on the machine.
            cancel_delay = min(backlog,
                               state.dispatch_draws.uniform(30.0, 3600.0))
            self.events.schedule(
                now + cancel_delay,
                lambda j=job: self._finish_cancelled(j),
                label=f"cancel:{job.job_id}",
            )
            self.events.schedule(
                now + cancel_delay,
                lambda name=backend_name: self._try_dispatch(name),
                label=f"dispatch:{backend_name}",
            )
            return

        run_seconds = self.execution_model.simulate_seconds(
            job, state.backend, rng=state.dispatch_draws
        )
        is_error = draw < (self.failure_model.cancel_probability
                           + self.failure_model.error_probability)
        if is_error:
            # Errors abort partway through the run.
            run_seconds *= state.dispatch_draws.uniform(0.1, 0.9)

        end_time = start_time + run_seconds
        state.busy_until = end_time
        self.events.schedule(
            start_time, lambda j=job, t=start_time: j.mark_running(t),
            label=f"start:{job.job_id}",
        )
        final_status = JobStatus.ERROR if is_error else JobStatus.DONE
        self.events.schedule(
            end_time,
            lambda j=job, s=final_status, name=backend_name:
                self._finish_running(j, s, name),
            label=f"finish:{job.job_id}",
        )

    def _finish_running(self, job: Job, status: JobStatus, backend_name: str) -> None:
        now = self.events.now
        job.mark_finished(now, status)
        state = self._machines[backend_name]
        state.jobs_completed += 1
        if job.run_seconds:
            state.busy_seconds += job.run_seconds
            state.queue.record_usage(job.provider, job.run_seconds)
        self._completed.append(job)
        self.events.schedule(
            now, lambda name=backend_name: self._try_dispatch(name),
            label=f"dispatch:{backend_name}",
        )

    def _finish_cancelled(self, job: Job) -> None:
        job.mark_finished(self.events.now, JobStatus.CANCELLED)
        self._completed.append(job)
