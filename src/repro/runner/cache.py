"""On-disk caching of generated study traces.

Generating the full 6000-job trace takes minutes of CPU; every benchmark
session and CI run used to pay that cost again.  :class:`TraceCache` stores
each generated trace under a key derived from the *content* of its
:class:`~repro.workloads.generator.TraceGeneratorConfig`, so any run with an
equivalent config — regardless of worker or shard count, which do not affect
the result — gets the exact bytes of the first run back.

Entries are written as the versioned compressed ``.npz`` column dump of
:meth:`~repro.workloads.trace.TraceDataset.to_npz` (deterministic bytes,
loads as typed arrays with no row parsing).  The cache also reads
JSON-format entries under the same key (hand-placed traces, external
tooling); note that *stale-content* invalidation happens through the
fingerprint itself — entries written by incompatible versions live under
different keys and simply miss.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import zipfile
from pathlib import Path
from typing import Dict, Optional, Union

from repro.workloads.generator import TraceGeneratorConfig
from repro.workloads.trace import TraceDataset

#: Bump when the generated-trace semantics change so stale caches miss.
#: 2: columnar data plane — batched circuit synthesis and the bucketed
#: external-load estimator reshape machine selection slightly.
TRACE_SCHEMA_VERSION = 2


def _canonical(value: object) -> object:
    """Reduce a config value to a JSON-serialisable canonical form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__class__": type(value).__name__, **fields}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def config_fingerprint(config: TraceGeneratorConfig) -> str:
    """A stable content hash of everything that shapes the generated trace.

    The package version is part of the hash so that releases that change
    generator/simulator behaviour invalidate old caches automatically;
    ``TRACE_SCHEMA_VERSION`` covers intentional format breaks in between.
    """
    from repro import __version__

    payload = {
        "schema": TRACE_SCHEMA_VERSION,
        "version": __version__,
        "config": _canonical(config),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    )
    return digest.hexdigest()[:24]


class TraceCache:
    """A directory of cached traces keyed by config fingerprint."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"trace-{key}.npz"

    def legacy_path_for(self, key: str) -> Path:
        """Where a JSON-format entry for ``key`` would live (the layout the
        pre-columnar cache used; still read as a fallback)."""
        return self.root / f"trace-{key}.json"

    def existing_path_for(self, key: str) -> Optional[Path]:
        """The on-disk entry a hit for ``key`` would be served from, if any."""
        for path in (self.path_for(key), self.legacy_path_for(key)):
            if path.is_file():
                return path
        return None

    def get(self, key: str) -> Optional[TraceDataset]:
        """The cached trace for ``key``, or None on a miss.

        The ``.npz`` column dump is tried first; a JSON-format entry under
        the same key is read as a fallback.  A corrupt or unreadable entry
        (e.g. hand-edited, or truncated mid-write) counts as a miss and
        will be overwritten by the regenerated trace rather than poisoning
        every later run.
        """
        for path, loader in ((self.path_for(key), TraceDataset.from_npz),
                             (self.legacy_path_for(key),
                              TraceDataset.from_json)):
            if not path.is_file():
                continue
            try:
                trace = loader(path)
            except (ValueError, TypeError, KeyError, OSError,
                    zipfile.BadZipFile):
                continue
            self.hits += 1
            return trace
        self.misses += 1
        return None

    def get_bytes(self, key: str) -> Optional[bytes]:
        """The exact cached bytes for ``key`` (None on a miss)."""
        path = self.existing_path_for(key)
        return path.read_bytes() if path is not None else None

    def put(self, key: str, trace: TraceDataset) -> Path:
        """Store ``trace`` under ``key`` atomically; returns the cache path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        scratch = path.with_suffix(f".tmp.{os.getpid()}")
        trace.to_npz(scratch)
        scratch.replace(path)
        return path

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
