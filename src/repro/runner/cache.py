"""On-disk caching of generated study traces.

Generating the full 6000-job trace takes minutes of CPU; every benchmark
session and CI run used to pay that cost again.  :class:`TraceCache` stores
each generated trace under a key derived from the *content* of its
:class:`~repro.workloads.generator.TraceGeneratorConfig`, so any run with an
equivalent config — regardless of worker or shard count, which do not affect
the result — gets the exact bytes of the first run back.

Entries are written as the versioned compressed ``.npz`` column dump of
:meth:`~repro.workloads.trace.TraceDataset.to_npz` (deterministic bytes,
loads as typed arrays with no row parsing).  Traces whose column bytes
exceed their resident-memory budget are stored as *block-manifest
directories* instead (``trace-<key>.blocks/``: a ``manifest.json`` plus
one versioned block ``.npz`` per chunk), written and re-served block by
block so neither ``put`` nor ``get`` ever materialises the whole trace.
The cache also reads JSON-format entries under the same key (hand-placed
traces, external tooling); note that *stale-content* invalidation happens
through the fingerprint itself — entries written by incompatible versions
live under different keys and simply miss.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import shutil
import uuid
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.exceptions import TraceSchemaError
from repro.telemetry import get_registry, get_tracer
from repro.workloads.generator import TraceGeneratorConfig
from repro.workloads.trace import TRACE_SCHEMA_VERSION, TraceDataset

__all__ = ["CacheEntry", "TRACE_SCHEMA_VERSION", "TraceCache",
           "config_fingerprint"]


def _canonical(value: object) -> object:
    """Reduce a config value to a JSON-serialisable canonical form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__class__": type(value).__name__, **fields}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def config_fingerprint(config: TraceGeneratorConfig) -> str:
    """A stable content hash of everything that shapes the generated trace.

    The package version is part of the hash so that releases that change
    generator/simulator behaviour invalidate old caches automatically;
    ``TRACE_SCHEMA_VERSION`` covers intentional format breaks in between.
    """
    from repro import __version__

    payload = {
        "schema": TRACE_SCHEMA_VERSION,
        "version": __version__,
        "config": _canonical(config),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    )
    return digest.hexdigest()[:24]


@dataclass(frozen=True)
class CacheEntry:
    """One on-disk cache entry: its key, location, size and recency."""

    key: str
    path: Path
    size_bytes: int
    modified: float  # last use (hits bump the mtime, so this is LRU order)

    def as_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "path": str(self.path),
            "size_bytes": self.size_bytes,
            "modified": self.modified,
        }


class TraceCache:
    """A directory of cached traces keyed by config fingerprint.

    Hits and misses are counted per instance; entry recency is tracked in
    the filesystem itself — every hit bumps the entry's mtime, so
    :meth:`prune` can evict least-recently-*used* (not least-recently-
    written) entries down to a byte budget, and the ordering survives
    process restarts.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        # Per-instance counters aggregated under shared registry names:
        # ``cache.hits`` et al. keep their historical per-instance
        # semantics (each cache counts from zero, external ``+=`` writers
        # included) while ``repro_cache_*_total`` sums every live cache.
        registry = get_registry()
        self._hits = registry.instance_counter(
            "repro_cache_hits_total",
            help="Trace-cache hits across every TraceCache instance.")
        self._misses = registry.instance_counter(
            "repro_cache_misses_total",
            help="Trace-cache misses across every TraceCache instance.")
        self._evictions = registry.instance_counter(
            "repro_cache_evictions_total",
            help="Trace-cache entries evicted by evict() or prune().")

    @property
    def hits(self) -> int:
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.set_local(value)

    @property
    def misses(self) -> int:
        return self._misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.set_local(value)

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @evictions.setter
    def evictions(self, value: int) -> None:
        self._evictions.set_local(value)

    def path_for(self, key: str) -> Path:
        return self.root / f"trace-{key}.npz"

    def manifest_dir_for(self, key: str) -> Path:
        """Where a block-manifest entry for ``key`` would live (the layout
        used for traces too large for their resident-bytes budget)."""
        return self.root / f"trace-{key}.blocks"

    def legacy_path_for(self, key: str) -> Path:
        """Where a JSON-format entry for ``key`` would live (the layout the
        pre-columnar cache used; still read as a fallback)."""
        return self.root / f"trace-{key}.json"

    def existing_path_for(self, key: str) -> Optional[Path]:
        """The on-disk entry a hit for ``key`` would be served from, if any."""
        for path in (self.path_for(key), self.legacy_path_for(key)):
            if path.is_file():
                return path
        manifest_dir = self.manifest_dir_for(key)
        if manifest_dir.is_dir():
            return manifest_dir
        return None

    def get(self, key: str, lazy: bool = False) -> Optional[TraceDataset]:
        """The cached trace for ``key``, or None on a miss.

        The ``.npz`` column dump is tried first; a JSON-format entry under
        the same key is read as a fallback.  A corrupt or unreadable entry
        (e.g. hand-edited, or truncated mid-write) counts as a miss and
        will be overwritten by the regenerated trace rather than poisoning
        every later run.  A *schema-version* mismatch, however, raises
        :class:`~repro.core.exceptions.TraceSchemaError` with the expected
        and found versions and the cache path — an entry written under an
        incompatible layout sitting at the exact key this config hashes to
        is a configuration problem to surface, not one to silently re-pay
        minutes of regeneration for on every run.

        ``lazy=True`` defers per-column decompression of ``.npz`` entries to
        first access (see :meth:`TraceDataset.from_npz`).  Block-manifest
        entries always load lazily: every block starts spilled and the
        process-wide memory budget governs how many become resident.
        """
        manifest_dir = self.manifest_dir_for(key)
        candidates = [
            (self.path_for(key),
             lambda p: TraceDataset.from_npz(p, lazy=lazy)),
            (manifest_dir, TraceDataset.from_block_manifest),
            (self.legacy_path_for(key), TraceDataset.from_json),
        ]
        with get_tracer().span("cache.get", study=key):
            for path, loader in candidates:
                if path is manifest_dir:
                    if not (path / "manifest.json").is_file():
                        continue
                elif not path.is_file():
                    continue
                try:
                    trace = loader(path)
                except TraceSchemaError as exc:
                    raise TraceSchemaError(
                        f"cache entry {path} has an incompatible trace "
                        f"schema: {exc}; delete the entry (or point "
                        f"--cache-dir at a fresh directory) to regenerate "
                        f"it") from exc
                except (ValueError, TypeError, KeyError, OSError,
                        zipfile.BadZipFile):
                    continue
                found = trace.metadata.get("trace_schema")
                if found is not None and found != TRACE_SCHEMA_VERSION:
                    raise TraceSchemaError(
                        f"cache entry {path} holds a trace generated under "
                        f"TRACE_SCHEMA_VERSION={found!r} but this version "
                        f"expects {TRACE_SCHEMA_VERSION}; delete the entry "
                        f"(or point --cache-dir at a fresh directory) to "
                        f"regenerate it")
                self.hits += 1
                self._touch(path)
                return trace
            self.misses += 1
            return None

    def get_bytes(self, key: str) -> Optional[bytes]:
        """The exact cached bytes for ``key`` (None on a miss).

        Block-manifest entries have no single-file byte representation —
        serving one through this path would materialise the whole trace,
        which is exactly what the out-of-core format exists to avoid — so
        they miss here; callers that need the data stream it block-wise
        through :meth:`get` instead.
        """
        path = self.existing_path_for(key)
        if path is None or path.is_dir():
            self.misses += 1
            return None
        data = path.read_bytes()
        self.hits += 1
        self._touch(path)
        return data

    @staticmethod
    def _touch(path: Path) -> None:
        """Bump an entry's mtime so LRU pruning sees the hit."""
        try:
            os.utime(path, None)
        except OSError:  # read-only cache dirs still serve hits
            pass

    def put(self, key: str, trace: TraceDataset) -> Path:
        """Store ``trace`` under ``key`` atomically; returns the cache path.

        In-RAM-sized traces are written as the single deterministic ``.npz``
        dump (byte-identical to every prior release); a trace whose column
        bytes exceed its resident budget is streamed block by block into a
        ``trace-<key>.blocks/`` manifest directory instead, so the put never
        materialises it.  Either way the dump goes to a uniquely named
        scratch location first (a uuid suffix, so concurrent writers — or a
        recycled pid — can never collide) and is renamed into place only
        once fully written; if the dump raises, the scratch is removed
        instead of accumulating as litter.  The other format's entry for
        the same key is dropped so a key never resolves ambiguously.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        npz_path = self.path_for(key)
        manifest_dir = self.manifest_dir_for(key)
        with get_tracer().span("cache.put", study=key,
                               out_of_core=trace.is_out_of_core):
            return self._put(key, trace, npz_path, manifest_dir)

    def _put(self, key: str, trace: TraceDataset, npz_path: Path,
             manifest_dir: Path) -> Path:
        if trace.is_out_of_core:
            scratch_dir = manifest_dir.with_suffix(
                f".tmp.{uuid.uuid4().hex}")
            try:
                trace.to_block_manifest(scratch_dir)
                shutil.rmtree(manifest_dir, ignore_errors=True)
                scratch_dir.replace(manifest_dir)
            finally:
                shutil.rmtree(scratch_dir, ignore_errors=True)
            npz_path.unlink(missing_ok=True)
            return manifest_dir
        scratch = npz_path.with_suffix(f".tmp.{uuid.uuid4().hex}")
        try:
            trace.to_npz(scratch)
            scratch.replace(npz_path)
        finally:
            scratch.unlink(missing_ok=True)
        shutil.rmtree(manifest_dir, ignore_errors=True)
        return npz_path

    # -- introspection and eviction ----------------------------------------------------

    def entries(self) -> List[CacheEntry]:
        """Every on-disk entry, least recently used first."""
        found: List[CacheEntry] = []
        if not self.root.is_dir():
            return found
        for path in self.root.iterdir():
            name = path.name
            if not name.startswith("trace-"):
                continue
            if path.suffix in (".npz", ".json") and path.is_file():
                try:
                    stat = path.stat()
                except OSError:  # evicted by a concurrent pruner mid-scan
                    continue
                size, modified = stat.st_size, stat.st_mtime
            elif path.suffix == ".blocks" and path.is_dir():
                try:
                    stat = path.stat()
                    size = sum(child.stat().st_size
                               for child in path.iterdir()
                               if child.is_file())
                    modified = stat.st_mtime
                except OSError:
                    continue
            else:
                continue
            found.append(CacheEntry(
                key=name[len("trace-"):-len(path.suffix)],
                path=path,
                size_bytes=size,
                modified=modified,
            ))
        found.sort(key=lambda entry: (entry.modified, entry.key))
        return found

    def total_bytes(self) -> int:
        """Bytes currently held by every entry of the cache."""
        return sum(entry.size_bytes for entry in self.entries())

    def evict(self, key: str) -> bool:
        """Delete the entry for ``key`` (all formats); True if one existed."""
        evicted = False
        for path in (self.path_for(key), self.legacy_path_for(key)):
            try:
                path.unlink()
                evicted = True
            except FileNotFoundError:
                continue
            except OSError:
                continue
        manifest_dir = self.manifest_dir_for(key)
        if manifest_dir.is_dir():
            shutil.rmtree(manifest_dir, ignore_errors=True)
            evicted = True
        if evicted:
            self.evictions += 1
        return evicted

    def prune(self, max_bytes: int) -> List[CacheEntry]:
        """Evict least-recently-used entries until ≤ ``max_bytes`` remain.

        Returns the evicted entries (possibly empty).  ``max_bytes=0``
        clears the cache.  Recency is entry mtime, which hits bump — so a
        hot entry survives a prune that drops a colder, newer-written one.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = self.entries()
        total = sum(entry.size_bytes for entry in entries)
        evicted: List[CacheEntry] = []
        for entry in entries:
            if total <= max_bytes:
                break
            try:
                if entry.path.is_dir():
                    shutil.rmtree(entry.path)
                else:
                    entry.path.unlink()
            except FileNotFoundError:
                total -= entry.size_bytes
                continue
            except OSError:
                continue
            total -= entry.size_bytes
            self.evictions += 1
            evicted.append(entry)
        return evicted

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}
