"""Deterministic work partitioning for the parallel study runner.

The runner splits a study into two independently parallel stages and this
module owns both partitions:

* **Synthesis shards** (:class:`ShardSpec`): the planned submissions are
  dealt round-robin across shards.  Independent streams are seeded at *job*
  granularity rather than shard granularity — every job's randomness is
  ``root.spawn(job_index)`` with the global job index — so the synthesised
  jobs are identical for any shard count and sharding only changes which
  process does the work.
* **Simulation groups** (:class:`MachineGroup`): machines are packed into
  groups balanced by expected job count.  The cloud service draws from
  per-machine spawned streams, so simulating a sub-fleet reproduces the
  single-service run machine for machine and any grouping yields the same
  merged trace.
* **Transpile shards** (:class:`TranspileShard`): the cold
  (equivalence class, machine) transpile pairs of a rank-mode study, dealt
  round-robin over a *sorted* pair list.  Each pair's summary is a pure
  function of the pair, so — like synthesis — sharding only changes which
  process does the work, never the merged rank table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.exceptions import WorkloadError
from repro.workloads.generator import PlannedSubmission, TraceGeneratorConfig
from repro.workloads.transpile_classes import TranspilePair


@dataclass(frozen=True)
class ShardSpec:
    """One synthesis shard: the slice of the submission plan a worker owns."""

    shard_id: int
    num_shards: int
    submissions: Tuple[PlannedSubmission, ...]

    def __len__(self) -> int:
        return len(self.submissions)


@dataclass(frozen=True)
class TranspileShard:
    """One transpile shard: the (family, width, machine) pairs a worker owns."""

    shard_id: int
    num_shards: int
    pairs: Tuple[TranspilePair, ...]

    def __len__(self) -> int:
        return len(self.pairs)


@dataclass(frozen=True)
class MachineGroup:
    """One simulation group: the machines whose queues a worker simulates."""

    group_id: int
    machines: Tuple[str, ...]
    expected_jobs: int = 0


def plan_shards(config: TraceGeneratorConfig,
                submissions: Sequence[PlannedSubmission],
                num_shards: int) -> List[ShardSpec]:
    """Deal the submission plan round-robin across ``num_shards`` shards.

    Round-robin (rather than contiguous slices) balances the exponential
    demand growth: late, busy months spread across all shards instead of
    landing on the last one.
    """
    if num_shards < 1:
        raise WorkloadError("num_shards must be at least 1")
    return [
        ShardSpec(
            shard_id=shard_id,
            num_shards=num_shards,
            submissions=tuple(submissions[shard_id::num_shards]),
        )
        for shard_id in range(num_shards)
    ]


def plan_transpile_shards(pairs: Sequence[TranspilePair],
                          num_shards: int) -> List[TranspileShard]:
    """Deal the cold transpile pairs round-robin across ``num_shards``.

    The caller supplies the pairs already sorted (the planner emits them
    in sorted order), so the dealing — and therefore which worker
    transpiles what — is deterministic.  Wide pairs dominate the cost and
    sort adjacent by width, so round-robin spreads them evenly.  Shards
    that would be empty are dropped.
    """
    if num_shards < 1:
        raise WorkloadError("num_shards must be at least 1")
    shards = [
        TranspileShard(
            shard_id=shard_id,
            num_shards=num_shards,
            pairs=tuple(pairs[shard_id::num_shards]),
        )
        for shard_id in range(num_shards)
    ]
    return [shard for shard in shards if shard.pairs]


def plan_machine_groups(job_counts: Dict[str, int],
                        num_groups: int) -> List[MachineGroup]:
    """Pack machines into groups balanced by job count (greedy LPT).

    The grouping is deterministic: machines are considered in
    (count-descending, name) order and each goes to the least-loaded group,
    ties broken by group id.  Machines with zero jobs are skipped — their
    queues never run any event.
    """
    if num_groups < 1:
        raise WorkloadError("num_groups must be at least 1")
    loaded = sorted(
        ((count, name) for name, count in job_counts.items() if count > 0),
        key=lambda item: (-item[0], item[1]),
    )
    num_groups = min(num_groups, len(loaded)) or 1
    totals = [0] * num_groups
    members: List[List[str]] = [[] for _ in range(num_groups)]
    for count, name in loaded:
        target = min(range(num_groups), key=lambda g: (totals[g], g))
        totals[target] += count
        members[target].append(name)
    return [
        MachineGroup(group_id=g, machines=tuple(sorted(members[g])),
                     expected_jobs=totals[g])
        for g in range(num_groups)
        if members[g]
    ]
