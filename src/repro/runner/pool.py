"""The shared worker pool behind suite-level scheduling.

:class:`SharedWorkerPool` is the persistent pool/session object the study
runner, the scenario engine and the study-service gateway schedule onto.
Instead of spinning a fresh ``multiprocessing`` pool up (and tearing it
down) per study — which is what the pre-suite runner did and what made a
ten-scenario catalog pay ten pool start-ups with every small scenario
serialised behind the previous one — a single pool outlives any number of
studies and executes their synthesis shards and machine-group simulations
as one interleaved work queue.

Determinism is preserved by construction:

* every task is a pure function of ``(config, shard)`` or
  ``(config, group, jobs)`` — job randomness is keyed by global job index
  and simulation randomness by machine, so *which* worker runs a task (and
  in what order) cannot change its result;
* per-worker state (the fleet and the job synthesizer of one study) is keyed
  by the study's config fingerprint, so tasks of different scenarios never
  share mutable state even when they interleave on one worker;
* state generations are keyed by an *epoch* that the suite scheduler opens
  per run and releases when the run finishes.  Workers evict the state of
  epochs below the oldest epoch still active at submit time, so re-running
  a study on a long-lived pool starts from freshly built fleets exactly
  like a transient per-study pool would — while *concurrent* runs (several
  gateway jobs multiplexed onto one pool) cannot evict each other.

Submissions accept an optional completion ``callback`` so the suite
scheduler can react to a shard landing (e.g. queue a study's simulations
the moment its last synthesis shard completes) instead of waiting on
handles in submission order.  Callbacks run on the pool's result-handler
thread (or inline with ``workers == 1``) and must never raise.

With ``workers == 1`` the pool degrades to inline execution in the calling
process — no subprocesses, same bytes.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cloud.fastsim import simulate_fleet
from repro.cloud.job import Job
from repro.cloud.service import QuantumCloudService
from repro.core.exceptions import WorkloadError
from repro.runner.sharding import MachineGroup, ShardSpec, TranspileShard
from repro.telemetry import Tracer, get_registry, get_tracer, set_tracer
from repro.transpiler.cache import DEFAULT_RANK_SEED, TranspileSummary
from repro.workloads.generator import (
    JobSynthesizer,
    TraceGeneratorConfig,
    record_for,
)
from repro.workloads.trace import ShardColumns
from repro.workloads.transpile_classes import (
    ClassRankTable,
    compute_class_summary,
)


def default_workers() -> int:
    """Worker-count default: every core, capped to keep small hosts usable."""
    return max(1, min(os.cpu_count() or 1, 16))


# -- worker-side state ---------------------------------------------------------------

#: Per-process study state, keyed by ``(epoch, config fingerprint)``.  A
#: worker builds the fleet (and, lazily, the synthesizer) of a study the
#: first time it receives one of its tasks and reuses it for every later
#: task of the same study in the same epoch.
_STATE: Dict[Tuple[int, str], Dict[str, object]] = {}

#: Guards ``_STATE`` — inline (workers == 1) tasks run on the submitting
#: thread, and a long-lived service multiplexes several suite runs onto one
#: pool from concurrent threads.  Forked workers are single-threaded, so
#: the lock is uncontended there.
_STATE_LOCK = threading.Lock()

#: Process-wide epoch source.  Epochs must be unique across *every* pool
#: instance of the process, not per instance: inline (workers == 1) tasks
#: run in the calling process, and forked workers inherit the parent's
#: ``_STATE``, so a per-instance counter restarting at 1 would let a later
#: run silently reuse — and never evict — a previous run's fleets.
_EPOCHS = itertools.count(1)

#: Epochs of runs currently in flight (opened by :meth:`next_epoch`,
#: dropped by :meth:`release_epoch`).  The oldest active epoch is the
#: eviction floor shipped with every task: workers drop the state of any
#: epoch below it, which keeps sequential runs evicting exactly like
#: before while concurrent runs on one pool keep each other's state alive.
_ACTIVE_EPOCHS: Set[int] = set()
_EPOCH_LOCK = threading.Lock()

#: Last issued epoch, used as the floor when no run is active.
_LAST_EPOCH = 0


def _state_for(epoch: int, floor: int, key: str,
               config: TraceGeneratorConfig) -> Dict[str, object]:
    with _STATE_LOCK:
        state = _STATE.get((epoch, key))
        if state is None:
            # Evict generations below the floor: every epoch that was
            # already released when this task was submitted.  Fleets
            # mutated by a finished run's simulations must never leak into
            # a later one; epochs still active (a concurrent run on the
            # same pool) stay cached.
            for stale in [k for k in _STATE if k[0] < floor]:
                del _STATE[stale]
            state = {"fleet": config.build_fleet(), "synthesizer": None}
            _STATE[(epoch, key)] = state
    return state


def _synthesise_task(payload: Tuple[int, int, str, TraceGeneratorConfig,
                                    ShardSpec, Optional[ClassRankTable]]
                     ) -> List[Job]:
    epoch, floor, key, config, shard, rank_table = payload
    state = _state_for(epoch, floor, key, config)
    synthesizer = state["synthesizer"]
    if synthesizer is None:
        # The rank table is a pure function of the study config, so caching
        # the synthesizer built from the first shard's copy is safe: every
        # shard of the study ships an equal table.
        synthesizer = JobSynthesizer(config, state["fleet"],
                                     rank_table=rank_table)
        state["synthesizer"] = synthesizer
    jobs: List[Job] = []
    with get_tracer().span("synthesis.shard", study=key,
                           job_shard=shard.shard_id,
                           submissions=len(shard.submissions)):
        for planned in shard.submissions:
            job = synthesizer.synthesise(planned)
            if job is not None:
                jobs.append(job)
    return jobs


def _transpile_task(payload: Tuple[int, int, str, TraceGeneratorConfig,
                                   TranspileShard]) -> List[TranspileSummary]:
    epoch, floor, key, config, shard = payload
    state = _state_for(epoch, floor, key, config)
    fleet = state["fleet"]
    level = config.scenario.ranking_level
    tracer = get_tracer()
    summaries: List[TranspileSummary] = []
    with tracer.span("transpile.shard", study=key,
                     transpile_shard=shard.shard_id, pairs=len(shard.pairs)):
        for family, width, machine in shard.pairs:
            with tracer.span("transpile.class", study=key, family=family,
                             width=width, machine=machine, level=level):
                started = time.perf_counter()
                summary = compute_class_summary(
                    family, width, fleet[machine], level,
                    seed=DEFAULT_RANK_SEED)
            # Replay the per-pass wall-clock as child spans.  The recorded
            # timings are summary telemetry, not span timestamps, so lay
            # them end to end from the class start; the small gap to the
            # parent's end is the non-pass overhead (layout, ESP).
            cursor = started
            for pass_name, seconds in summary.pass_timings:
                tracer.record_span(
                    f"transpile.pass.{pass_name}", start=cursor,
                    duration=seconds,
                    args={"family": family, "width": width,
                          "machine": machine})
                cursor += seconds
            summaries.append(summary)
    return summaries


def _simulate_task(payload: Tuple[int, int, str, TraceGeneratorConfig,
                                  MachineGroup, Sequence[Job], str]
                   ) -> ShardColumns:
    epoch, floor, key, config, group, jobs, engine = payload
    state = _state_for(epoch, floor, key, config)
    fleet = state["fleet"]
    sub_fleet = {name: fleet[name] for name in group.machines}
    # Both engines replay the identical per-machine state machine from the
    # identical spawned streams, so the records are byte-for-byte equal
    # (tests/test_fastsim_golden.py); ``batched`` just gets there without
    # the event-loop machinery.
    with get_tracer().span("simulation.group", study=key, engine=engine,
                           machines=len(group.machines), jobs=len(jobs)):
        if engine == "batched":
            ordered = simulate_fleet(
                sub_fleet, jobs, seed=config.seed,
                failure_model=config.build_failure_model())
        else:
            service = QuantumCloudService(
                sub_fleet, seed=config.seed,
                failure_model=config.build_failure_model())
            ordered = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
            for job in ordered:
                service.submit(job)
            service.drain()
    # Columnarise where the rows were produced: the parent merges typed
    # arrays (vocabulary union + lexsort), never a JobRecord round-trip.
    return ShardColumns.from_records(
        [record_for(job, fleet) for job in ordered])


class _ImmediateResult:
    """Inline stand-in for ``AsyncResult`` when the pool has one worker."""

    __slots__ = ("_value", "_error")

    def __init__(self, value, error=None):
        self._value = value
        self._error = error

    def get(self, timeout=None):
        if self._error is not None:
            raise self._error
        return self._value


class _TracedValue:
    """A task result plus the spans its worker recorded while computing it.

    Only used while the parent's tracer is enabled: the worker runs the
    task under a fresh process-local tracer and ships the finished spans
    home inside the existing result payload.
    """

    __slots__ = ("value", "spans")

    def __init__(self, value, spans):
        self.value = value
        self.spans = spans


def _traced_task(bundle):
    """Run a pool task under a worker-local tracer; return value + spans."""
    task, payload, kind, key = bundle
    worker_tracer = Tracer(enabled=True)
    previous = set_tracer(worker_tracer)
    try:
        with worker_tracer.span(f"pool.{kind}", study=key,
                                worker=os.getpid()):
            value = task(payload)
    finally:
        set_tracer(previous)
    return _TracedValue(value, worker_tracer.export_spans())


class _TracedHandle:
    """Wraps an ``AsyncResult`` holding a :class:`_TracedValue`: ``get()``
    unwraps the value and merges the worker spans (exactly once)."""

    __slots__ = ("_handle", "_merge")

    def __init__(self, handle, merge):
        self._handle = handle
        self._merge = merge

    def get(self, timeout=None):
        return self._merge(self._handle.get(timeout))


class SharedWorkerPool:
    """A reusable pool of study workers, shared across studies and suites.

    The pool is lazy (processes start on the first parallel submission) and
    long-lived: hand one instance to several :class:`StudyRunner`s,
    scenario-engine runs or gateway jobs — even from concurrent threads —
    and they all schedule onto the same workers.  Use it as a context
    manager — on a clean exit outstanding work is drained and the workers
    released; on an exception they are terminated so a failed task can
    never hang the caller on join.
    """

    def __init__(self, workers: Optional[int] = None):
        self.workers = max(1, int(workers if workers is not None
                                  else default_workers()))
        self._pool = None
        self._closed = False
        self._pool_lock = threading.Lock()

    @property
    def is_parallel(self) -> bool:
        return self.workers > 1

    def next_epoch(self) -> int:
        """Open a fresh worker-state generation (one per suite/study run).

        Epochs are unique process-wide and stay *active* — immune to
        worker-side eviction — until :meth:`release_epoch` drops them, so
        several runs multiplexed onto one pool keep their cached fleets
        alive side by side.  Always release in a ``finally``.
        """
        global _LAST_EPOCH
        with _EPOCH_LOCK:
            epoch = next(_EPOCHS)
            _ACTIVE_EPOCHS.add(epoch)
            _LAST_EPOCH = epoch
        return epoch

    def release_epoch(self, epoch: int) -> None:
        """Close a generation opened by :meth:`next_epoch`.

        Its worker-side state becomes evictable as soon as any later task
        observes a floor above it.
        """
        with _EPOCH_LOCK:
            _ACTIVE_EPOCHS.discard(epoch)

    @staticmethod
    def _epoch_floor() -> int:
        """The eviction floor to ship with a task submitted now.

        The oldest active epoch when runs are in flight; otherwise one past
        the last issued epoch, so a fully idle pool evicts everything on
        the next run's first task.
        """
        with _EPOCH_LOCK:
            if _ACTIVE_EPOCHS:
                return min(_ACTIVE_EPOCHS)
            return _LAST_EPOCH + 1

    def _ensure_pool(self):
        if self._closed:
            raise WorkloadError("this worker pool has been shut down")
        with self._pool_lock:
            if self._pool is None:
                context = multiprocessing.get_context(
                    "fork" if "fork" in multiprocessing.get_all_start_methods()
                    else "spawn"
                )
                self._pool = context.Pool(processes=self.workers)
            return self._pool

    def _submit(self, task, payload,
                callback: Optional[Callable[[object], None]] = None,
                kind: str = "task", key: Optional[str] = None):
        registry = get_registry()
        registry.counter(
            "repro_pool_tasks_total", kind=kind,
            help="Tasks submitted to the shared worker pool.").inc()
        depth = registry.gauge(
            "repro_pool_queue_depth",
            help="Pool tasks submitted but not yet completed.")
        completed = registry.counter(
            "repro_pool_tasks_completed_total", kind=kind,
            help="Pool tasks that completed successfully.")
        failed = registry.counter(
            "repro_pool_task_failures_total", kind=kind,
            help="Pool tasks that raised in a worker.")
        depth.inc()
        tracer = get_tracer()

        if not self.is_parallel:
            if self._closed:
                depth.dec()
                raise WorkloadError("this worker pool has been shut down")
            try:
                with tracer.span(f"pool.{kind}", study=key,
                                 worker=os.getpid()):
                    value = task(payload)
            except Exception as exc:
                depth.dec()
                failed.inc()
                # Match apply_async semantics: errors surface on .get(),
                # and the completion callback is not invoked.
                return _ImmediateResult(None, error=exc)
            depth.dec()
            completed.inc()
            if callback is not None:
                callback(value)
            return _ImmediateResult(value)

        merge = None
        if tracer.enabled:
            # Ship the task through the worker-tracer wrapper; the worker
            # returns (value, spans) and the first unwrap — the completion
            # callback below, which multiprocessing runs before .get()
            # returns — merges the spans into the parent tracer along with
            # a synthesised queue-wait span.
            queued_at = time.perf_counter()
            task, payload = _traced_task, (task, payload, kind, key)
            merge_lock = threading.Lock()
            state = {"merged": False}

            def merge(result):
                if not isinstance(result, _TracedValue):
                    return result
                with merge_lock:
                    first = not state["merged"]
                    state["merged"] = True
                if first and result.spans:
                    task_start = min(span["start"]
                                     for span in result.spans)
                    if task_start > queued_at:
                        tracer.record_span(
                            "pool.queued", start=queued_at,
                            duration=task_start - queued_at,
                            args={"kind": kind, "study": key})
                    tracer.ingest(result.spans)
                return result.value

        def _on_done(result):
            depth.dec()
            completed.inc()
            try:
                value = merge(result) if merge is not None else result
            except Exception:
                value = result.value if isinstance(result, _TracedValue) \
                    else result
            if callback is not None:
                callback(value)

        def _on_error(exc):
            depth.dec()
            failed.inc()

        handle = self._ensure_pool().apply_async(
            task, (payload,), callback=_on_done, error_callback=_on_error)
        if merge is not None:
            return _TracedHandle(handle, merge)
        return handle

    def submit_synthesis(self, epoch: int, key: str,
                         config: TraceGeneratorConfig, shard: ShardSpec,
                         callback: Optional[Callable[[object], None]] = None,
                         rank_table: Optional[ClassRankTable] = None):
        """Queue one synthesis shard; returns a handle with ``.get()``.

        ``callback`` (if given) receives the shard's job list when it
        completes — on the pool's result-handler thread, or synchronously
        for an inline pool.  It is not invoked when the task raises; the
        error surfaces on ``.get()``.

        ``rank_table`` ships a rank-mode study's precomputed class
        summaries to the worker; pass the same table with every shard of
        the study.
        """
        return self._submit(
            _synthesise_task,
            (epoch, self._epoch_floor(), key, config, shard, rank_table),
            callback=callback, kind="synthesis", key=key)

    def submit_transpile(self, epoch: int, key: str,
                         config: TraceGeneratorConfig, shard: TranspileShard,
                         callback: Optional[Callable[[object], None]] = None):
        """Queue one transpile shard; returns a handle with ``.get()``.

        The worker transpiles each (family, width, machine) class
        representative of the shard at the study's ranking level and
        returns the ordered :class:`~repro.transpiler.cache.
        TranspileSummary` list.  Each summary is a pure function of its
        pair, so results are identical for any sharding.
        """
        return self._submit(
            _transpile_task,
            (epoch, self._epoch_floor(), key, config, shard),
            callback=callback, kind="transpile", key=key)

    def submit_simulation(self, epoch: int, key: str,
                          config: TraceGeneratorConfig, group: MachineGroup,
                          jobs: Sequence[Job],
                          callback: Optional[Callable[[object], None]] = None,
                          engine: str = "batched"):
        """Queue one machine-group simulation; returns a ``.get()`` handle.

        ``engine`` picks the simulation core: ``"batched"`` (the default)
        replays the machines through :func:`repro.cloud.fastsim.
        simulate_fleet`; ``"event"`` drives the reference
        :class:`~repro.cloud.service.QuantumCloudService` event loop.  The
        returned columns are byte-identical either way.
        """
        return self._submit(
            _simulate_task,
            (epoch, self._epoch_floor(), key, config, group, jobs, engine),
            callback=callback, kind="simulation", key=key)

    def close(self) -> None:
        """Drain outstanding work and release the workers (clean path)."""
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def terminate(self) -> None:
        """Kill the workers immediately (failure path: a task raised).

        ``close()`` would wait for every queued task to finish — after an
        exception that can hang the caller behind work whose results nobody
        will collect, so error paths must terminate instead.
        """
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "SharedWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.terminate()
        else:
            self.close()
        return False
