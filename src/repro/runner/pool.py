"""The shared worker pool behind suite-level scheduling.

:class:`SharedWorkerPool` is the persistent pool/session object the study
runner and the scenario engine schedule onto.  Instead of spinning a fresh
``multiprocessing`` pool up (and tearing it down) per study — which is what
the pre-suite runner did and what made a ten-scenario catalog pay ten pool
start-ups with every small scenario serialised behind the previous one — a
single pool outlives any number of studies and executes their synthesis
shards and machine-group simulations as one interleaved work queue.

Determinism is preserved by construction:

* every task is a pure function of ``(config, shard)`` or
  ``(config, group, jobs)`` — job randomness is keyed by global job index
  and simulation randomness by machine, so *which* worker runs a task (and
  in what order) cannot change its result;
* per-worker state (the fleet and the job synthesizer of one study) is keyed
  by the study's config fingerprint, so tasks of different scenarios never
  share mutable state even when they interleave on one worker;
* state generations are keyed by an *epoch* that the suite scheduler bumps
  per run, so re-running a study on a long-lived pool starts from freshly
  built fleets exactly like a transient per-study pool would.

With ``workers == 1`` the pool degrades to inline execution in the calling
process — no subprocesses, same bytes.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.job import Job
from repro.cloud.service import QuantumCloudService
from repro.core.exceptions import WorkloadError
from repro.runner.sharding import MachineGroup, ShardSpec
from repro.workloads.generator import (
    JobSynthesizer,
    TraceGeneratorConfig,
    record_for,
)
from repro.workloads.trace import JobRecord


def default_workers() -> int:
    """Worker-count default: every core, capped to keep small hosts usable."""
    return max(1, min(os.cpu_count() or 1, 16))


# -- worker-side state ---------------------------------------------------------------

#: Per-process study state, keyed by ``(epoch, config fingerprint)``.  A
#: worker builds the fleet (and, lazily, the synthesizer) of a study the
#: first time it receives one of its tasks and reuses it for every later
#: task of the same study in the same epoch.
_STATE: Dict[Tuple[int, str], Dict[str, object]] = {}

#: Process-wide epoch source.  Epochs must be unique across *every* pool
#: instance of the process, not per instance: inline (workers == 1) tasks
#: run in the calling process, and forked workers inherit the parent's
#: ``_STATE``, so a per-instance counter restarting at 1 would let a later
#: run silently reuse — and never evict — a previous run's fleets.
_EPOCHS = itertools.count(1)


def _state_for(epoch: int, key: str,
               config: TraceGeneratorConfig) -> Dict[str, object]:
    state = _STATE.get((epoch, key))
    if state is None:
        # A new epoch invalidates every older generation: fleets mutated by
        # a previous run's simulations must never leak into this one.
        for stale in [k for k in _STATE if k[0] != epoch]:
            del _STATE[stale]
        state = {"fleet": config.build_fleet(), "synthesizer": None}
        _STATE[(epoch, key)] = state
    return state


def _synthesise_task(payload: Tuple[int, str, TraceGeneratorConfig,
                                    ShardSpec]) -> List[Job]:
    epoch, key, config, shard = payload
    state = _state_for(epoch, key, config)
    synthesizer = state["synthesizer"]
    if synthesizer is None:
        synthesizer = JobSynthesizer(config, state["fleet"])
        state["synthesizer"] = synthesizer
    jobs: List[Job] = []
    for planned in shard.submissions:
        job = synthesizer.synthesise(planned)
        if job is not None:
            jobs.append(job)
    return jobs


def _simulate_task(payload: Tuple[int, str, TraceGeneratorConfig,
                                  MachineGroup, Sequence[Job]]
                   ) -> List[JobRecord]:
    epoch, key, config, group, jobs = payload
    state = _state_for(epoch, key, config)
    fleet = state["fleet"]
    sub_fleet = {name: fleet[name] for name in group.machines}
    service = QuantumCloudService(sub_fleet, seed=config.seed,
                                  failure_model=config.build_failure_model())
    ordered = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
    for job in ordered:
        service.submit(job)
    service.drain()
    return [record_for(job, fleet) for job in ordered]


class _ImmediateResult:
    """Inline stand-in for ``AsyncResult`` when the pool has one worker."""

    __slots__ = ("_value",)

    def __init__(self, value):
        self._value = value

    def get(self, timeout=None):
        return self._value


class SharedWorkerPool:
    """A reusable pool of study workers, shared across studies and suites.

    The pool is lazy (processes start on the first parallel submission) and
    long-lived: hand one instance to several :class:`StudyRunner`s or
    scenario-engine runs and they all schedule onto the same workers.  Use
    it as a context manager — on a clean exit outstanding work is drained
    and the workers released; on an exception they are terminated so a
    failed task can never hang the caller on join.
    """

    def __init__(self, workers: Optional[int] = None):
        self.workers = max(1, int(workers if workers is not None
                                  else default_workers()))
        self._pool = None
        self._closed = False

    @property
    def is_parallel(self) -> bool:
        return self.workers > 1

    def next_epoch(self) -> int:
        """Open a fresh worker-state generation (one per suite/study run).

        Epochs are unique process-wide, so starting a new run invalidates
        the cached per-study state of every earlier run — including state
        built inline by other pool instances or inherited through fork.
        """
        return next(_EPOCHS)

    def _ensure_pool(self):
        if self._closed:
            raise WorkloadError("this worker pool has been shut down")
        if self._pool is None:
            context = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
            self._pool = context.Pool(processes=self.workers)
        return self._pool

    def _submit(self, task, payload):
        if not self.is_parallel:
            return _ImmediateResult(task(payload))
        return self._ensure_pool().apply_async(task, (payload,))

    def submit_synthesis(self, epoch: int, key: str,
                         config: TraceGeneratorConfig, shard: ShardSpec):
        """Queue one synthesis shard; returns a handle with ``.get()``."""
        return self._submit(_synthesise_task, (epoch, key, config, shard))

    def submit_simulation(self, epoch: int, key: str,
                          config: TraceGeneratorConfig, group: MachineGroup,
                          jobs: Sequence[Job]):
        """Queue one machine-group simulation; returns a ``.get()`` handle."""
        return self._submit(_simulate_task, (epoch, key, config, group, jobs))

    def close(self) -> None:
        """Drain outstanding work and release the workers (clean path)."""
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def terminate(self) -> None:
        """Kill the workers immediately (failure path: a task raised).

        ``close()`` would wait for every queued task to finish — after an
        exception that can hang the caller behind work whose results nobody
        will collect, so error paths must terminate instead.
        """
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "SharedWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.terminate()
        else:
            self.close()
        return False
